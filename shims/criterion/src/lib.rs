//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `black_box` and the `criterion_group!`/
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! measurement loop with a text report (median of sample means, plus
//! throughput when declared). No HTML reports, no statistics beyond
//! median-of-means; good enough to compare kernel backends and catch
//! order-of-magnitude regressions offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group: scales the report into
/// elements/s or MB/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` drains per measurement batch.
/// The shim re-runs setup per iteration regardless; the variants exist
/// for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement settings (shared by `Criterion` and groups).
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Wall-clock budget per benchmark.
    measure_time: Duration,
    /// Number of samples the budget is split into.
    samples: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measure_time: Duration::from_millis(300),
            samples: 10,
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.settings, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's sample count is fixed
    /// by its measurement loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.criterion.settings, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Hands the measurement loop to the benchmark closure.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured time of the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: grow the iteration count until one sample costs at
    // least ~1/samples of the budget.
    let target_sample = settings.measure_time / settings.samples as u32;
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target_sample || iters >= 1 << 30 {
            break;
        }
        // Aim directly for the target with one refinement pass.
        let measured = b.elapsed.as_nanos().max(1) as u64;
        let want = target_sample.as_nanos() as u64;
        iters = (iters * want / measured).clamp(iters + 1, iters.saturating_mul(1024));
    }

    let mut sample_means: Vec<f64> = (0..settings.samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    sample_means.sort_by(|a, b| a.total_cmp(b));
    let median = sample_means[sample_means.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbs = n as f64 / median * 1e9 / (1024.0 * 1024.0);
            format!("  {mbs:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / median * 1e9;
            format!("  {eps:>10.0} elem/s")
        }
        None => String::new(),
    };
    println!("{name:<40} {:>12.1} ns/iter{rate}", median);
}

/// Declares a benchmark entry point running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; a filter
            // argument (as in `cargo bench -- axpy`) is not supported by
            // the shim and is ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            settings: Settings {
                measure_time: Duration::from_millis(10),
                samples: 3,
            },
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}
