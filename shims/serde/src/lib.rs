//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives and declares the two marker traits so
//! `use serde::{Deserialize, Serialize}` keeps compiling. No code in
//! the workspace serializes through serde (hand-rolled formats only),
//! so the traits carry no methods.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
