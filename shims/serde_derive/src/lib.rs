//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` — it never
//! serializes through serde (all on-disk formats are hand-rolled). In
//! the offline build environment the derives therefore expand to
//! nothing; the `#[serde(...)]` helper attribute is accepted and
//! ignored so existing annotations keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
