//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`] and
//! [`seq::index::sample`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable and of ample statistical quality
//! for the simulations (it is the same family the real `rand` small
//! RNGs use). The API is call-compatible with the subset the workspace
//! uses, so swapping the real crate back in is a one-line manifest edit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a [`Rng::gen_range`] call can sample from. The value type is
/// a trait *parameter* (as in the real crate) so integer literals in a
/// range unify with the caller's expected type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full domain; `[0, 1)` for
    /// floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (full state derived via
    /// SplitMix64, as recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::Rng;

        /// A set of distinct indices in `0..length`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher–Yates).
        ///
        /// The virtual pool `0..length` is never materialised: a sparse
        /// displacement map records only the positions a swap has
        /// touched, so the call allocates `O(amount)` regardless of
        /// `length` — sampling 20 indices out of 10^6 costs 20 map
        /// entries, not a million-element vector. The draw sequence and
        /// output are identical to the materialised-pool version
        /// (`pool.swap(i, rng.gen_range(i..length))` per step), which
        /// the tests pin.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            // Maps position -> current value for the positions whose
            // value differs from their index. BTreeMap rather than
            // HashMap for deterministic, std-hasher-free behaviour.
            let mut displaced: std::collections::BTreeMap<usize, usize> =
                std::collections::BTreeMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vj = displaced.get(&j).copied().unwrap_or(j);
                let vi = displaced.get(&i).copied().unwrap_or(i);
                // swap(i, j): position i is emitted now and never read
                // again (future draws are over i+1..length), so only
                // position j needs recording.
                out.push(vj);
                displaced.insert(j, vi);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x = rng.gen_range(1u8..=255);
            assert!(x >= 1);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn sample_is_without_replacement() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = sample(&mut rng, 20, 7).into_vec();
            assert_eq!(v.len(), 7);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicates in {v:?}");
            assert!(v.iter().all(|&i| i < 20));
        }
        assert_eq!(sample(&mut rng, 5, 0).len(), 0);
        let full: Vec<usize> = {
            let mut v = sample(&mut rng, 5, 5).into_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(full, vec![0, 1, 2, 3, 4]);
    }

    /// Reference implementation the sparse `sample` replaced: a fully
    /// materialised `0..length` pool with partial Fisher–Yates. Kept
    /// here to pin that the sparse version draws the same randomness
    /// and emits the same indices.
    fn sample_dense_pool<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
        assert!(amount <= length);
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        pool
    }

    #[test]
    fn sparse_sample_matches_dense_pool_exactly() {
        for seed in 0..20u64 {
            for &(length, amount) in &[
                (1usize, 0usize),
                (1, 1),
                (5, 5),
                (20, 7),
                (100, 1),
                (100, 99),
                (100, 100),
                (1000, 13),
                (10_000, 25),
            ] {
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                let sparse = sample(&mut a, length, amount).into_vec();
                let dense = sample_dense_pool(&mut b, length, amount);
                assert_eq!(
                    sparse, dense,
                    "seed {seed}, length {length}, amount {amount}"
                );
                // Both consumed the same number of draws.
                assert_eq!(a.gen::<u64>(), b.gen::<u64>());
            }
        }
    }

    #[test]
    fn sample_handles_huge_lengths_without_pool_allocation() {
        // The dense-pool version would allocate 8 GB here; the sparse
        // version only touches `amount` map entries.
        let mut rng = StdRng::seed_from_u64(7);
        let v = sample(&mut rng, 1_000_000_000, 20).into_vec();
        assert_eq!(v.len(), 20);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in {v:?}");
        assert!(v.iter().all(|&i| i < 1_000_000_000));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements left unshuffled");
    }

    #[test]
    fn works_through_unsized_and_reborrowed_receivers() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = takes_generic(&mut rng);
        let re: &mut StdRng = &mut rng;
        let _ = takes_generic(re);
    }
}
