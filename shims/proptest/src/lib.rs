//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! ranges / tuples / `Just` / [`collection::vec`] / [`any`] strategies,
//! weighted [`prop_oneof!`], `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Differences from the real crate: no shrinking (a failing case is
//! reported with its generated inputs via ordinary `assert!` panics)
//! and generation is deterministic per test (seeded from the test
//! name), so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generation-side RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG derived from the test's name, so every run of
    /// a test sees the same case sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A weighted union of same-valued strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof requires a positive weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Ranges of collection sizes (`usize`, `a..b`, `a..=b`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// The `prop` namespace mirrored from the real crate's prelude.
pub mod prop {
    pub use super::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
        Union,
    };
}

/// Boolean property assertion (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted choice between strategies with a common value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 2 => b]`
/// picks proportionally to the weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early-exit via
                    // `return` without ending the whole case loop.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..17, y in -2.0f64..2.0, z in 1u8..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn map_and_custom_strategies(e in small_even(), j in Just(7usize)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert_eq!(j, 7);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0usize..4, 0usize..4), 2..6),
            exact in prop::collection::vec(any::<u8>(), 3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![3 => Just(0usize), 2 => 1usize..256]) {
            prop_assert!(x < 256);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let s = small_even();
        let mut a = TestRng::deterministic("fixed");
        let mut b = TestRng::deterministic("fixed");
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
