//! Capacity planning with the analysis toolbox: answer "how many
//! surviving coded blocks do I need?" before deploying anything, compare
//! strict vs set-model utility, and estimate wire savings from
//! seed-compact blocks.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use prlc::analysis::overhead;
use prlc::prelude::*;
use prlc::sim::fmt_f;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A telemetry archive: 300 blocks in four tiers.
    let profile = PriorityProfile::new(vec![15, 45, 90, 150])?;
    let n = profile.total_blocks();
    let dist = PriorityDistribution::from_weights(vec![0.2, 0.25, 0.25, 0.3])?;
    let opts = AnalysisOptions::sharp();

    println!("profile: {n} blocks in tiers {:?}", profile.sizes());
    println!("storage distribution: {:?}\n", dist.as_slice());

    // 1. Survival budgets: blocks needed for each recovery target.
    println!("blocks needed (in expectation) per recovery target:");
    for scheme in [Scheme::Slc, Scheme::Plc] {
        print!("  {scheme}:");
        for k in 1..=4 {
            match overhead::blocks_for_expected_levels(scheme, &profile, &dist, k as f64, &opts) {
                Some(m) => print!("  {k} tier(s) @ {m} blocks"),
                None => print!("  {k} tier(s) unreachable"),
            }
        }
        println!();
    }
    let m99 = overhead::blocks_for_complete(Scheme::Plc, &profile, &dist, 0.99, &opts)
        .expect("reachable");
    println!("  PLC full recovery at 99% confidence: {m99} blocks\n");

    // RLC for contrast: nothing below N, everything at N.
    println!(
        "  RLC for contrast: any data at all requires {} blocks\n",
        overhead::blocks_for_expected_levels(Scheme::Rlc, &profile, &dist, 1.0, &opts)
            .expect("reachable")
    );

    // 2. Utility views: strict (prefix) vs set (islands count) for SLC.
    // Use a storage distribution that under-protects tier 1: low tiers
    // then routinely complete while tier 1 is still missing — recovery
    // the strict model refuses to credit.
    let skewed = PriorityDistribution::from_weights(vec![0.06, 0.24, 0.3, 0.4])?;
    let utility = UtilityFunction::geometric(4, 0.5);
    println!("SLC expected utility (geometric weights, tier-1-starved storage):");
    println!("  M      strict    set-model");
    for m in [120usize, 240, 360, 480, 600] {
        let strict: f64 = (1..=4)
            .map(|k| {
                utility.strict(k)
                    * prlc::analysis::curves::decode_exactly(
                        Scheme::Slc,
                        &profile,
                        &skewed,
                        m,
                        k,
                        &opts,
                    )
            })
            .sum();
        let set = overhead::slc_expected_set_utility(&profile, &skewed, m, &utility, &opts);
        println!("  {m:<5}  {}    {}", fmt_f(strict, 4), fmt_f(set, 4));
    }
    println!("  (the gap is recovery the strict model discards: complete");
    println!("   low tiers stranded behind an incomplete higher tier)\n");

    // 3. Wire cost: explicit coefficients vs seed-compact blocks.
    let mut rng = StdRng::seed_from_u64(42);
    let sources: Vec<Vec<Gf256>> = (0..n)
        .map(|_| (0..64).map(|_| Gf256::random(&mut rng)).collect())
        .collect();
    let seeded = SeededEncoder::new(Scheme::Plc, profile.clone());
    let compact = seeded.encode::<Gf256>(3, 777, &sources);
    let full = seeded.expand(&compact);
    println!("wire cost for one level-4 coded block (64-byte payload):");
    println!(
        "  explicit coefficients: {} symbols",
        full.coefficients.len() + full.payload.len()
    );
    println!(
        "  seed-compact:          {} symbols",
        compact.wire_symbols()
    );

    // The expanded block decodes like any other.
    let mut dec = PlcDecoder::with_payloads(profile);
    dec.insert_block(&full);
    assert_eq!(dec.blocks_processed(), 1);
    Ok(())
}
