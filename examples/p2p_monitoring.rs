//! P2P session monitoring: peers in a live-streaming overlay log
//! performance metrics into the DHT itself using SLC, survive heavy
//! churn, and the operator later pulls whatever persists — most
//! important tiers first.
//!
//! This is the paper's motivating P2P scenario (Sec. 1): "periodic
//! reporting to central logging servers does not scale ... and may morph
//! into a de facto distributed denial-of-service attack at the logging
//! server."
//!
//! ```text
//! cargo run --release --example p2p_monitoring
//! ```

use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);

    // A 500-peer Chord overlay.
    let mut net = RingNetwork::new(500, &mut rng);
    println!("overlay: {} peers on a Chord-like ring", net.node_count());

    // Session metrics in three tiers:
    //   tier 1 (critical) : session-wide health summaries  (8 blocks)
    //   tier 2            : per-region streaming-rate stats (24 blocks)
    //   tier 3 (bulk)     : per-peer latency samples        (48 blocks)
    let profile = PriorityProfile::new(vec![8, 24, 48])?;
    let sources: Vec<Vec<Gf256>> = (0..profile.total_blocks())
        .map(|_| (0..32).map(|_| Gf256::random(&mut rng)).collect())
        .collect();

    // SLC keeps tiers independent: the operator can decode tier 1 even
    // if every tier-2/3 cache churns away.
    let deployment = predistribute(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Slc,
            profile: profile.clone(),
            distribution: PriorityDistribution::from_weights(vec![0.35, 0.35, 0.30])?,
            locations: 240,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 0x5E55_1013,
        },
        &sources,
        &mut rng,
    )?;
    println!(
        "logged {} metric blocks into {} cache slots ({} msgs, {:.1} hops avg)",
        profile.total_blocks(),
        deployment.slots().len(),
        deployment.metrics().messages,
        deployment.metrics().mean_hops()
    );

    // Churn: peers have a mean session length of 30 min and the operator
    // pulls logs 45 min later.
    let churn = Churn {
        mean_lifetime: 30.0,
        horizon: 45.0,
    };
    let departed = net.fail_uniform(churn.death_fraction(), &mut rng);
    println!(
        "churn over 45 min: {departed} peers departed ({:.0}% death fraction), {} remain",
        churn.death_fraction() * 100.0,
        net.alive_count()
    );

    // The operator joins as (or contacts) a surviving peer and decodes
    // tier by tier.
    let operator = net.random_alive_node(&mut rng).expect("survivors exist");
    let mut decoder = SlcDecoder::with_payloads(profile.clone());
    let report = collect(
        &net,
        &deployment,
        &mut decoder,
        operator,
        &CollectionConfig::default(),
        &mut rng,
    )
    .expect("operator peer is alive");

    println!(
        "collected {} surviving blocks from {} peers",
        report.blocks_collected, report.nodes_queried
    );
    for tier in 0..profile.num_levels() {
        let status = if decoder.level_complete(tier) {
            "recovered"
        } else {
            "lost (insufficient surviving blocks)"
        };
        println!(
            "  tier {}: {:2} blocks, rank {:2}/{:2} -> {status}",
            tier + 1,
            profile.size(tier),
            decoder.level_rank(tier),
            profile.size(tier),
        );
    }
    println!(
        "strict-priority levels decoded: {} of {}",
        decoder.decoded_levels(),
        profile.num_levels()
    );
    Ok(())
}
