//! Sensor-network persistence: 300 sensors on a unit square measure a
//! field; readings are persisted in-network with PLC via the
//! pre-distribution protocol, a disaster wipes out a region plus random
//! failures, and a surviving sensor recovers the critical readings.
//!
//! This is the paper's motivating sensor scenario (Sec. 1–2): no sink,
//! no aggregation tree — the network *is* the storage.
//!
//! ```text
//! cargo run --release --example sensor_persistence
//! ```

use prlc::net::plane::PlanePoint;
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // Deploy 300 sensors with the standard connectivity radius.
    let mut net = PlaneNetwork::with_connectivity_radius(300, &mut rng);
    println!(
        "deployed {} sensors, radio radius {:.3}, connected: {}",
        net.node_count(),
        net.radius(),
        net.is_connected()
    );

    // 60 measurements in three priorities: 10 alarm events (critical),
    // 20 aggregate summaries, 30 raw samples. 8-byte payloads.
    let profile = PriorityProfile::new(vec![10, 20, 30])?;
    let sources: Vec<Vec<Gf256>> = (0..profile.total_blocks())
        .map(|_| (0..8).map(|_| Gf256::random(&mut rng)).collect())
        .collect();

    // Skew storage toward the alarms so they survive harsher failures.
    let distribution = PriorityDistribution::from_weights(vec![0.45, 0.30, 0.25])?;
    let deployment = predistribute(
        &net,
        &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution,
            locations: 150,
            fanout: SourceFanout::Log { factor: 2.0 },
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 0xBEEF,
        },
        &sources,
        &mut rng,
    )?;
    let m = deployment.metrics();
    println!(
        "pre-distribution: {} messages, {:.1} hops/message, max node load {}",
        m.messages,
        m.mean_hops(),
        m.max_node_load
    );

    // Disaster: a fire destroys the north-east quadrant's core, plus 20%
    // random battery deaths.
    let killed_fire = net.fail_disk(PlanePoint { x: 0.75, y: 0.75 }, 0.22);
    let killed_random = net.fail_uniform(0.2, &mut rng);
    println!(
        "failures: {killed_fire} sensors burned, {killed_random} died randomly; \
         {} of {} alive",
        net.alive_count(),
        net.node_count()
    );

    // A surviving sensor doubles as the collection point and stops as
    // soon as the alarm level is decodable.
    let collector = net.random_alive_node(&mut rng).expect("survivors exist");
    let mut decoder = PlcDecoder::with_payloads(profile.clone());
    let report = collect(
        &net,
        &deployment,
        &mut decoder,
        collector,
        &CollectionConfig {
            target_levels: Some(1),
        },
        &mut rng,
    )
    .expect("collector is alive");

    println!(
        "collection: queried {} nodes ({} hops), {} blocks -> {} level(s) decoded",
        report.nodes_queried,
        report.query_hops,
        report.blocks_collected,
        decoder.decoded_levels()
    );
    if decoder.decoded_levels() >= 1 {
        let ok = profile
            .blocks_of(0)
            .all(|i| decoder.recovered(i) == Some(&sources[i][..]));
        println!("critical alarm data recovered intact: {ok}");
    } else {
        println!("critical level not yet recoverable from this survivor set");
    }

    // Keep collecting: how much of the rest survives?
    let report2 = collect(
        &net,
        &deployment,
        &mut decoder,
        collector,
        &CollectionConfig::default(),
        &mut rng,
    )
    .expect("collector is alive");
    println!(
        "continued collection: +{} blocks, final {} level(s), {} / {} source blocks",
        report2.blocks_collected,
        decoder.decoded_levels(),
        decoder.decoded_blocks(),
        profile.total_blocks()
    );
    Ok(())
}
