//! Designing a priority distribution: the Sec. 3.4 feasibility workflow.
//!
//! Given application decoding constraints — "the first level must be
//! recoverable from 125 random blocks, the first two from 205" — search
//! for a priority distribution satisfying them (plus the full-recovery
//! constraint), then validate the designed distribution with both the
//! analytical curve and a real simulated decode.
//!
//! ```text
//! cargo run --release --example design_distribution
//! ```

use prlc::prelude::*;
use prlc::sim::fmt_f;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 200 source blocks: 20 critical / 60 normal / 120 bulk.
    let profile = PriorityProfile::new(vec![20, 60, 120])?;
    let problem = FeasibilityProblem {
        scheme: Scheme::Plc,
        profile: profile.clone(),
        constraints: vec![
            DecodingConstraint::new(125, 1.0),
            DecodingConstraint::new(205, 2.0),
        ],
        full_recovery: Some(FullRecoveryConstraint {
            alpha: 2.0,
            epsilon: 0.01,
        }),
        options: AnalysisOptions::sharp(),
        tolerance: 0.0,
    };

    println!("constraints:");
    for c in &problem.constraints {
        println!("  E(X_{{{}}}) >= {}", c.blocks, c.min_levels);
    }
    println!("  Pr(X_{{400}} = 3) > 0.99");

    let solution = solve_feasibility(
        &problem,
        &SolverOptions {
            max_evaluations: 4000,
            restarts: 10,
            seed: 3,
        },
    );
    println!(
        "\nsolver: feasible = {}, {} evaluations, residual penalty {:.2e}",
        solution.feasible, solution.evaluations, solution.penalty
    );
    let dist = &solution.distribution;
    println!(
        "designed priority distribution: p = [{}, {}, {}]",
        fmt_f(dist.p(0), 4),
        fmt_f(dist.p(1), 4),
        fmt_f(dist.p(2), 4)
    );

    println!("\nconstraint check at the designed distribution:");
    for check in problem.check(dist) {
        println!(
            "  {}: achieved {} (required {}) -> {}",
            check.description,
            fmt_f(check.achieved, 4),
            fmt_f(check.required, 4),
            if check.satisfied { "ok" } else { "VIOLATED" }
        );
    }

    // Analytical decoding curve of the design.
    println!("\nanalytical decoding curve:");
    let opts = AnalysisOptions::sharp();
    for m in (0..=400).step_by(50) {
        let e = curves::expected_levels(Scheme::Plc, &profile, dist, m, &opts);
        println!("  M = {m:3}: E(X) = {}", fmt_f(e, 3));
    }

    // Validate by simulation with the real decoder.
    let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
        persistence: Persistence::Coding(Scheme::Plc),
        profile,
        distribution: dist.clone(),
        max_blocks: 400,
        runs: 40,
        seed: 99,
    });
    println!("\nsimulated decoding curve (40 runs, 95% CI):");
    for m in (0..=400).step_by(50) {
        let s = curve.summaries[m];
        println!("  M = {m:3}: {} ± {}", fmt_f(s.mean, 3), fmt_f(s.ci95, 3));
    }
    for c in &problem.constraints {
        let s = curve.summaries[c.blocks];
        println!(
            "simulated E(X_{{{}}}) = {} (constraint {})",
            c.blocks,
            fmt_f(s.mean, 3),
            c.min_levels
        );
    }
    Ok(())
}
