//! Periodic measurement rounds: the paper's full data lifecycle.
//!
//! "Periodically measured data are generated on an ongoing basis, which
//! should be preserved for subsequent analysis at a later time" (Sec. 1)
//! — every hour a sensor field produces a fresh round of readings, each
//! persisted in-network with PLC under a rolling retention window, while
//! churn erodes old rounds and a repair pass patches them up. At the
//! end, an analyst pulls whichever rounds still decode.
//!
//! ```text
//! cargo run --release --example periodic_rounds
//! ```

use prlc::net::rounds::{RoundStore, RoundStoreConfig};
use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2007);
    let mut net = RingNetwork::new(150, &mut rng);

    // Each round: 12 readings, 4 critical + 8 bulk, 8-byte payloads.
    let profile = PriorityProfile::new(vec![4, 8])?;
    let mut store: RoundStore<Gf256> = RoundStore::new(RoundStoreConfig {
        protocol: ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::from_weights(vec![0.45, 0.55])?,
            locations: 40,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: Some(4),
            shared_seed: 0xC1CADA,
        },
        max_rounds: 4, // retention window
    });

    // Six measurement rounds; 10% churn between rounds, repair after.
    let mut history = Vec::new();
    for _round in 0..6u64 {
        let sources: Vec<Vec<Gf256>> = (0..profile.total_blocks())
            .map(|_| (0..8).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let id = store.store_round(&net, &sources, &mut rng)?;
        history.push((id, sources));

        let died = net.fail_uniform(0.10, &mut rng);
        let mut repaired = 0;
        for rid in store.round_ids().collect::<Vec<_>>() {
            if let Some(dep) = store.deployment_mut(rid) {
                if let Some(report) = refresh(
                    &net,
                    dep,
                    &RefreshConfig {
                        scheme: Scheme::Plc,
                        donors_per_slot: 3,
                    },
                    &mut rng,
                ) {
                    repaired += report.repaired;
                }
            }
        }
        println!(
            "{id}: stored 12 readings into 40 slots | churn killed {died} peers \
             | repaired {repaired} slots across retained rounds"
        );
    }
    println!(
        "\nretention: {} of 6 rounds kept ({} evicted), {} slots total, {} peers alive",
        store.len(),
        store.evicted(),
        store.total_slots(),
        net.alive_count()
    );

    // The analyst pulls every retained round.
    let collector = net.random_alive_node(&mut rng).expect("survivors");
    println!("\nanalyst recovery:");
    for (id, sources) in &history {
        let Some(dep) = store.deployment(*id) else {
            println!("  {id}: evicted (outside retention window)");
            continue;
        };
        let mut dec = PlcDecoder::with_payloads(profile.clone());
        let report = collect(
            &net,
            dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .expect("collector alive");
        let verified = (0..profile.total_blocks())
            .filter(|&i| dec.recovered(i) == Some(&sources[i][..]))
            .count();
        println!(
            "  {id}: {}/{} levels, {}/{} readings verified ({} blocks from {} peers)",
            dec.decoded_levels(),
            profile.num_levels(),
            verified,
            profile.total_blocks(),
            report.blocks_collected,
            report.nodes_queried,
        );
    }
    Ok(())
}
