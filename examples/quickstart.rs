//! Quickstart: encode data in three priority levels with PLC and watch
//! partial decoding recover the important data first.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prlc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);

    // 20 source blocks: 4 critical, 6 important, 10 bulk. Payloads here
    // are 16 GF(256) symbols (i.e. 16 bytes) each.
    let profile = PriorityProfile::new(vec![4, 6, 10])?;
    let n = profile.total_blocks();
    let sources: Vec<Vec<Gf256>> = (0..n)
        .map(|_| (0..16).map(|_| Gf256::random(&mut rng)).collect())
        .collect();

    println!("source data: {n} blocks in levels {:?}", profile.sizes());

    // Generate PLC coded blocks with a uniform priority distribution and
    // feed them to the progressive decoder one at a time.
    let encoder = Encoder::new(Scheme::Plc, profile.clone());
    let distribution = PriorityDistribution::uniform(profile.num_levels());
    let mut decoder = PlcDecoder::with_payloads(profile.clone());

    let mut produced = 0;
    while !decoder.is_complete() {
        let level = distribution.sample_level(&mut rng);
        let block = encoder.encode(level, &sources, &mut rng);
        let before = decoder.decoded_levels();
        decoder.insert_block(&block);
        produced += 1;
        let after = decoder.decoded_levels();
        if after > before {
            println!(
                "after {produced:3} coded blocks: {after} level(s) decoded \
                 ({} source blocks recovered)",
                decoder.decoded_blocks()
            );
        }
    }
    println!("fully decoded after {produced} coded blocks (N = {n})");

    // Every recovered payload matches the original bit for bit.
    for (i, source) in sources.iter().enumerate() {
        assert_eq!(decoder.recovered(i).expect("complete"), &source[..]);
    }
    println!("all payloads verified.");

    // Contrast with RLC: nothing decodes before full rank.
    let rlc = Encoder::new(Scheme::Rlc, profile.clone());
    let mut rlc_dec: RlcDecoder<Gf256> = RlcDecoder::with_payloads(profile);
    for _ in 0..(n - 1) {
        rlc_dec.insert_block(&rlc.encode(0, &sources, &mut rng));
    }
    println!(
        "RLC with {} of {n} blocks: {} levels decoded (all-or-nothing)",
        n - 1,
        rlc_dec.decoded_levels()
    );
    Ok(())
}
