//! The `prlc` command-line tool: priority-coded file persistence.

use std::path::PathBuf;
use std::process::ExitCode;

use prlc_cli::{decode, encode, info, DecodeOptions, EncodeOptions};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::{kernel, Gf256};
use prlc_net::{AdversaryPlan, AdversaryStrategy, CoeffRep, FaultPlan, RetryPolicy, SourceFanout};
use prlc_sim::{
    adversary_results_json, bench_file_name, fmt_f,
    persistence_under_lossy_collection_with_threads, run_bench_probe, run_probe_and_reset, runner,
    simulate_adversary_sweep_with_threads, simulate_decoding_curve_with_threads,
    simulate_persistence_timeline_with_threads, timeline_results_json, AdversarySweepConfig,
    CurveConfig, LossyCollectionConfig, Persistence, RunMetadata, Table, TimelineConfig,
    BENCH_PROBES,
};

const USAGE: &str = "\
prlc — priority random linear codes for files (ICDCS 2007 reproduction)

USAGE:
  prlc encode <FILE> --out <DIR> [--block-size N] [--levels a,b,c]
              [--overhead X] [--scheme rlc|slc|plc] [--seed S]
  prlc decode <DIR> --out <FILE> [--allow-partial]
  prlc info <DIR>
  prlc sim [--scheme rlc|slc|plc|replication|growth] [--levels a,b,c]
           [--max-blocks M] [--runs R] [--seed S] [--threads T]
           [--loss p1,p2,...] [--retries r1,r2,...]
           [--nodes N] [--locations M]
           [--epochs E] [--churn p] [--repair D]
           [--adversary region|eclipse|targeted|creep]
           [--adv-intensity X] [--adv-segment L] [--adv-focus p]
           [--fanout all|log:F] [--coeff dense|sparse]
           [--bench-out FILE] [--metrics FILE|-]
           [--trace FILE|-] [--trace-format json|chrome]
  prlc trace [--scheme rlc|slc|plc] [--levels a,b,c] [--max-blocks M]
             [--seed S] [--out FILE|-] [--format json|chrome]
  prlc bench [--check] [--out DIR] [--baseline-dir DIR]
             [--probe p1,p2,...] [--threads T]
             [--tolerance F] [--wall-tolerance F] [--report FILE]
  prlc lint [--root DIR] [--format text|json] [--allowlist FILE]

The encoder splits FILE into priority levels (leading bytes = most
important), generates overhead·N coded shards, and writes them plus a
manifest into DIR. The decoder recovers the file from whatever shards
remain — with --allow-partial it writes the longest decodable prefix.

`sim` runs the in-memory decoding-curve experiment (paper Sec. 5) over
GF(2⁸): decoded priority levels vs accumulated coded blocks, averaged
over R runs with 95% confidence intervals. --threads defaults to the
available parallelism; the run header reports the selected GF kernel
backend and its measured symbol throughput. --bench-out writes the
curve plus that run metadata as JSON (a BENCH_*.json artifact).

With --loss and/or --retries, `sim` instead sweeps collection over a
fault-injected transport (coding schemes only): blocks are stored on a
ring overlay, a node-failure event strikes, then a collector gathers
the survivors while each per-node query is dropped with probability
--loss and retried up to --retries times. Both flags take
comma-separated lists and form a grid. --nodes sets the overlay size
and --locations the storage locations (defaults scale with the code).

With --epochs, `sim` runs a long-horizon persistence timeline on the
event-driven protocol runtime (coding schemes only): one deployment,
then E churn epochs each killing an alive node with probability
--churn, optionally followed by an in-network repair pass combining
--repair donor blocks per lost slot. Here --loss and --retries take
single values and fault-inject the protocol sessions themselves. The
lazy per-node state of the runtime makes N=10^5 overlays (--nodes
100000) run in seconds. --fanout log:F routes each source block to
ceil(F·ln N) of its eligible locations instead of all of them, and
--coeff sparse stores cached coefficient rows as sorted (index, value)
pairs instead of dense length-N vectors — together they bound both the
bandwidth and the per-block memory at O(ln N). Results are identical
between --coeff dense and --coeff sparse for the same seed.

With --adversary, `sim` mounts a structured fault adversary on the
deployed overlay (coding schemes only) and reports per-epoch decoded
levels plus per-level survival frequencies, collected through the
faulted transport. Strategies: `region` crashes contiguous ring
segments (anchor fraction --adv-intensity, default 0.05; segment
length --adv-segment, default 4), `eclipse` concentrates loss on
traffic leaving through the collector's finger neighborhood
(--adv-intensity = loss, default 0.9), `targeted` adaptively crashes
the caches holding the highest-level blocks (--adv-intensity = kill
count, default locations/4; --adv-focus = greedy-pick probability,
default 1.0), `creep` silently compromises nodes every epoch
(--adv-intensity = per-epoch rate, default 0.1) — compromised nodes
stay in the overlay where repair cannot see them. --epochs (default
4), --churn (default 0 here), --repair, --loss/--retries, --nodes,
--locations, --fanout and --coeff compose as in the timeline mode.

--metrics enables the prlc-obs recorder and dumps the full metrics
snapshot (counters, histograms, events, timers) as one JSON object to
FILE, or to stdout with `-`. Everything except the timers block is
deterministic for a fixed seed, independent of thread count. The same
snapshot is embedded as a \"metrics\" block in --bench-out envelopes.
Setting PRLC_OBS=1 enables recording without a dump.

--trace enables the deterministic causal tracer and dumps the recorded
spans and instant events — stamped with logical clocks, one track per
Monte-Carlo run — to FILE, or stdout with `-`. --trace-format picks
the deterministic JSON layout (default) or the Chrome Trace Event
format, loadable in Perfetto / chrome://tracing. Dumps are
byte-identical across --threads values and kernel backends; the dump
is also embedded as a \"trace\" block in --bench-out envelopes. At
most one of --trace and --metrics may target stdout. PRLC_TRACE=1
enables recording without a dump.

`trace` replays one pinned-seed decoding run (coding schemes only)
with the tracer on and prints the per-level decode waterfall: the
number of coded blocks consumed when each priority level unlocked.
--out additionally exports the raw trace like `sim --trace`.

`bench` runs the canonical pinned-seed probe suite (GF kernel
throughput per backend, the lossy-collection sweep, the N=10^5
timeline, the targeted-adversary sweep, sparse-row bytes vs ln N) and
writes one versioned BENCH_<probe>.json envelope per probe into --out
(default: the current directory) — the files committed at the repo
root as perf baselines. With --check it instead re-runs the probes and
diffs each envelope against --baseline-dir (default: the current
directory): deterministic fields (results, metrics, trace digests, RNG
end states) must match exactly, environmental measurements (MB/s,
wall-clock ms) must sit inside a multiplicative tolerance band
(--tolerance, default 25; --wall-tolerance, default 100). It prints
the run-delta table, writes machine-readable findings JSON to --report
if given, and exits nonzero on any finding. --probe restricts the
suite to a comma-separated subset.

`lint` runs the workspace invariant lints (determinism, unsafe-audit,
metric-key registry, RNG domain separation, panic hygiene, RNG-domain
registry, kernel-dispatch audit) over the repository sources. --root
defaults to the nearest enclosing workspace;
--allowlist defaults to <root>/lint-allowlist.txt. JSON output is
deterministic (sorted findings, no timestamps). Exits nonzero when
findings remain.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    match command.as_str() {
        "encode" => cmd_encode(&args[1..]),
        "decode" => cmd_decode(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "sim" => cmd_sim(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Pulls `--flag value` or `--flag=value` out of `args`.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Ok(Some(v.to_string()));
        }
        if a == flag {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
    }
    Ok(None)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Option<&String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if let Some(stripped) = a.strip_prefix("--") {
            skip_next = !stripped.contains('=') && !matches!(stripped, "allow-partial");
            continue;
        }
        return Some(a);
    }
    None
}

/// The one-line run header shared by every subcommand that does field
/// arithmetic: which GF kernel backend this process dispatched to.
fn print_kernel_header(task: &str) {
    println!(
        "prlc {task} — kernel backend {}",
        kernel::active_backend_description()
    );
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    let input = positional(args).ok_or("encode: missing input file")?;
    print_kernel_header("encode");
    let out = flag_value(args, "--out")?.ok_or("encode: missing --out DIR")?;
    let mut opts = EncodeOptions::default();
    if let Some(v) = flag_value(args, "--block-size")? {
        opts.block_size = v.parse().map_err(|_| "bad --block-size")?;
    }
    if let Some(v) = flag_value(args, "--levels")? {
        opts.level_shares = v
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad --levels (expect e.g. 10,30,60)")?;
    }
    if let Some(v) = flag_value(args, "--overhead")? {
        opts.overhead = v.parse().map_err(|_| "bad --overhead")?;
    }
    if let Some(v) = flag_value(args, "--scheme")? {
        opts.scheme = match v.to_ascii_lowercase().as_str() {
            "rlc" => Scheme::Rlc,
            "slc" => Scheme::Slc,
            "plc" => Scheme::Plc,
            _ => return Err("bad --scheme (rlc|slc|plc)".into()),
        };
    }
    if let Some(v) = flag_value(args, "--seed")? {
        opts.seed = v.parse().map_err(|_| "bad --seed")?;
    }
    let shards =
        encode(&PathBuf::from(input), &PathBuf::from(&out), &opts).map_err(|e| e.to_string())?;
    println!("wrote {shards} shards + manifest to {out}");
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let dir = positional(args).ok_or("decode: missing shard directory")?;
    let out = flag_value(args, "--out")?.ok_or("decode: missing --out FILE")?;
    print_kernel_header("decode");
    let opts = DecodeOptions {
        allow_partial: has_flag(args, "--allow-partial"),
    };
    let outcome =
        decode(&PathBuf::from(dir), &PathBuf::from(&out), &opts).map_err(|e| e.to_string())?;
    if outcome.complete {
        println!(
            "recovered {} bytes (complete, integrity verified) from {} shards",
            outcome.recovered_bytes, outcome.shards_read
        );
    } else {
        println!(
            "partial recovery: {} bytes, {}/{} priority levels, from {} shards \
             ({} skipped)",
            outcome.recovered_bytes,
            outcome.levels_recovered,
            outcome.levels_total,
            outcome.shards_read,
            outcome.shards_skipped
        );
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let dir = positional(args).ok_or("info: missing shard directory")?;
    let report = info(&PathBuf::from(dir)).map_err(|e| e.to_string())?;
    let m = &report.manifest;
    println!("file length : {} bytes", m.file_len);
    println!("block size  : {} bytes", m.block_size);
    println!("scheme      : {:?}", m.scheme);
    println!(
        "blocks      : {} in {} levels",
        m.total_blocks(),
        m.level_sizes.len()
    );
    for (i, (&size, &present)) in m
        .level_sizes
        .iter()
        .zip(&report.shards_per_level)
        .enumerate()
    {
        let status = if present >= size as usize {
            "likely decodable"
        } else {
            "under-provisioned"
        };
        println!(
            "  level {}: {} source blocks, {} shards present ({status})",
            i + 1,
            size,
            present
        );
    }
    if report.shards_skipped > 0 {
        println!(
            "skipped     : {} corrupt/foreign files",
            report.shards_skipped
        );
    }
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let persistence = match flag_value(args, "--scheme")?
        .map(|s| s.to_ascii_lowercase())
        .as_deref()
    {
        None | Some("plc") => Persistence::Coding(Scheme::Plc),
        Some("rlc") => Persistence::Coding(Scheme::Rlc),
        Some("slc") => Persistence::Coding(Scheme::Slc),
        Some("replication") => Persistence::Replication,
        Some("growth") => Persistence::Growth,
        Some(_) => return Err("bad --scheme (rlc|slc|plc|replication|growth)".into()),
    };
    let level_sizes: Vec<usize> = match flag_value(args, "--levels")? {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad --levels (expect e.g. 2,3,5)")?,
        None => vec![2, 3, 5],
    };
    let profile = PriorityProfile::new(level_sizes).map_err(|e| format!("bad --levels: {e}"))?;
    let distribution = PriorityDistribution::uniform(profile.num_levels());
    let max_blocks = match flag_value(args, "--max-blocks")? {
        Some(v) => v.parse().map_err(|_| "bad --max-blocks")?,
        None => 3 * profile.total_blocks(),
    };
    let runs = match flag_value(args, "--runs")? {
        Some(v) => v.parse().map_err(|_| "bad --runs")?,
        None => 100,
    };
    let seed = match flag_value(args, "--seed")? {
        Some(v) => v.parse().map_err(|_| "bad --seed")?,
        None => 1,
    };
    let threads = match flag_value(args, "--threads")? {
        Some(v) => {
            let t: usize = v.parse().map_err(|_| "bad --threads")?;
            if t == 0 {
                return Err("--threads must be at least 1".into());
            }
            t
        }
        None => runner::default_threads(),
    };

    let metrics_out = flag_value(args, "--metrics")?;
    if metrics_out.is_some() {
        prlc_obs::enable();
    }
    let trace_out = flag_value(args, "--trace")?;
    let trace_format = flag_value(args, "--trace-format")?.unwrap_or_else(|| "json".to_string());
    if trace_format != "json" && trace_format != "chrome" {
        return Err(format!(
            "--trace-format must be json|chrome, got {trace_format:?}"
        ));
    }
    if trace_out.as_deref() == Some("-") && metrics_out.as_deref() == Some("-") {
        return Err(
            "--trace - and --metrics - both target stdout and would interleave; \
                    write at least one of them to a file"
                .into(),
        );
    }
    if trace_out.is_some() {
        prlc_obs::trace::enable();
    }

    // Run header: environment first, so perf numbers in the output are
    // attributable to a backend and worker count. The shared helper also
    // clears the recorders of the throughput probe's own kernel traffic.
    let mut meta = run_probe_and_reset(threads);
    println!(
        "prlc sim — kernel backend {}, {} threads, {} MB/s symbol throughput",
        meta.kernel_backend,
        meta.threads,
        fmt_f(meta.symbol_throughput_mb_s, 0)
    );
    println!(
        "scheme {persistence}, levels {:?}, {runs} runs, seed {seed}",
        (0..profile.num_levels())
            .map(|l| profile.blocks_of(l).count())
            .collect::<Vec<_>>()
    );

    if flag_value(args, "--adversary")?.is_some() {
        return cmd_sim_adversary(
            args,
            persistence,
            profile,
            distribution,
            runs,
            seed,
            threads,
            &mut meta,
            metrics_out.as_deref(),
        );
    }

    if flag_value(args, "--epochs")?.is_some() {
        return cmd_sim_timeline(
            args,
            persistence,
            profile,
            distribution,
            runs,
            seed,
            threads,
            &mut meta,
            metrics_out.as_deref(),
        );
    }

    let losses = flag_value(args, "--loss")?;
    let retries = flag_value(args, "--retries")?;
    if losses.is_some() || retries.is_some() {
        return cmd_sim_lossy(
            args,
            persistence,
            profile,
            distribution,
            runs,
            seed,
            threads,
            &mut meta,
            metrics_out.as_deref(),
            losses.as_deref(),
            retries.as_deref(),
        );
    }

    let cfg = CurveConfig {
        persistence,
        profile,
        distribution,
        max_blocks,
        runs,
        seed,
    };
    let curve = simulate_decoding_curve_with_threads::<Gf256>(&cfg, threads);

    let mut table = Table::new(["blocks", "levels", "ci95"]);
    let step = (max_blocks / 20).max(1);
    for m in (0..=max_blocks).step_by(step) {
        let s = curve.summaries[m];
        table.push_row([m.to_string(), fmt_f(s.mean, 3), fmt_f(s.ci95, 3)]);
    }
    println!("{}", table.render());

    let metrics_json = match metrics_out.as_deref() {
        Some(dest) => Some(finish_metrics(&mut meta, dest)?),
        None => None,
    };
    let trace_json = match trace_out.as_deref() {
        Some(dest) => Some(finish_trace(dest, &trace_format)?),
        None => None,
    };

    if let Some(path) = flag_value(args, "--bench-out")? {
        let results: Vec<String> = curve
            .summaries
            .iter()
            .enumerate()
            .map(|(m, s)| {
                format!(
                    "{{\"blocks\":{m},\"mean\":{:.6},\"ci95\":{:.6}}}",
                    s.mean, s.ci95
                )
            })
            .collect();
        let json = format!("[{}]", results.join(","));
        meta.write_bench_json_with_blocks(
            std::path::Path::new(&path),
            &json,
            metrics_json.as_deref(),
            trace_json.as_deref(),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote curve + run metadata to {path}");
    }
    Ok(())
}

/// The `bench` subcommand: run the canonical probe suite and either
/// write fresh `BENCH_<probe>.json` baselines (default) or diff the
/// suite against committed baselines and gate on the result (--check).
fn cmd_bench(args: &[String]) -> Result<(), String> {
    use prlc_obs::baseline::{diff_envelopes, findings_json, Tolerances};

    let check = has_flag(args, "--check");
    let probes: Vec<String> = match flag_value(args, "--probe")? {
        Some(v) => {
            let list: Vec<String> = v.split(',').map(|s| s.trim().to_string()).collect();
            for p in &list {
                if !BENCH_PROBES.contains(&p.as_str()) {
                    return Err(format!(
                        "unknown probe {p:?} (want one of {})",
                        BENCH_PROBES.join(", ")
                    ));
                }
            }
            list
        }
        None => BENCH_PROBES.iter().map(|s| s.to_string()).collect(),
    };
    let threads = match flag_value(args, "--threads")? {
        Some(v) => {
            let t: usize = v.parse().map_err(|_| "bad --threads")?;
            if t == 0 {
                return Err("--threads must be at least 1".into());
            }
            t
        }
        None => runner::default_threads(),
    };
    let mut tol = Tolerances::default();
    if let Some(v) = flag_value(args, "--tolerance")? {
        tol.throughput_factor = parse_band_factor(&v, "--tolerance")?;
    }
    if let Some(v) = flag_value(args, "--wall-tolerance")? {
        tol.wall_factor = parse_band_factor(&v, "--wall-tolerance")?;
    }

    // Baseline envelopes always carry the deterministic metrics block
    // and the trace digest, so the check has exact fields to hold.
    prlc_obs::enable();
    prlc_obs::trace::enable();
    println!(
        "prlc bench — kernel backend {}, {} threads, probes: {}",
        kernel::active_backend_description(),
        threads,
        probes.join(", ")
    );

    if !check {
        let out_dir = flag_value(args, "--out")?.unwrap_or_else(|| ".".to_string());
        for probe in &probes {
            let env = run_bench_probe(probe, threads)?;
            let path = std::path::Path::new(&out_dir).join(bench_file_name(probe));
            std::fs::write(&path, env).map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
        return Ok(());
    }

    let baseline_dir = flag_value(args, "--baseline-dir")?.unwrap_or_else(|| ".".to_string());
    let mut reports = Vec::new();
    for probe in &probes {
        let path = std::path::Path::new(&baseline_dir).join(bench_file_name(probe));
        let baseline = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
        let current = run_bench_probe(probe, threads)?;
        reports.push(diff_envelopes(probe, &baseline, &current, &tol)?);
    }

    // The run-delta table: every environmental measurement with its
    // signed change, plus label moves (backend, threads) at `n/a`.
    let mut table = Table::new(["probe", "field", "baseline", "current", "delta", "band"]);
    for r in &reports {
        for d in &r.deltas {
            table.push_row([
                d.probe.clone(),
                d.path.clone(),
                d.baseline.clone(),
                d.current.clone(),
                match d.delta_pct {
                    Some(p) if p.is_finite() => format!("{p:+.1}%"),
                    _ => "n/a".to_string(),
                },
                if d.in_band { "ok" } else { "OUT" }.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    let findings: usize = reports.iter().map(|r| r.findings.len()).sum();
    for r in &reports {
        for f in &r.findings {
            eprintln!(
                "FINDING [{}] {}: {} — baseline {}, current {}",
                f.kind.code(),
                f.probe,
                f.path,
                f.baseline,
                f.current
            );
        }
    }
    if let Some(report_path) = flag_value(args, "--report")? {
        std::fs::write(&report_path, findings_json(&reports))
            .map_err(|e| format!("writing {report_path}: {e}"))?;
        println!("wrote findings report to {report_path}");
    }
    if findings > 0 {
        Err(format!(
            "bench check failed: {findings} finding(s) across {} probe(s)",
            reports.iter().filter(|r| !r.clean()).count()
        ))
    } else {
        println!(
            "bench check clean: {} probe(s), {} environmental delta(s) in band",
            reports.len(),
            reports.iter().map(|r| r.deltas.len()).sum::<usize>()
        );
        Ok(())
    }
}

/// Parses a tolerance band factor: a finite number >= 1.
fn parse_band_factor(v: &str, flag: &str) -> Result<f64, String> {
    let f: f64 = v.parse().map_err(|_| format!("bad {flag}"))?;
    if !f.is_finite() || f < 1.0 {
        return Err(format!("{flag} must be a finite factor >= 1"));
    }
    Ok(f)
}

/// The `lint` subcommand: run the workspace invariant lints and report.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let format = flag_value(args, "--format")?.unwrap_or_else(|| "text".to_string());
    if format != "text" && format != "json" {
        return Err(format!("--format must be text|json, got {format:?}"));
    }
    let allowlist = flag_value(args, "--allowlist")?.map(PathBuf::from);
    let root = match flag_value(args, "--root")? {
        Some(r) => PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            prlc_lint::find_workspace_root(&cwd).ok_or_else(|| {
                format!(
                    "could not find a workspace root above {} (pass --root)",
                    cwd.display()
                )
            })?
        }
    };
    let report = prlc_lint::run(&root, allowlist.as_deref()).map_err(|e| format!("lint: {e}"))?;
    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!("{} lint finding(s)", report.findings.len()))
    }
}

/// Finalises a metrics-enabled `sim` run: folds the `sim.run` timer into
/// the metadata, renders the full snapshot, and delivers it to `dest`
/// (`-` = one JSON line on stdout). Returns the JSON so callers can also
/// embed it in a bench envelope.
fn finish_metrics(meta: &mut RunMetadata, dest: &str) -> Result<String, String> {
    meta.aggregate_obs_timing();
    let json = prlc_obs::snapshot().to_json();
    if dest == "-" {
        println!("{json}");
    } else {
        std::fs::write(dest, format!("{json}\n")).map_err(|e| format!("writing {dest}: {e}"))?;
        println!("wrote metrics to {dest}");
    }
    Ok(json)
}

/// Finalises a trace-enabled run: renders the recorded trace in the
/// requested format and delivers it to `dest` (`-` = stdout). Returns
/// the rendering so callers can also embed it in a bench envelope.
fn finish_trace(dest: &str, format: &str) -> Result<String, String> {
    let snap = prlc_obs::trace::snapshot();
    let rendered = match format {
        "chrome" => snap.to_chrome_trace(),
        _ => snap.to_json(),
    };
    if dest == "-" {
        println!("{rendered}");
    } else {
        std::fs::write(dest, format!("{rendered}\n"))
            .map_err(|e| format!("writing {dest}: {e}"))?;
        println!("wrote trace to {dest}");
    }
    Ok(rendered)
}

/// The `trace` subcommand: replay one pinned-seed decoding run with the
/// causal tracer on and print the per-level decode waterfall (coded
/// blocks consumed at each level unlock).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let scheme = match flag_value(args, "--scheme")?
        .map(|s| s.to_ascii_lowercase())
        .as_deref()
    {
        None | Some("plc") => Scheme::Plc,
        Some("rlc") => Scheme::Rlc,
        Some("slc") => Scheme::Slc,
        Some(_) => return Err("trace: bad --scheme (rlc|slc|plc)".into()),
    };
    let level_sizes: Vec<usize> = match flag_value(args, "--levels")? {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad --levels (expect e.g. 2,3,5)")?,
        None => vec![2, 3, 5],
    };
    let profile = PriorityProfile::new(level_sizes).map_err(|e| format!("bad --levels: {e}"))?;
    let max_blocks = match flag_value(args, "--max-blocks")? {
        Some(v) => v.parse().map_err(|_| "bad --max-blocks")?,
        None => 3 * profile.total_blocks(),
    };
    let seed = match flag_value(args, "--seed")? {
        Some(v) => v.parse().map_err(|_| "bad --seed")?,
        None => 1,
    };
    let out = flag_value(args, "--out")?;
    let format = flag_value(args, "--format")?.unwrap_or_else(|| "json".to_string());
    if format != "json" && format != "chrome" {
        return Err(format!("--format must be json|chrome, got {format:?}"));
    }

    print_kernel_header("trace");
    println!(
        "scheme {}, levels {:?}, 1 run, seed {seed}",
        Persistence::Coding(scheme),
        (0..profile.num_levels())
            .map(|l| profile.blocks_of(l).count())
            .collect::<Vec<_>>()
    );

    prlc_obs::trace::enable();
    prlc_obs::trace::reset();
    let cfg = CurveConfig {
        persistence: Persistence::Coding(scheme),
        profile: profile.clone(),
        distribution: PriorityDistribution::uniform(profile.num_levels()),
        max_blocks,
        runs: 1,
        seed,
    };
    simulate_decoding_curve_with_threads::<Gf256>(&cfg, 1);
    let snap = prlc_obs::trace::snapshot();

    // Per-level unlock ticks from the provenance instants: tick is the
    // count of coded blocks the decoder had consumed at the unlock.
    let mut unlock: Vec<Option<u64>> = vec![None; profile.num_levels()];
    for (_, rec) in snap.iter() {
        if rec.name() != "core.decode.level_unlock" {
            continue;
        }
        if let Some(level) = rec.arg("level") {
            if let Some(slot) = unlock.get_mut(level as usize) {
                slot.get_or_insert(rec.tick());
            }
        }
    }

    let mut table = Table::new(["level", "size", "rows-to-unlock"]);
    for l in 0..profile.num_levels() {
        table.push_row([
            (l + 1).to_string(),
            profile.blocks_of(l).count().to_string(),
            unlock[l].map_or_else(|| "-".to_string(), |t| t.to_string()),
        ]);
    }
    println!("{}", table.render());
    let unlocked = unlock.iter().filter(|u| u.is_some()).count();
    println!(
        "{unlocked}/{} levels unlocked within {max_blocks} coded blocks",
        profile.num_levels()
    );

    if let Some(dest) = out {
        finish_trace(&dest, &format)?;
    }
    Ok(())
}

/// Parses `--nodes` / `--locations` for the overlay-backed sim paths,
/// with validation against the code parameters: an overlay that cannot
/// hold a decodable deployment is rejected up front with an actionable
/// message instead of failing deep inside the protocol.
fn overlay_geometry(args: &[String], profile: &PriorityProfile) -> Result<(usize, usize), String> {
    let total = profile.total_blocks();
    let nodes: usize = match flag_value(args, "--nodes")? {
        Some(v) => v.parse().map_err(|_| "bad --nodes")?,
        None => 4 * total.max(20),
    };
    if nodes < 2 * total {
        return Err(format!(
            "--nodes {nodes} is too small for this code: {total} source blocks \
             need at least {} nodes (2x the code width) to hold a decodable \
             set of storage locations",
            2 * total
        ));
    }
    let locations: usize = match flag_value(args, "--locations")? {
        Some(v) => v.parse().map_err(|_| "bad --locations")?,
        // nodes/2 like the original sweeps, capped so that huge overlays
        // (--nodes 100000) keep a code-sized deployment instead of
        // scaling the location count with the network.
        None => (nodes / 2).min(4 * total.max(20)),
    };
    if locations < total {
        return Err(format!(
            "--locations {locations} is below the code width {total}: the \
             deployment could never be fully decodable"
        ));
    }
    Ok((nodes, locations))
}

/// The `sim --adversary` path: per-epoch decoding degradation under a
/// structured fault adversary, measured through the faulted transport.
#[allow(clippy::too_many_arguments)]
fn cmd_sim_adversary(
    args: &[String],
    persistence: Persistence,
    profile: PriorityProfile,
    distribution: PriorityDistribution,
    runs: usize,
    seed: u64,
    threads: usize,
    meta: &mut RunMetadata,
    metrics_out: Option<&str>,
) -> Result<(), String> {
    let Persistence::Coding(scheme) = persistence else {
        return Err("--adversary needs a coding scheme (rlc|slc|plc): the \
                    baselines have no networked persistence path"
            .into());
    };
    let (nodes, locations) = overlay_geometry(args, &profile)?;
    let intensity = flag_value(args, "--adv-intensity")?;
    let strategy = match flag_value(args, "--adversary")?.as_deref() {
        Some("region") => {
            let fraction: f64 = match intensity.as_deref() {
                Some(v) => v.parse().map_err(|_| "bad --adv-intensity")?,
                None => 0.05,
            };
            let segment_len: usize = match flag_value(args, "--adv-segment")?.as_deref() {
                Some(v) => v.parse().map_err(|_| "bad --adv-segment")?,
                None => 4,
            };
            if !(0.0..=1.0).contains(&fraction) {
                return Err("--adv-intensity (region fraction) must be in [0,1]".into());
            }
            if segment_len == 0 {
                return Err("--adv-segment must be at least 1".into());
            }
            AdversaryStrategy::Region {
                fraction,
                segment_len,
            }
        }
        Some("eclipse") => {
            let loss: f64 = match intensity.as_deref() {
                Some(v) => v.parse().map_err(|_| "bad --adv-intensity")?,
                None => 0.9,
            };
            if !(0.0..=1.0).contains(&loss) {
                return Err("--adv-intensity (eclipse loss) must be in [0,1]".into());
            }
            AdversaryStrategy::Eclipse { loss }
        }
        Some("targeted") => {
            let kills: usize = match intensity.as_deref() {
                Some(v) => v
                    .parse()
                    .map_err(|_| "bad --adv-intensity (targeted takes a kill count)")?,
                None => locations / 4,
            };
            let focus: f64 = match flag_value(args, "--adv-focus")?.as_deref() {
                Some(v) => v.parse().map_err(|_| "bad --adv-focus")?,
                None => 1.0,
            };
            if !(0.0..=1.0).contains(&focus) {
                return Err("--adv-focus must be in [0,1]".into());
            }
            AdversaryStrategy::Targeted { kills, focus }
        }
        Some("creep") => {
            let per_epoch: f64 = match intensity.as_deref() {
                Some(v) => v.parse().map_err(|_| "bad --adv-intensity")?,
                None => 0.1,
            };
            if !(0.0..=1.0).contains(&per_epoch) {
                return Err("--adv-intensity (creep rate) must be in [0,1]".into());
            }
            AdversaryStrategy::Creep { per_epoch }
        }
        Some(v) => {
            return Err(format!(
                "bad --adversary {v:?} (want region|eclipse|targeted|creep)"
            ))
        }
        None => return Err("--adversary missing".into()),
    };
    let epochs: usize = match flag_value(args, "--epochs")? {
        Some(v) => {
            let e = v.parse().map_err(|_| "bad --epochs")?;
            if e == 0 {
                return Err("--epochs must be at least 1".into());
            }
            e
        }
        None => 4,
    };
    let churn: f64 = match flag_value(args, "--churn")? {
        Some(v) => v.parse().map_err(|_| "bad --churn")?,
        None => 0.0,
    };
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0,1]".into());
    }
    let repair_donors: Option<usize> = match flag_value(args, "--repair")? {
        Some(v) => {
            let d: usize = v.parse().map_err(|_| "bad --repair")?;
            if d == 0 {
                return Err("--repair needs at least one donor per slot".into());
            }
            Some(d)
        }
        None => None,
    };
    let loss: f64 = match flag_value(args, "--loss")? {
        Some(v) => v
            .parse()
            .map_err(|_| "bad --loss (an adversary sweep takes a single rate)")?,
        None => 0.0,
    };
    if !(0.0..=1.0).contains(&loss) {
        return Err("--loss must be in [0,1]".into());
    }
    let retries: usize = match flag_value(args, "--retries")? {
        Some(v) => v
            .parse()
            .map_err(|_| "bad --retries (an adversary sweep takes a single budget)")?,
        None => 0,
    };
    let fanout = match flag_value(args, "--fanout")?.as_deref() {
        None | Some("all") => SourceFanout::All,
        Some(v) => match v.strip_prefix("log:") {
            Some(f) => {
                let factor: f64 = f.parse().map_err(|_| "bad --fanout factor")?;
                if !factor.is_finite() || factor <= 0.0 {
                    return Err("--fanout log factor must be finite and > 0".into());
                }
                SourceFanout::Log { factor }
            }
            None => return Err(format!("bad --fanout {v:?} (want all or log:F)")),
        },
    };
    let coeff_rep = match flag_value(args, "--coeff")?.as_deref() {
        None | Some("dense") => CoeffRep::Dense,
        Some("sparse") => CoeffRep::Sparse,
        Some(v) => return Err(format!("bad --coeff {v:?} (want dense or sparse)")),
    };
    let faults = if loss > 0.0 {
        FaultPlan::lossy(loss, RetryPolicy::with_retries(retries, 1), seed)
    } else {
        FaultPlan::none()
    };

    println!(
        "adversary sweep: {strategy:?}, {nodes} nodes, {locations} locations, \
         {epochs} epochs, churn {}, repair {}, loss {}",
        fmt_f(churn, 2),
        repair_donors.map_or_else(|| "off".to_string(), |d| format!("{d} donors")),
        fmt_f(loss, 2),
    );
    let cfg = AdversarySweepConfig {
        scheme,
        profile,
        distribution,
        nodes,
        locations,
        adversary: AdversaryPlan {
            strategy,
            after_messages: 0,
            seed,
        },
        epochs,
        churn_per_epoch: churn,
        repair_donors,
        faults,
        fanout,
        coeff_rep,
        runs,
        seed,
    };
    let out = simulate_adversary_sweep_with_threads::<Gf256>(&cfg, threads);

    let mut table = Table::new(["epoch", "levels", "ci95", "survival"]);
    for e in &out {
        let survival: Vec<String> = e.level_survival.iter().map(|s| fmt_f(*s, 2)).collect();
        table.push_row([
            e.epoch.to_string(),
            fmt_f(e.decoded_levels.mean, 3),
            fmt_f(e.decoded_levels.ci95, 3),
            survival.join(" "),
        ]);
    }
    println!("{}", table.render());

    let metrics_json = match metrics_out {
        Some(dest) => Some(finish_metrics(meta, dest)?),
        None => None,
    };
    let trace_out = flag_value(args, "--trace")?;
    let trace_format = flag_value(args, "--trace-format")?.unwrap_or_else(|| "json".to_string());
    let trace_json = match trace_out.as_deref() {
        Some(dest) => Some(finish_trace(dest, &trace_format)?),
        None => None,
    };

    if let Some(path) = flag_value(args, "--bench-out")? {
        meta.write_bench_json_with_blocks(
            std::path::Path::new(&path),
            &adversary_results_json(&out),
            metrics_json.as_deref(),
            trace_json.as_deref(),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote adversary sweep + run metadata to {path}");
    }
    Ok(())
}

/// The `sim --epochs` path: a long-horizon persistence timeline on the
/// event-driven protocol runtime — churn epoch after churn epoch, with
/// optional in-network repair and fault-injected protocol sessions.
#[allow(clippy::too_many_arguments)]
fn cmd_sim_timeline(
    args: &[String],
    persistence: Persistence,
    profile: PriorityProfile,
    distribution: PriorityDistribution,
    runs: usize,
    seed: u64,
    threads: usize,
    meta: &mut RunMetadata,
    metrics_out: Option<&str>,
) -> Result<(), String> {
    let Persistence::Coding(scheme) = persistence else {
        return Err("--epochs needs a coding scheme (rlc|slc|plc): the \
                    baselines have no networked persistence path"
            .into());
    };
    let epochs: usize = flag_value(args, "--epochs")?
        .ok_or("--epochs missing")?
        .parse()
        .map_err(|_| "bad --epochs")?;
    if epochs == 0 {
        return Err("--epochs must be at least 1".into());
    }
    let churn: f64 = match flag_value(args, "--churn")? {
        Some(v) => v.parse().map_err(|_| "bad --churn")?,
        None => 0.2,
    };
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0,1]".into());
    }
    let repair_donors: Option<usize> = match flag_value(args, "--repair")? {
        Some(v) => {
            let d: usize = v.parse().map_err(|_| "bad --repair")?;
            if d == 0 {
                return Err("--repair needs at least one donor per slot".into());
            }
            Some(d)
        }
        None => None,
    };
    let loss: f64 = match flag_value(args, "--loss")? {
        Some(v) => v
            .parse()
            .map_err(|_| "bad --loss (a timeline takes a single rate)")?,
        None => 0.0,
    };
    if !(0.0..=1.0).contains(&loss) {
        return Err("--loss must be in [0,1]".into());
    }
    let retries: usize = match flag_value(args, "--retries")? {
        Some(v) => v
            .parse()
            .map_err(|_| "bad --retries (a timeline takes a single budget)")?,
        None => 0,
    };
    let (nodes, locations) = overlay_geometry(args, &profile)?;
    let fanout = match flag_value(args, "--fanout")?.as_deref() {
        None | Some("all") => SourceFanout::All,
        Some(v) => match v.strip_prefix("log:") {
            Some(f) => {
                let factor: f64 = f.parse().map_err(|_| "bad --fanout factor")?;
                if !factor.is_finite() || factor <= 0.0 {
                    return Err("--fanout log factor must be finite and > 0".into());
                }
                SourceFanout::Log { factor }
            }
            None => return Err(format!("bad --fanout {v:?} (want all or log:F)")),
        },
    };
    let coeff_rep = match flag_value(args, "--coeff")?.as_deref() {
        None | Some("dense") => CoeffRep::Dense,
        Some("sparse") => CoeffRep::Sparse,
        Some(v) => return Err(format!("bad --coeff {v:?} (want dense or sparse)")),
    };
    let faults = if loss > 0.0 {
        FaultPlan::lossy(loss, RetryPolicy::with_retries(retries, 1), seed)
    } else {
        FaultPlan::none()
    };

    println!(
        "persistence timeline: {nodes} nodes, {locations} locations, \
         {epochs} epochs, churn {}, repair {}, loss {}",
        fmt_f(churn, 2),
        repair_donors.map_or_else(|| "off".to_string(), |d| format!("{d} donors")),
        fmt_f(loss, 2),
    );
    let cfg = TimelineConfig {
        scheme,
        profile,
        distribution,
        nodes,
        locations,
        churn_per_epoch: churn,
        epochs,
        repair_donors,
        faults,
        fanout,
        coeff_rep,
        runs,
        seed,
    };
    let summaries = simulate_persistence_timeline_with_threads::<Gf256>(&cfg, threads)
        .map_err(|e| format!("timeline simulation failed: {e}"))?;

    let mut table = Table::new(["epoch", "levels", "ci95"]);
    for (epoch, s) in summaries.iter().enumerate() {
        table.push_row([epoch.to_string(), fmt_f(s.mean, 3), fmt_f(s.ci95, 3)]);
    }
    println!("{}", table.render());

    let metrics_json = match metrics_out {
        Some(dest) => Some(finish_metrics(meta, dest)?),
        None => None,
    };
    let trace_out = flag_value(args, "--trace")?;
    let trace_format = flag_value(args, "--trace-format")?.unwrap_or_else(|| "json".to_string());
    let trace_json = match trace_out.as_deref() {
        Some(dest) => Some(finish_trace(dest, &trace_format)?),
        None => None,
    };

    if let Some(path) = flag_value(args, "--bench-out")? {
        meta.write_bench_json_with_blocks(
            std::path::Path::new(&path),
            &timeline_results_json(&summaries),
            metrics_json.as_deref(),
            trace_json.as_deref(),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote persistence timeline + run metadata to {path}");
    }
    Ok(())
}

/// The `sim --loss/--retries` path: collection over a fault-injected
/// transport, swept across the loss × retry-budget grid.
#[allow(clippy::too_many_arguments)]
fn cmd_sim_lossy(
    args: &[String],
    persistence: Persistence,
    profile: PriorityProfile,
    distribution: PriorityDistribution,
    runs: usize,
    seed: u64,
    threads: usize,
    meta: &mut RunMetadata,
    metrics_out: Option<&str>,
    losses: Option<&str>,
    retries: Option<&str>,
) -> Result<(), String> {
    let Persistence::Coding(scheme) = persistence else {
        return Err("--loss/--retries need a coding scheme (rlc|slc|plc): the \
                    baselines have no networked collection path"
            .into());
    };
    let losses: Vec<f64> = match losses {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad --loss (expect e.g. 0,0.2,0.5)")?,
        None => vec![0.0, 0.1, 0.3, 0.5],
    };
    if losses.iter().any(|p| !(0.0..=1.0).contains(p)) {
        return Err("--loss rates must be in [0,1]".into());
    }
    let retry_budgets: Vec<usize> = match retries {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad --retries (expect e.g. 0,1,3)")?,
        None => vec![0, 1, 3],
    };
    if losses.is_empty() || retry_budgets.is_empty() {
        return Err("--loss and --retries need at least one value each".into());
    }

    let (nodes, locations) = overlay_geometry(args, &profile)?;
    let cfg = LossyCollectionConfig {
        scheme,
        profile,
        distribution,
        nodes,
        locations,
        node_failure: 0.3,
        backoff_hops: 1,
        runs,
        seed,
    };
    println!(
        "lossy collection: {} nodes, {} locations, 30% node failure",
        cfg.nodes, cfg.locations
    );
    let sweep = persistence_under_lossy_collection_with_threads::<Gf256>(
        &cfg,
        &losses,
        &retry_budgets,
        threads,
    )
    .map_err(|e| format!("lossy-collection sweep failed: {e}"))?;

    let mut table = Table::new([
        "loss", "retries", "levels", "ci95", "lost", "resent", "gave-up", "hops",
    ]);
    for cell in &sweep.cells {
        table.push_row([
            fmt_f(cell.loss, 2),
            cell.retries.to_string(),
            fmt_f(cell.decoded_levels.mean, 3),
            fmt_f(cell.decoded_levels.ci95, 3),
            fmt_f(cell.lost_messages, 1),
            fmt_f(cell.retries_spent, 1),
            fmt_f(cell.gave_up, 1),
            fmt_f(cell.query_hops, 0),
        ]);
    }
    println!("{}", table.render());

    let metrics_json = match metrics_out {
        Some(dest) => Some(finish_metrics(meta, dest)?),
        None => None,
    };
    let trace_out = flag_value(args, "--trace")?;
    let trace_format = flag_value(args, "--trace-format")?.unwrap_or_else(|| "json".to_string());
    let trace_json = match trace_out.as_deref() {
        Some(dest) => Some(finish_trace(dest, &trace_format)?),
        None => None,
    };

    if let Some(path) = flag_value(args, "--bench-out")? {
        meta.write_bench_json_with_blocks(
            std::path::Path::new(&path),
            &sweep.results_json(),
            metrics_json.as_deref(),
            trace_json.as_deref(),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote lossy-collection sweep + run metadata to {path}");
    }
    Ok(())
}
