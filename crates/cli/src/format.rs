//! The on-disk container format for coded shards and the manifest.
//!
//! Everything is explicit little-endian binary with magic numbers,
//! version bytes and FNV-1a integrity checksums — no external
//! serialisation dependency. Two file kinds:
//!
//! * **manifest** (`manifest.prlcm`): file metadata needed to
//!   reassemble — original length, block size, level sizes, scheme.
//! * **shard** (`shard-*.prlc`): one coded block — level, dense
//!   coefficient vector over GF(2⁸) and payload.

use std::fmt;
use std::io::{self, Read, Write};

use prlc_core::{CodedBlock, CoeffRow, PriorityProfile, Scheme};
use prlc_gf::Gf256;

const SHARD_MAGIC: &[u8; 4] = b"PRLC";
const MANIFEST_MAGIC: &[u8; 4] = b"PRLM";
const VERSION: u8 = 1;

/// Errors reading or writing container files.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong magic bytes (not a PRLC file).
    BadMagic,
    /// Unsupported container version.
    BadVersion(u8),
    /// Checksum mismatch: the file is corrupt.
    Corrupt,
    /// Structurally invalid contents (message attached).
    Invalid(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic => write!(f, "not a PRLC container file"),
            FormatError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            FormatError::Corrupt => write!(f, "checksum mismatch (corrupt file)"),
            FormatError::Invalid(m) => write!(f, "invalid container contents: {m}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// FNV-1a 64-bit hash, used as the integrity checksum.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.data.len() {
            return Err(FormatError::Invalid("truncated file".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn scheme_tag(s: Scheme) -> u8 {
    match s {
        Scheme::Rlc => 0,
        Scheme::Slc => 1,
        Scheme::Plc => 2,
    }
}

fn scheme_from_tag(t: u8) -> Result<Scheme, FormatError> {
    match t {
        0 => Ok(Scheme::Rlc),
        1 => Ok(Scheme::Slc),
        2 => Ok(Scheme::Plc),
        _ => Err(FormatError::Invalid(format!("unknown scheme tag {t}"))),
    }
}

/// The manifest: everything needed to reassemble the original file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Original file length in bytes.
    pub file_len: u64,
    /// Source-block payload size in bytes.
    pub block_size: u32,
    /// The coding scheme of the shards.
    pub scheme: Scheme,
    /// Per-level source-block counts (most important first).
    pub level_sizes: Vec<u32>,
    /// FNV-1a checksum of the original file (verified after full
    /// recovery).
    pub file_hash: u64,
}

impl Manifest {
    /// The priority profile implied by the manifest.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] if the level sizes are not a
    /// valid profile.
    pub fn profile(&self) -> Result<PriorityProfile, FormatError> {
        PriorityProfile::new(self.level_sizes.iter().map(|&s| s as usize).collect())
            .map_err(|e| FormatError::Invalid(e.to_string()))
    }

    /// Total number of source blocks.
    pub fn total_blocks(&self) -> usize {
        self.level_sizes.iter().map(|&s| s as usize).sum()
    }

    /// Serialises the manifest.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), FormatError> {
        let mut body = Vec::new();
        put_u64(&mut body, self.file_len);
        put_u32(&mut body, self.block_size);
        body.push(scheme_tag(self.scheme));
        put_u32(&mut body, self.level_sizes.len() as u32);
        for &s in &self.level_sizes {
            put_u32(&mut body, s);
        }
        put_u64(&mut body, self.file_hash);

        w.write_all(MANIFEST_MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&(body.len() as u32).to_le_bytes())?;
        w.write_all(&fnv1a(&body).to_le_bytes())?;
        w.write_all(&body)?;
        Ok(())
    }

    /// Deserialises a manifest.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, FormatError> {
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        let mut c = Cursor::new(&raw);
        if c.take(4)? != MANIFEST_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = c.u8()?;
        if version != VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let body_len = c.u32()? as usize;
        let checksum = c.u64()?;
        let body = c.take(body_len)?;
        if fnv1a(body) != checksum {
            return Err(FormatError::Corrupt);
        }
        let mut b = Cursor::new(body);
        let file_len = b.u64()?;
        let block_size = b.u32()?;
        let scheme = scheme_from_tag(b.u8()?)?;
        let n_levels = b.u32()? as usize;
        if n_levels > 1_000_000 {
            return Err(FormatError::Invalid("absurd level count".into()));
        }
        let mut level_sizes = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            level_sizes.push(b.u32()?);
        }
        let file_hash = b.u64()?;
        if !b.done() {
            return Err(FormatError::Invalid("trailing manifest bytes".into()));
        }
        Ok(Manifest {
            file_len,
            block_size,
            scheme,
            level_sizes,
            file_hash,
        })
    }
}

/// Serialises one coded block as a shard.
pub fn write_shard<W: Write>(mut w: W, block: &CodedBlock<Gf256>) -> Result<(), FormatError> {
    let mut body = Vec::new();
    put_u32(&mut body, block.level as u32);
    put_u32(&mut body, block.coefficients.len() as u32);
    put_u32(&mut body, block.payload.len() as u32);
    // The on-disk shard format is dense regardless of the in-memory
    // representation, so shard bytes are representation-independent.
    body.extend(block.coefficients.to_dense_vec().iter().map(|c| c.raw()));
    body.extend(block.payload.iter().map(|c| c.raw()));

    w.write_all(SHARD_MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a(&body).to_le_bytes())?;
    w.write_all(&body)?;
    Ok(())
}

/// Deserialises one shard.
pub fn read_shard<R: Read>(mut r: R) -> Result<CodedBlock<Gf256>, FormatError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut c = Cursor::new(&raw);
    if c.take(4)? != SHARD_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let body_len = c.u32()? as usize;
    let checksum = c.u64()?;
    let body = c.take(body_len)?;
    if fnv1a(body) != checksum {
        return Err(FormatError::Corrupt);
    }
    let mut b = Cursor::new(body);
    let level = b.u32()? as usize;
    let n_coeffs = b.u32()? as usize;
    let n_payload = b.u32()? as usize;
    let coefficients =
        CoeffRow::from_dense(b.take(n_coeffs)?.iter().map(|&v| Gf256::new(v)).collect());
    let payload = b.take(n_payload)?.iter().map(|&v| Gf256::new(v)).collect();
    if !b.done() {
        return Err(FormatError::Invalid("trailing shard bytes".into()));
    }
    Ok(CodedBlock {
        level,
        coefficients,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            file_len: 123_456,
            block_size: 1024,
            scheme: Scheme::Plc,
            level_sizes: vec![10, 30, 81],
            file_hash: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = Manifest::read_from(&buf[..]).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.total_blocks(), 121);
        assert_eq!(back.profile().unwrap().num_levels(), 3);
    }

    #[test]
    fn shard_roundtrip() {
        let block = CodedBlock {
            level: 2,
            coefficients: CoeffRow::from_dense(
                (0..50).map(|i| Gf256::new((i * 5) as u8)).collect(),
            ),
            payload: (0..1024).map(|i| Gf256::new((i % 251) as u8)).collect(),
        };
        let mut buf = Vec::new();
        write_shard(&mut buf, &block).unwrap();
        let back = read_shard(&buf[..]).unwrap();
        assert_eq!(block, back);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let m = sample_manifest();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        // Flip a body byte.
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            Manifest::read_from(&buf[..]),
            Err(FormatError::Corrupt)
        ));

        let block = CodedBlock {
            level: 0,
            coefficients: CoeffRow::from_dense(vec![Gf256::new(1); 4]),
            payload: vec![Gf256::new(2); 4],
        };
        let mut sbuf = Vec::new();
        write_shard(&mut sbuf, &block).unwrap();
        sbuf[20] ^= 0x01;
        assert!(matches!(read_shard(&sbuf[..]), Err(FormatError::Corrupt)));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        assert!(matches!(
            Manifest::read_from(&b"NOPE....."[..]),
            Err(FormatError::BadMagic)
        ));
        let m = sample_manifest();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        buf[4] = 99; // version byte
        assert!(matches!(
            Manifest::read_from(&buf[..]),
            Err(FormatError::BadVersion(99))
        ));
        // Shard reader refuses a manifest.
        let mut mbuf = Vec::new();
        sample_manifest().write_to(&mut mbuf).unwrap();
        assert!(matches!(read_shard(&mbuf[..]), Err(FormatError::BadMagic)));
    }

    #[test]
    fn truncated_files_are_invalid() {
        let m = sample_manifest();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            Manifest::read_from(&buf[..]),
            Err(FormatError::Invalid(_))
        ));
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn manifest_roundtrips_arbitrary(
            file_len in 0u64..u64::MAX / 2,
            block_size in 1u32..1 << 20,
            scheme_tag in 0u8..3,
            level_sizes in prop::collection::vec(1u32..10_000, 1..20),
            file_hash in any::<u64>(),
        ) {
            let m = Manifest {
                file_len,
                block_size,
                scheme: scheme_from_tag(scheme_tag).unwrap(),
                level_sizes,
                file_hash,
            };
            let mut buf = Vec::new();
            m.write_to(&mut buf).unwrap();
            prop_assert_eq!(Manifest::read_from(&buf[..]).unwrap(), m);
        }

        #[test]
        fn shard_roundtrips_arbitrary(
            level in 0usize..100,
            coeffs in prop::collection::vec(any::<u8>(), 0..300),
            payload in prop::collection::vec(any::<u8>(), 0..300),
        ) {
            let block = CodedBlock {
                level,
                coefficients: CoeffRow::from_dense(coeffs.iter().map(|&v| Gf256::new(v)).collect()),
                payload: payload.iter().map(|&v| Gf256::new(v)).collect(),
            };
            let mut buf = Vec::new();
            write_shard(&mut buf, &block).unwrap();
            prop_assert_eq!(read_shard(&buf[..]).unwrap(), block);
        }

        #[test]
        fn single_bit_corruption_never_passes(
            payload in prop::collection::vec(any::<u8>(), 1..100),
            flip_bit in 0usize..64,
        ) {
            // Flip one bit somewhere in the body region; the checksum
            // must catch it (the header region instead yields BadMagic /
            // BadVersion / Invalid — never a silent wrong block).
            let block = CodedBlock {
                level: 1,
                coefficients: CoeffRow::from_dense(vec![Gf256::new(7); 5]),
                payload: payload.iter().map(|&v| Gf256::new(v)).collect(),
            };
            let mut buf = Vec::new();
            write_shard(&mut buf, &block).unwrap();
            let byte = 21 + (flip_bit / 8) % (buf.len() - 21);
            buf[byte] ^= 1 << (flip_bit % 8);
            match read_shard(&buf[..]) {
                Ok(decoded) => prop_assert_eq!(decoded, block), // flipped padding? impossible: fail
                Err(_) => {} // rejected, as desired
            }
        }

        #[test]
        fn reader_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = read_shard(&data[..]);
            let _ = Manifest::read_from(&data[..]);
        }
    }
}
