//! The `encode`, `decode` and `info` operations.

use std::fs;
use std::path::{Path, PathBuf};

use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
};
use prlc_gf::{Gf256, GfElem};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::format::{self, FormatError, Manifest};

/// Options for [`encode`].
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Source-block payload size in bytes.
    pub block_size: usize,
    /// Per-level shares of the file's *leading* bytes, most important
    /// first (normalised; e.g. `[10, 30, 60]`).
    pub level_shares: Vec<f64>,
    /// Shards generated per source block (`M = ceil(overhead · N)`).
    pub overhead: f64,
    /// The coding scheme.
    pub scheme: Scheme,
    /// Priority distribution across levels for shard generation; `None`
    /// uses the uniform distribution.
    pub distribution: Option<Vec<f64>>,
    /// RNG seed (shard coefficients).
    pub seed: u64,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            block_size: 1024,
            level_shares: vec![10.0, 30.0, 60.0],
            overhead: 2.0,
            scheme: Scheme::Plc,
            distribution: None,
            seed: 0x1DE_A5,
        }
    }
}

/// Errors surfaced by the CLI operations.
#[derive(Debug)]
pub enum CliError {
    /// Container-format or I/O failure.
    Format(FormatError),
    /// Invalid user input (message attached).
    Usage(String),
    /// Recovery failed (message attached).
    Recovery(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Format(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Recovery(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<FormatError> for CliError {
    fn from(e: FormatError) -> Self {
        CliError::Format(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Format(FormatError::Io(e))
    }
}

/// Splits `n` blocks into levels proportional to `shares` (each level
/// gets at least one block while blocks remain).
fn split_levels(n: usize, shares: &[f64]) -> Vec<usize> {
    let levels = shares.len().min(n).max(1);
    let total: f64 = shares[..levels].iter().sum();
    let mut sizes = vec![1usize; levels];
    let mut assigned = levels;
    // Largest-remainder on the blocks beyond the 1-per-level floor.
    let spare = n - assigned;
    let mut remainders: Vec<(usize, f64)> = Vec::new();
    for (i, &s) in shares[..levels].iter().enumerate() {
        let exact = s / total * spare as f64;
        let floor = exact.floor() as usize;
        sizes[i] += floor;
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(n - assigned) {
        sizes[i] += 1;
    }
    sizes
}

/// Encodes `input` into shard files under `out_dir` (plus
/// `manifest.prlcm`). Returns the number of shards written.
///
/// # Errors
///
/// Returns [`CliError`] for unusable options, I/O failures or an empty
/// input file.
pub fn encode(input: &Path, out_dir: &Path, opts: &EncodeOptions) -> Result<usize, CliError> {
    if opts.block_size == 0 {
        return Err(CliError::Usage("block size must be positive".into()));
    }
    if opts.overhead < 1.0 {
        return Err(CliError::Usage(format!(
            "overhead must be >= 1.0, got {}",
            opts.overhead
        )));
    }
    if opts.level_shares.is_empty()
        || opts
            .level_shares
            .iter()
            .any(|&s| !s.is_finite() || s <= 0.0)
    {
        return Err(CliError::Usage("level shares must be positive".into()));
    }
    let data = fs::read(input)?;
    if data.is_empty() {
        return Err(CliError::Usage("input file is empty".into()));
    }

    let n = data.len().div_ceil(opts.block_size);
    let sizes = split_levels(n, &opts.level_shares);
    let profile =
        PriorityProfile::new(sizes.clone()).map_err(|e| CliError::Usage(e.to_string()))?;

    // Chop (and zero-pad) the file into source payloads.
    let sources: Vec<Vec<Gf256>> = (0..n)
        .map(|i| {
            let start = i * opts.block_size;
            let end = ((i + 1) * opts.block_size).min(data.len());
            let mut block: Vec<Gf256> = data[start..end].iter().map(|&b| Gf256::new(b)).collect();
            block.resize(opts.block_size, Gf256::ZERO);
            block
        })
        .collect();

    let dist = match &opts.distribution {
        Some(w) => PriorityDistribution::from_weights(w.clone())
            .map_err(|e| CliError::Usage(e.to_string()))?,
        None => PriorityDistribution::uniform(profile.num_levels()),
    };
    if dist.num_levels() != profile.num_levels() {
        return Err(CliError::Usage(format!(
            "distribution has {} levels, file profile has {}",
            dist.num_levels(),
            profile.num_levels()
        )));
    }

    fs::create_dir_all(out_dir)?;
    let manifest = Manifest {
        file_len: data.len() as u64,
        block_size: opts.block_size as u32,
        scheme: opts.scheme,
        level_sizes: sizes.iter().map(|&s| s as u32).collect(),
        file_hash: format::fnv1a(&data),
    };
    let mut mfile = fs::File::create(out_dir.join("manifest.prlcm"))?;
    manifest.write_to(&mut mfile)?;

    let m = (opts.overhead * n as f64).ceil() as usize;
    let encoder = Encoder::new(opts.scheme, profile);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Deterministic per-level shard counts (so `info` can reason about
    // what should exist), shuffled deterministically across file names.
    let counts = dist.allocate(m);
    let mut shard_idx = 0usize;
    for (level, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            let block = encoder.encode(level, &sources, &mut rng);
            let path = out_dir.join(format!("shard-{shard_idx:05}.prlc"));
            let mut f = fs::File::create(path)?;
            format::write_shard(&mut f, &block)?;
            shard_idx += 1;
        }
    }
    Ok(shard_idx)
}

/// Options for [`decode`].
#[derive(Debug, Clone, Default)]
pub struct DecodeOptions {
    /// Write whatever decodable *prefix* exists even when full recovery
    /// is impossible.
    pub allow_partial: bool,
}

/// The result of a decode run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Whether the whole file was recovered (and its hash verified).
    pub complete: bool,
    /// Bytes written to the output file.
    pub recovered_bytes: u64,
    /// Priority levels fully recovered (strict prefix).
    pub levels_recovered: usize,
    /// Total priority levels.
    pub levels_total: usize,
    /// Shards successfully read.
    pub shards_read: usize,
    /// Shards skipped as corrupt/invalid.
    pub shards_skipped: usize,
}

/// Recovers a file from the shards in `dir`.
///
/// # Errors
///
/// Returns [`CliError::Recovery`] when nothing recoverable exists (or
/// recovery is partial and `allow_partial` is off), and
/// [`CliError::Format`] for manifest problems.
pub fn decode(dir: &Path, output: &Path, opts: &DecodeOptions) -> Result<DecodeOutcome, CliError> {
    let manifest = Manifest::read_from(fs::File::open(dir.join("manifest.prlcm"))?)?;
    let profile = manifest.profile()?;
    let n = profile.total_blocks();

    let mut shards_read = 0usize;
    let mut shards_skipped = 0usize;

    enum AnyDecoder {
        Slc(SlcDecoder<Gf256>),
        Plc(PlcDecoder<Gf256>),
    }
    let mut decoder = match manifest.scheme {
        Scheme::Slc => AnyDecoder::Slc(SlcDecoder::with_payloads(profile.clone())),
        _ => AnyDecoder::Plc(PlcDecoder::with_payloads(profile.clone())),
    };

    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "prlc"))
        .collect();
    paths.sort();
    for path in paths {
        let block = match fs::File::open(&path)
            .map_err(FormatError::Io)
            .and_then(|f| format::read_shard(f))
        {
            Ok(b) => b,
            Err(_) => {
                shards_skipped += 1;
                continue;
            }
        };
        if block.coefficients.len() != n
            || block.payload.len() != manifest.block_size as usize
            || block.level >= profile.num_levels()
        {
            shards_skipped += 1;
            continue;
        }
        shards_read += 1;
        match &mut decoder {
            AnyDecoder::Slc(d) => {
                d.insert_block(&block);
            }
            AnyDecoder::Plc(d) => {
                d.insert_block(&block);
            }
        }
    }

    let (levels_recovered, complete) = match &decoder {
        AnyDecoder::Slc(d) => (d.decoded_levels(), d.is_complete()),
        AnyDecoder::Plc(d) => (d.decoded_levels(), d.is_complete()),
    };
    let recovered = |idx: usize| -> Option<&[Gf256]> {
        match &decoder {
            AnyDecoder::Slc(d) => d.recovered(idx),
            AnyDecoder::Plc(d) => d.recovered(idx),
        }
    };

    // Assemble the recovered byte prefix: consecutive decoded blocks
    // from the front (PLC decodes prefixes; SLC level islands beyond a
    // gap are not written, matching the strict model).
    let mut bytes: Vec<u8> = Vec::new();
    for idx in 0..n {
        match recovered(idx) {
            Some(payload) => bytes.extend(payload.iter().map(|g| g.raw())),
            None => break,
        }
    }
    bytes.truncate(manifest.file_len as usize);

    if complete {
        if format::fnv1a(&bytes) != manifest.file_hash {
            return Err(CliError::Recovery(
                "recovered file fails its integrity check".into(),
            ));
        }
    } else if !opts.allow_partial {
        return Err(CliError::Recovery(format!(
            "only {levels_recovered}/{} levels recoverable from {shards_read} shards; \
             rerun with --allow-partial to write the decodable prefix",
            profile.num_levels()
        )));
    }
    if bytes.is_empty() && !complete {
        return Err(CliError::Recovery(format!(
            "nothing recoverable from {shards_read} shards"
        )));
    }
    fs::write(output, &bytes)?;

    Ok(DecodeOutcome {
        complete,
        recovered_bytes: bytes.len() as u64,
        levels_recovered,
        levels_total: profile.num_levels(),
        shards_read,
        shards_skipped,
    })
}

/// A summary of a shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoReport {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Readable shards per level.
    pub shards_per_level: Vec<usize>,
    /// Corrupt or foreign files skipped.
    pub shards_skipped: usize,
}

/// Inspects a shard directory without decoding payloads.
///
/// # Errors
///
/// Returns [`CliError::Format`] when the manifest is missing or corrupt.
pub fn info(dir: &Path) -> Result<InfoReport, CliError> {
    let manifest = Manifest::read_from(fs::File::open(dir.join("manifest.prlcm"))?)?;
    let levels = manifest.level_sizes.len();
    let mut shards_per_level = vec![0usize; levels];
    let mut shards_skipped = 0usize;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.extension().is_some_and(|e| e == "prlc") {
            continue;
        }
        match fs::File::open(&path)
            .map_err(FormatError::Io)
            .and_then(format::read_shard)
        {
            Ok(b) if b.level < levels => shards_per_level[b.level] += 1,
            _ => shards_skipped += 1,
        }
    }
    Ok(InfoReport {
        manifest,
        shards_per_level,
        shards_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let c = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("prlc-cli-test-{tag}-{}-{c}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_file(dir: &Path, len: usize) -> PathBuf {
        let path = dir.join("input.bin");
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&path, data).unwrap();
        path
    }

    #[test]
    fn split_levels_properties() {
        assert_eq!(split_levels(10, &[1.0, 1.0]), vec![5, 5]);
        // Proportional within rounding (the 1-per-level floor shifts the
        // largest-remainder split by at most a block or two).
        let sizes = split_levels(100, &[10.0, 30.0, 60.0]);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        for (got, want) in sizes.iter().zip([10.0f64, 30.0, 60.0]) {
            assert!((*got as f64 - want).abs() <= 2.0, "{sizes:?}");
        }
        // Fewer blocks than levels: levels collapse.
        assert_eq!(split_levels(2, &[1.0, 1.0, 1.0]), vec![1, 1]);
        // Every level gets at least one block.
        let sizes = split_levels(4, &[0.01, 0.01, 99.0]);
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dir = temp_dir("roundtrip");
        let input = sample_file(&dir, 10_000);
        let shards = dir.join("shards");
        let n_shards = encode(&input, &shards, &EncodeOptions::default()).unwrap();
        assert!(n_shards >= 10 * 2); // N = 10 blocks, overhead 2

        let out = dir.join("recovered.bin");
        let outcome = decode(&shards, &out, &DecodeOptions::default()).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.recovered_bytes, 10_000);
        assert_eq!(outcome.levels_recovered, outcome.levels_total);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&out).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn partial_decode_recovers_prefix_after_losses() {
        let dir = temp_dir("partial");
        let input = sample_file(&dir, 40_000); // 40 blocks
        let shards = dir.join("shards");
        encode(
            &input,
            &shards,
            &EncodeOptions {
                overhead: 1.5,
                ..EncodeOptions::default()
            },
        )
        .unwrap();

        // Destroy most of the low-priority shards: list shard files,
        // remove the back half (level parts are written in order, so the
        // tail holds bulk-level shards).
        let mut files: Vec<PathBuf> = fs::read_dir(&shards)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "prlc"))
            .collect();
        files.sort();
        for f in files.iter().skip(files.len() / 3) {
            fs::remove_file(f).unwrap();
        }

        let out = dir.join("partial.bin");
        // Without --allow-partial this fails.
        assert!(matches!(
            decode(&shards, &out, &DecodeOptions::default()),
            Err(CliError::Recovery(_))
        ));
        let outcome = decode(
            &shards,
            &out,
            &DecodeOptions {
                allow_partial: true,
            },
        )
        .unwrap();
        assert!(!outcome.complete);
        assert!(outcome.levels_recovered >= 1, "{outcome:?}");
        assert!(outcome.recovered_bytes > 0);
        // The recovered prefix matches the original bytes exactly.
        let original = fs::read(&input).unwrap();
        let partial = fs::read(&out).unwrap();
        assert_eq!(&original[..partial.len()], &partial[..]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_shards_are_skipped() {
        let dir = temp_dir("corrupt");
        let input = sample_file(&dir, 5_000);
        let shards = dir.join("shards");
        encode(&input, &shards, &EncodeOptions::default()).unwrap();
        // Corrupt one shard.
        let victim = shards.join("shard-00000.prlc");
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();

        let out = dir.join("recovered.bin");
        let outcome = decode(&shards, &out, &DecodeOptions::default()).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.shards_skipped, 1);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&out).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn info_reports_levels() {
        let dir = temp_dir("info");
        let input = sample_file(&dir, 12_345);
        let shards = dir.join("shards");
        let written = encode(&input, &shards, &EncodeOptions::default()).unwrap();
        let report = info(&shards).unwrap();
        assert_eq!(report.shards_per_level.iter().sum::<usize>(), written);
        assert_eq!(report.manifest.file_len, 12_345);
        assert_eq!(report.shards_skipped, 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn usage_errors() {
        let dir = temp_dir("usage");
        let input = sample_file(&dir, 100);
        let bad = EncodeOptions {
            overhead: 0.5,
            ..EncodeOptions::default()
        };
        assert!(matches!(
            encode(&input, &dir.join("s"), &bad),
            Err(CliError::Usage(_))
        ));
        let empty = dir.join("empty.bin");
        fs::write(&empty, b"").unwrap();
        assert!(matches!(
            encode(&empty, &dir.join("s"), &EncodeOptions::default()),
            Err(CliError::Usage(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn slc_scheme_roundtrip() {
        let dir = temp_dir("slc");
        let input = sample_file(&dir, 8_192);
        let shards = dir.join("shards");
        encode(
            &input,
            &shards,
            &EncodeOptions {
                scheme: Scheme::Slc,
                overhead: 2.5,
                ..EncodeOptions::default()
            },
        )
        .unwrap();
        let out = dir.join("r.bin");
        let outcome = decode(&shards, &out, &DecodeOptions::default()).unwrap();
        assert!(outcome.complete);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&out).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }
}
