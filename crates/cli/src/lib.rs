//! Library backing the `prlc` command-line tool.
//!
//! The CLI turns a file into priority-coded shard files and recovers the
//! file — possibly *partially*, most important bytes first — from
//! whatever subset of shards survives:
//!
//! ```text
//! prlc encode report.pdf --out shards/ --levels 10,30,60 --overhead 2.0
//! rm shards/shard-07*.prlc  …lose shards…
//! prlc decode shards/ --out recovered.pdf --allow-partial
//! prlc info shards/
//! ```
//!
//! Design: the file is split into fixed-size source blocks; the priority
//! profile assigns the *leading* portion of the file to the most
//! important levels (matching PLC's prefix-decoding order, and the
//! layered-data use cases of the paper — multi-resolution imagery,
//! layered compression — where a file prefix is independently useful).
//! Each shard file carries one coded block in the container format of
//! [`mod@format`], including its dense coefficient vector, so decoding needs
//! no side channel beyond the manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod format;

pub use commands::{decode, encode, info, DecodeOptions, DecodeOutcome, EncodeOptions};
