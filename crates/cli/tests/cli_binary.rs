//! End-to-end tests spawning the real `prlc` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn prlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_prlc"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prlc-bin-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = prlc().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("encode"));
    assert!(text.contains("decode"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = prlc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn encode_decode_roundtrip_via_binary() {
    let dir = temp_dir("roundtrip");
    let input = dir.join("data.bin");
    let data: Vec<u8> = (0..20_000).map(|i| (i * 131 % 251) as u8).collect();
    fs::write(&input, &data).unwrap();
    let shards = dir.join("shards");

    let out = prlc()
        .args([
            "encode",
            input.to_str().unwrap(),
            "--out",
            shards.to_str().unwrap(),
            "--overhead",
            "2.0",
            "--levels",
            "20,80",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "encode failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let info = prlc()
        .args(["info", shards.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("20000 bytes"), "{text}");
    assert!(text.contains("likely decodable"), "{text}");

    let recovered = dir.join("out.bin");
    let out = prlc()
        .args([
            "decode",
            shards.to_str().unwrap(),
            "--out",
            recovered.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decode failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(fs::read(&recovered).unwrap(), data);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("integrity verified"), "{text}");

    fs::remove_dir_all(dir).unwrap();
}

/// Extracts the metrics JSON line from `sim --metrics -` stdout and
/// strips the wall-clock `timers` block (spliced last by
/// `Snapshot::to_json`), leaving the deterministic part.
fn deterministic_metrics(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("{\"counters\""))
        .unwrap_or_else(|| panic!("no metrics line in output:\n{text}"))
        .to_string();
    match line.find(",\"timers\":") {
        Some(pos) => format!("{}}}", &line[..pos]),
        None => line,
    }
}

/// The pinned-seed metrics snapshot is byte-identical across worker
/// thread counts — timing aside, observability must not perturb or be
/// perturbed by parallel execution.
#[test]
fn metrics_snapshot_is_thread_count_independent() {
    let run = |threads: &str| {
        let out = prlc()
            .args([
                "sim",
                "--loss",
                "0.3",
                "--retries",
                "2",
                "--runs",
                "40",
                "--seed",
                "7",
                "--metrics",
                "-",
            ])
            .env("PRLC_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "sim --metrics failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        deterministic_metrics(&out.stdout)
    };
    let single = run("1");
    let multi = run("4");
    assert!(
        single.contains("\"net.messages.sent\""),
        "missing transport counters: {single}"
    );
    assert!(single.contains("\"events\""), "missing events: {single}");
    assert_eq!(single, multi, "metrics depend on thread count");
}

/// `--metrics FILE` writes the same snapshot to disk, and `--bench-out`
/// embeds it as a `metrics` block in the envelope.
#[test]
fn metrics_file_and_bench_envelope() {
    let dir = temp_dir("metrics");
    let metrics_path = dir.join("metrics.json");
    let bench_path = dir.join("BENCH_sim.json");
    let out = prlc()
        .args([
            "sim",
            "--loss",
            "0.2",
            "--retries",
            "1",
            "--runs",
            "10",
            "--seed",
            "3",
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--bench-out",
            bench_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = fs::read_to_string(&metrics_path).unwrap();
    assert!(metrics.starts_with("{\"counters\""), "{metrics}");
    assert!(metrics.contains("\"timers\""), "{metrics}");
    let bench = fs::read_to_string(&bench_path).unwrap();
    assert!(bench.contains("\"metrics\":{\"counters\""), "{bench}");
    assert!(bench.contains("\"run_wall_ms_total\""), "{bench}");
    assert!(bench.contains("\"results\":["), "{bench}");
    fs::remove_dir_all(dir).unwrap();
}

/// Extracts the trace JSON line from `sim --trace -` stdout. The trace
/// dump contains no wall-clock content, so no stripping is needed.
fn trace_line(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    text.lines()
        .find(|l| l.starts_with("{\"tracks\""))
        .unwrap_or_else(|| panic!("no trace line in output:\n{text}"))
        .to_string()
}

/// The pinned-seed trace dump is byte-identical across worker thread
/// counts: records are grouped per run-seed track, not per thread.
#[test]
fn trace_dump_is_thread_count_independent() {
    let run = |threads: &str| {
        let out = prlc()
            .args([
                "sim",
                "--loss",
                "0.3",
                "--retries",
                "2",
                "--runs",
                "20",
                "--seed",
                "7",
                "--trace",
                "-",
            ])
            .env("PRLC_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "sim --trace failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        trace_line(&out.stdout)
    };
    let single = run("1");
    let multi = run("4");
    assert!(
        single.contains("\"name\":\"net.collect.session\""),
        "missing session spans: {single}"
    );
    assert!(
        single.contains("\"name\":\"core.decode.level_unlock\""),
        "missing unlock provenance: {single}"
    );
    assert_eq!(single, multi, "trace depends on thread count");
}

/// `--trace - --metrics -` would interleave two JSON documents on one
/// stream; the CLI must refuse instead of corrupting both.
#[test]
fn trace_and_metrics_cannot_both_target_stdout() {
    let out = prlc()
        .args([
            "sim",
            "--runs",
            "2",
            "--seed",
            "1",
            "--trace",
            "-",
            "--metrics",
            "-",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("interleave"), "{err}");
}

/// `--trace FILE` writes the dump to disk (Chrome format on request)
/// and `--bench-out` embeds the JSON form as a `trace` envelope block.
#[test]
fn trace_file_formats_and_bench_envelope() {
    let dir = temp_dir("trace");
    let trace_path = dir.join("trace.json");
    let bench_path = dir.join("BENCH_sim.json");
    let out = prlc()
        .args([
            "sim",
            "--loss",
            "0.2",
            "--retries",
            "1",
            "--runs",
            "5",
            "--seed",
            "3",
            "--trace",
            trace_path.to_str().unwrap(),
            "--bench-out",
            bench_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with("{\"tracks\""), "{trace}");
    let bench = fs::read_to_string(&bench_path).unwrap();
    assert!(bench.contains("\"trace\":{\"tracks\""), "{bench}");
    assert!(bench.contains("\"results\":["), "{bench}");

    let chrome_path = dir.join("trace.chrome.json");
    let out = prlc()
        .args([
            "sim",
            "--runs",
            "3",
            "--seed",
            "3",
            "--trace",
            chrome_path.to_str().unwrap(),
            "--trace-format",
            "chrome",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome = fs::read_to_string(&chrome_path).unwrap();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    assert!(chrome.contains("\"ph\":\"M\""), "{chrome}");
    fs::remove_dir_all(dir).unwrap();
}

/// The `trace` subcommand prints the per-level decode waterfall.
#[test]
fn trace_subcommand_prints_waterfall() {
    let out = prlc()
        .args([
            "trace", "--scheme", "plc", "--levels", "2,3,5", "--seed", "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rows-to-unlock"), "{text}");
    assert!(text.contains("levels unlocked within"), "{text}");
}

#[test]
fn partial_decode_via_binary_after_shard_loss() {
    let dir = temp_dir("partial");
    let input = dir.join("data.bin");
    let data: Vec<u8> = (0..30_000).map(|i| (i % 256) as u8).collect();
    fs::write(&input, &data).unwrap();
    let shards = dir.join("shards");

    assert!(prlc()
        .args([
            "encode",
            input.to_str().unwrap(),
            "--out",
            shards.to_str().unwrap(),
            "--overhead",
            "1.5",
        ])
        .status()
        .unwrap()
        .success());

    // Delete the back half of the shard files (bulk levels).
    let mut files: Vec<PathBuf> = fs::read_dir(&shards)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "prlc"))
        .collect();
    files.sort();
    for f in files.iter().skip(files.len() / 3) {
        fs::remove_file(f).unwrap();
    }

    let recovered = dir.join("out.bin");
    // Without --allow-partial: non-zero exit.
    let strict = prlc()
        .args([
            "decode",
            shards.to_str().unwrap(),
            "--out",
            recovered.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!strict.status.success());

    // With --allow-partial: prefix written, exit 0.
    let partial = prlc()
        .args([
            "decode",
            shards.to_str().unwrap(),
            "--out",
            recovered.to_str().unwrap(),
            "--allow-partial",
        ])
        .output()
        .unwrap();
    assert!(
        partial.status.success(),
        "{}",
        String::from_utf8_lossy(&partial.stderr)
    );
    let text = String::from_utf8_lossy(&partial.stdout);
    assert!(text.contains("partial recovery"), "{text}");
    let prefix = fs::read(&recovered).unwrap();
    assert!(!prefix.is_empty());
    assert_eq!(&data[..prefix.len()], &prefix[..]);

    fs::remove_dir_all(dir).unwrap();
}

/// `--nodes` below the code parameters is rejected up front with an
/// actionable message, not a protocol-level panic or empty output.
#[test]
fn sim_rejects_undersized_overlay() {
    let out = prlc()
        .args(["sim", "--scheme", "plc", "--epochs", "2", "--nodes", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--nodes 5 is too small") && err.contains("at least 20 nodes"),
        "unhelpful error: {err}"
    );

    // Same guard on the lossy-sweep path.
    let out = prlc()
        .args(["sim", "--scheme", "plc", "--loss", "0.3", "--nodes", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--nodes 5 is too small"), "{err}");

    // Undersized --locations is caught too.
    let out = prlc()
        .args(["sim", "--epochs", "2", "--nodes", "100", "--locations", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--locations 3 is below"), "{err}");
}

/// The `--epochs` timeline runs end to end, honours `--nodes`, and the
/// pinned-seed output is byte-identical across worker thread counts
/// (each Monte-Carlo run is seeded by index, not by schedule).
#[test]
fn sim_timeline_honours_nodes_and_is_thread_count_independent() {
    let run = |threads: &str| {
        let out = prlc()
            .args([
                "sim",
                "--scheme",
                "plc",
                "--epochs",
                "3",
                "--churn",
                "0.2",
                "--repair",
                "2",
                "--nodes",
                "500",
                "--runs",
                "6",
                "--seed",
                "11",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let one = run("1");
    assert!(one.contains("persistence timeline: 500 nodes"), "{one}");
    assert!(one.contains("epoch"), "{one}");
    // 3 epochs + baseline: rows 0..=3 present.
    assert!(one.contains("\n3 "), "{one}");
    let four = run("4");
    // Drop the throughput-probe header line (wall-clock) before diffing.
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("persistence timeline"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(tail(&one), tail(&four));
}

/// A fault-injected timeline on a large overlay exercises the event
/// runtime's lazy node state: metrics and trace dumps stay available
/// and the run completes quickly even at N=20000 in a debug build.
#[test]
fn sim_timeline_large_overlay_with_faults_and_bench_envelope() {
    let dir = temp_dir("timeline-bench");
    let bench = dir.join("BENCH_timeline.json");
    let out = prlc()
        .args([
            "sim",
            "--scheme",
            "plc",
            "--epochs",
            "2",
            "--churn",
            "0.1",
            "--repair",
            "2",
            "--loss",
            "0.2",
            "--retries",
            "1",
            "--nodes",
            "20000",
            "--runs",
            "2",
            "--seed",
            "3",
            "--threads",
            "1",
            "--metrics",
            "-",
            "--trace",
            dir.join("trace.json").to_str().unwrap(),
            "--bench-out",
            bench.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = deterministic_metrics(&out.stdout);
    assert!(metrics.contains("net.event.nodes_touched"), "{metrics}");
    let trace = fs::read_to_string(dir.join("trace.json")).unwrap();
    assert!(trace.starts_with("{\"tracks\""), "{trace}");
    assert!(trace.contains("sim.timeline.epoch"), "{trace}");
    let envelope = fs::read_to_string(&bench).unwrap();
    assert!(envelope.contains("\"results\":["), "{envelope}");
    assert!(envelope.contains("\"epoch\":2"), "{envelope}");
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn bench_write_check_and_negative_roundtrip() {
    let dir = temp_dir("bench");
    // Write a fresh kernel baseline (the only probe cheap enough for a
    // debug-profile binary test).
    let out = prlc()
        .args(["bench", "--probe", "kernel", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench write failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = fs::read_to_string(dir.join("BENCH_kernel.json")).unwrap();
    assert!(
        baseline.starts_with("{\"bench_schema_version\":1,"),
        "{baseline}"
    );
    assert!(baseline.contains("\"probe\":\"kernel\""), "{baseline}");
    assert!(
        baseline.contains("\"backend\":\"dispatched\""),
        "{baseline}"
    );

    // Self-check against the freshly written baseline passes and emits
    // the delta table plus a findings report with zero findings.
    let report = dir.join("delta.json");
    let out = prlc()
        .args([
            "bench",
            "--check",
            "--probe",
            "kernel",
            "--baseline-dir",
            dir.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench check failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bench check clean"), "{text}");
    assert!(text.contains("mb_s"), "{text}");
    let findings = fs::read_to_string(&report).unwrap();
    assert!(findings.contains("\"findings\":[]"), "{findings}");

    // A perturbed deterministic field (the probe name itself) fails with
    // a machine-readable finding and a nonzero exit.
    let perturbed = baseline.replace("\"slice_len\":65536", "\"slice_len\":1");
    assert_ne!(perturbed, baseline);
    fs::write(dir.join("BENCH_kernel.json"), perturbed).unwrap();
    let out = prlc()
        .args([
            "bench",
            "--check",
            "--probe",
            "kernel",
            "--baseline-dir",
            dir.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deterministic-drift"), "{err}");
    let findings = fs::read_to_string(&report).unwrap();
    assert!(
        findings.contains("\"kind\":\"deterministic-drift\""),
        "{findings}"
    );
    assert!(findings.contains("config.slice_len"), "{findings}");

    // Unknown probe names are rejected up front.
    let out = prlc().args(["bench", "--probe", "nope"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown probe"));
    fs::remove_dir_all(dir).unwrap();
}
