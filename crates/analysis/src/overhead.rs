//! Inverse queries on the decoding curves, and the set-model utility
//! analysis for SLC.
//!
//! The decoding curves answer "how much decodes from `M` blocks?"; the
//! planners in this module answer the inverse question an application
//! actually asks — *"how many surviving blocks do I need before my data
//! is safe?"* — plus the expected utility of SLC under the non-strict
//! (set) priority model, where independently decoded low-priority levels
//! count even when a higher level is missing.

use prlc_core::{PriorityDistribution, PriorityProfile, Scheme, UtilityFunction};

use crate::curves;
use crate::model::AnalysisOptions;
use crate::numeric::LnFactorial;

/// Safety cap on the search range, as a multiple of `N`.
const MAX_OVERHEAD: usize = 64;

/// The minimum number of randomly accumulated coded blocks `M` such that
/// `E(X_M) ≥ k` — the expected-waiting budget for `k` levels.
///
/// Returns `None` if even `64·N` blocks do not reach the target (e.g. a
/// level with zero priority mass can never decode under SLC).
///
/// Targeting `k == n` exactly is numerically ill-conditioned —
/// `E(X) = n` requires every survival probability to equal 1 to within
/// floating point, so the answer sits deep in the distribution tail;
/// prefer [`blocks_for_complete`] with an explicit confidence for
/// full-recovery budgets.
///
/// # Panics
///
/// Panics if `k` exceeds the level count or the distribution mismatches
/// the profile.
pub fn blocks_for_expected_levels(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    k: f64,
    opts: &AnalysisOptions,
) -> Option<usize> {
    assert!(
        k <= profile.num_levels() as f64,
        "target {k} exceeds {} levels",
        profile.num_levels()
    );
    let n = profile.total_blocks();
    let e = |m: usize| curves::expected_levels(scheme, profile, dist, m, opts);
    // Exponential search for an upper bound, then binary search (E(X_M)
    // is non-decreasing in M).
    let mut hi = n.max(1);
    while e(hi) < k {
        hi *= 2;
        if hi > MAX_OVERHEAD * n {
            return None;
        }
    }
    let mut lo = 0usize;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if e(mid) >= k {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

/// The minimum `M` such that all levels decode with probability at least
/// `confidence` — the budget behind the paper's eq. 10 constraint.
///
/// Returns `None` if unreachable within `64·N` blocks.
///
/// # Panics
///
/// Panics if `confidence` is not within `(0, 1)`.
pub fn blocks_for_complete(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    confidence: f64,
    opts: &AnalysisOptions,
) -> Option<usize> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let n = profile.total_blocks();
    let p = |m: usize| curves::prob_complete(scheme, profile, dist, m, opts);
    let mut hi = n.max(1);
    while p(hi) < confidence {
        hi *= 2;
        if hi > MAX_OVERHEAD * n {
            return None;
        }
    }
    let mut lo = 0usize;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if p(mid) >= confidence {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

/// The probability that SLC decodes `level` (alone, regardless of other
/// levels) from `m` randomly accumulated blocks.
///
/// Exact: the marginal count of one multinomial cell is binomial, and
/// SLC levels decode independently given their counts.
pub fn slc_level_marginal(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    level: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let a = profile.size(level);
    let p = dist.p(level);
    if p == 0.0 {
        return if a == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return opts.decode_weight(m, a);
    }
    let lnfact = LnFactorial::up_to(m);
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut acc = 0.0;
    for d in 0..=m {
        let w = opts.decode_weight(d, a);
        if w == 0.0 {
            continue;
        }
        let ln_pmf =
            lnfact.get(m) - lnfact.get(d) - lnfact.get(m - d) + d as f64 * lp + (m - d) as f64 * lq;
        acc += w * ln_pmf.exp();
    }
    acc.min(1.0)
}

/// Expected utility of SLC under the **set** model: every independently
/// recovered level contributes its weight, prefix or not.
///
/// `E[U] = Σ_i u_i · Pr(level i decodes)` by linearity — exact because
/// the per-level marginals are exact.
///
/// # Panics
///
/// Panics if the utility's level count mismatches the profile's.
pub fn slc_expected_set_utility(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    utility: &UtilityFunction,
    opts: &AnalysisOptions,
) -> f64 {
    assert_eq!(
        utility.num_levels(),
        profile.num_levels(),
        "utility level count mismatch"
    );
    (0..profile.num_levels())
        .map(|l| utility.weight(l) * slc_level_marginal(profile, dist, m, l, opts))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PriorityProfile, PriorityDistribution, AnalysisOptions) {
        (
            PriorityProfile::new(vec![4, 6, 10]).unwrap(),
            PriorityDistribution::uniform(3),
            AnalysisOptions::sharp(),
        )
    }

    #[test]
    fn inverse_query_is_consistent_with_forward_curve() {
        let (p, d, o) = setup();
        for scheme in [Scheme::Slc, Scheme::Plc] {
            for k in [0.5, 1.0, 2.0, 2.9] {
                let m = blocks_for_expected_levels(scheme, &p, &d, k, &o).expect("reachable");
                let at = curves::expected_levels(scheme, &p, &d, m, &o);
                assert!(at >= k, "{scheme} k={k}: E(X_{m}) = {at}");
                if m > 0 {
                    let before = curves::expected_levels(scheme, &p, &d, m - 1, &o);
                    assert!(before < k, "{scheme} k={k}: not minimal ({before})");
                }
            }
        }
    }

    #[test]
    fn rlc_needs_exactly_n_for_any_expectation() {
        let (p, d, o) = setup();
        let m = blocks_for_expected_levels(Scheme::Rlc, &p, &d, 1.0, &o).unwrap();
        assert_eq!(m, p.total_blocks());
    }

    #[test]
    fn unreachable_targets_return_none() {
        let p = PriorityProfile::new(vec![2, 2]).unwrap();
        // Level 2 never receives blocks: SLC can never decode it.
        let d = PriorityDistribution::from_weights(vec![1.0, 0.0]).unwrap();
        let o = AnalysisOptions::sharp();
        assert_eq!(
            blocks_for_expected_levels(Scheme::Slc, &p, &d, 2.0, &o),
            None
        );
        // PLC decodes everything through full-support level-2 blocks...
        // but there are none; level-1 blocks only cover the prefix.
        assert_eq!(
            blocks_for_expected_levels(Scheme::Plc, &p, &d, 2.0, &o),
            None
        );
    }

    #[test]
    fn completion_budget_brackets_the_confidence() {
        let (p, d, o) = setup();
        let m = blocks_for_complete(Scheme::Plc, &p, &d, 0.95, &o).unwrap();
        assert!(curves::prob_complete(Scheme::Plc, &p, &d, m, &o) >= 0.95);
        assert!(curves::prob_complete(Scheme::Plc, &p, &d, m - 1, &o) < 0.95);
        // PLC should need no more than SLC.
        let m_slc = blocks_for_complete(Scheme::Slc, &p, &d, 0.95, &o).unwrap();
        assert!(m <= m_slc);
    }

    #[test]
    fn slc_marginal_matches_survival_for_level_one() {
        // For level 0, "decodes alone" == "prefix of length 1 decodes".
        let (p, d, o) = setup();
        for m in [4usize, 8, 16, 32] {
            let marginal = slc_level_marginal(&p, &d, m, 0, &o);
            let survival = crate::slc::survival(&p, &d, m, 1, &o);
            assert!(
                (marginal - survival).abs() < 1e-9,
                "m={m}: {marginal} vs {survival}"
            );
        }
    }

    #[test]
    fn slc_marginals_are_monotone_in_m() {
        let (p, d, o) = setup();
        for level in 0..3 {
            let mut last = 0.0;
            for m in (0..60).step_by(6) {
                let v = slc_level_marginal(&p, &d, m, level, &o);
                assert!(v + 1e-12 >= last, "level {level} m={m}");
                assert!((0.0..=1.0 + 1e-12).contains(&v));
                last = v;
            }
        }
    }

    #[test]
    fn set_utility_exceeds_strict_utility_for_slc() {
        // The set model can only credit more levels than the strict
        // prefix model: E[U_set] >= E[U_strict].
        let (p, d, o) = setup();
        let u = UtilityFunction::uniform(3);
        for m in [10usize, 20, 30, 40] {
            let set = slc_expected_set_utility(&p, &d, m, &u, &o);
            // Strict expected utility with uniform weights is E(X)/n.
            let strict = curves::expected_levels(Scheme::Slc, &p, &d, m, &o) / 3.0;
            assert!(set + 1e-9 >= strict, "m={m}: set {set} < strict {strict}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let p = PriorityProfile::new(vec![3, 3]).unwrap();
        let o = AnalysisOptions::sharp();
        let all_first = PriorityDistribution::from_weights(vec![1.0, 0.0]).unwrap();
        // p = 1 for level 0: all m blocks land there.
        assert_eq!(slc_level_marginal(&p, &all_first, 2, 0, &o), 0.0);
        assert_eq!(slc_level_marginal(&p, &all_first, 3, 0, &o), 1.0);
        // p = 0 for level 1: never decodes.
        assert_eq!(slc_level_marginal(&p, &all_first, 100, 1, &o), 0.0);
    }
}
