//! Priority-distribution design: the feasibility problem of Sec. 3.4.
//!
//! Given decoding constraints `(M_i, k_i)` — "from `M_i` randomly
//! accumulated coded blocks, the expected number of decoded levels must
//! be at least `k_i`" (eq. 9) — plus the full-recovery constraint
//! `Pr(X_{αN} = n) > 1 − ε` (eq. 10) and the simplex constraints
//! (eq. 11), find *a* priority distribution satisfying all of them.
//!
//! The paper solves this with MATLAB's feasibility search initialised at
//! the uniform distribution and keeps the first feasible point. We
//! replace MATLAB with a dependency-free multi-start adaptive random
//! search over the softmax parameterisation of the simplex, driven by a
//! quadratic penalty that is zero exactly on the feasible region. Like
//! the paper's, our solver stops at the *first* feasible point — the
//! feasible region is generally a continuum, so solutions need not match
//! Table 1 digit-for-digit; what must match (and is verified in the
//! benchmark harness) is that they satisfy the same constraints and
//! produce Fig. 7-shaped decoding curves.

use prlc_core::{DecodingConstraint, PriorityDistribution, PriorityProfile, Scheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::curves;
use crate::model::AnalysisOptions;

/// The full-recovery constraint of eq. 10: with `α·N` coded blocks, all
/// `n` levels must decode with probability at least `1 − ε`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FullRecoveryConstraint {
    /// Overhead factor `α > 1`.
    pub alpha: f64,
    /// Failure tolerance `ε`.
    pub epsilon: f64,
}

impl FullRecoveryConstraint {
    /// The paper's Sec. 5.3 setting: `α = 2`, `ε = 0.01`.
    pub fn paper_default() -> Self {
        FullRecoveryConstraint {
            alpha: 2.0,
            epsilon: 0.01,
        }
    }
}

/// A feasibility problem instance.
#[derive(Debug, Clone)]
pub struct FeasibilityProblem {
    /// The coding scheme the distribution is designed for.
    pub scheme: Scheme,
    /// The priority profile (level sizes).
    pub profile: PriorityProfile,
    /// The decoding constraints of eq. 9.
    pub constraints: Vec<DecodingConstraint>,
    /// The optional full-recovery constraint of eq. 10.
    pub full_recovery: Option<FullRecoveryConstraint>,
    /// Decodability model used when evaluating constraints.
    pub options: AnalysisOptions,
    /// Numerical slack: a constraint counts as satisfied when achieved
    /// `>= required − tolerance`. Zero demands exact feasibility.
    ///
    /// The paper's published Table-1 distributions evaluate as
    /// *marginally* infeasible (by ~10⁻³) under this crate's exact
    /// analysis, because their MATLAB search used the technical report's
    /// approximate analysis — the feasible-region boundary shifts by a
    /// hair. A small tolerance (e.g. `5e-3`) reproduces the paper's
    /// accept/reject behaviour.
    pub tolerance: f64,
}

/// Evaluation of one constraint at a candidate distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintCheck {
    /// Human-readable constraint description.
    pub description: String,
    /// The achieved value (an `E(X)` or a probability).
    pub achieved: f64,
    /// The required value.
    pub required: f64,
    /// Whether the constraint holds.
    pub satisfied: bool,
}

impl FeasibilityProblem {
    /// Per-constraint evaluation at `dist`.
    pub fn check(&self, dist: &PriorityDistribution) -> Vec<ConstraintCheck> {
        let mut out = Vec::with_capacity(self.constraints.len() + 1);
        for c in &self.constraints {
            let achieved =
                curves::expected_levels(self.scheme, &self.profile, dist, c.blocks, &self.options);
            out.push(ConstraintCheck {
                description: format!("E(X_{{{}}}) >= {}", c.blocks, c.min_levels),
                achieved,
                required: c.min_levels,
                satisfied: achieved >= c.min_levels - self.tolerance,
            });
        }
        if let Some(fr) = self.full_recovery {
            let m = (fr.alpha * self.profile.total_blocks() as f64).round() as usize;
            let achieved =
                curves::prob_complete(self.scheme, &self.profile, dist, m, &self.options);
            let required = 1.0 - fr.epsilon;
            out.push(ConstraintCheck {
                description: format!("Pr(X_{{{m}}} = n) > {required}"),
                achieved,
                required,
                satisfied: achieved > required - self.tolerance,
            });
        }
        out
    }

    /// Quadratic penalty: zero exactly when every constraint holds
    /// (within the problem's tolerance).
    pub fn penalty(&self, dist: &PriorityDistribution) -> f64 {
        self.check(dist)
            .iter()
            .map(|c| (c.required - self.tolerance - c.achieved).max(0.0).powi(2))
            .sum()
    }

    /// Whether `dist` satisfies every constraint.
    pub fn is_feasible(&self, dist: &PriorityDistribution) -> bool {
        self.check(dist).iter().all(|c| c.satisfied)
    }
}

/// Knobs for the feasibility search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Total penalty-evaluation budget across all restarts.
    pub max_evaluations: usize,
    /// Number of random restarts (the first start is always the uniform
    /// distribution, as in the paper).
    pub restarts: usize,
    /// RNG seed for the search.
    pub seed: u64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_evaluations: 2000,
            restarts: 8,
            seed: 0x5eed,
        }
    }
}

/// The result of a feasibility search.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The best distribution found (feasible if `feasible` is true).
    pub distribution: PriorityDistribution,
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Residual penalty at `distribution` (0 when feasible).
    pub penalty: f64,
    /// Number of penalty evaluations spent.
    pub evaluations: usize,
}

/// Searches for a priority distribution satisfying `problem`.
///
/// Returns the first feasible point found, or the lowest-penalty point
/// when the budget runs out (`feasible == false`). Deterministic for a
/// fixed seed.
pub fn solve_feasibility(problem: &FeasibilityProblem, opts: &SolverOptions) -> Solution {
    let n = problem.profile.num_levels();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut best_theta = vec![0.0f64; n];
    let mut best_penalty = f64::INFINITY;
    let mut evaluations = 0usize;

    let budget_per_restart = (opts.max_evaluations / opts.restarts.max(1)).max(1);

    'restarts: for restart in 0..opts.restarts.max(1) {
        // First start: uniform (theta = 0), like the paper's MATLAB run.
        let mut theta: Vec<f64> = if restart == 0 {
            vec![0.0; n]
        } else {
            (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
        };
        let mut current = problem.penalty(&softmax(&theta));
        evaluations += 1;
        if current < best_penalty {
            best_penalty = current;
            best_theta = theta.clone();
        }
        if current == 0.0 {
            break 'restarts;
        }

        let mut step = 0.5f64;
        for _ in 0..budget_per_restart {
            if evaluations >= opts.max_evaluations {
                break 'restarts;
            }
            // Perturb one or two random coordinates.
            let mut candidate = theta.clone();
            let coords = if rng.gen_bool(0.5) { 1 } else { 2 };
            for _ in 0..coords {
                let i = rng.gen_range(0..n);
                candidate[i] += rng.gen_range(-step..step);
            }
            let p = problem.penalty(&softmax(&candidate));
            evaluations += 1;
            if p < current {
                current = p;
                theta = candidate;
                step = (step * 1.4).min(3.0);
                if current < best_penalty {
                    best_penalty = current;
                    best_theta = theta.clone();
                }
                if current == 0.0 {
                    break 'restarts;
                }
            } else {
                step = (step * 0.85).max(1e-3);
            }
        }
    }

    let distribution = softmax(&best_theta);
    let feasible = problem.is_feasible(&distribution);
    Solution {
        distribution,
        feasible,
        penalty: best_penalty,
        evaluations,
    }
}

/// Softmax parameterisation of the simplex (eq. 11 holds by
/// construction).
fn softmax(theta: &[f64]) -> PriorityDistribution {
    let max = theta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = theta.iter().map(|&t| (t - max).exp()).collect();
    PriorityDistribution::from_weights(weights).expect("softmax weights are positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast problem shaped like the paper's Sec. 5.3 cases.
    fn small_problem(constraints: Vec<DecodingConstraint>) -> FeasibilityProblem {
        FeasibilityProblem {
            scheme: Scheme::Plc,
            profile: PriorityProfile::new(vec![5, 10, 35]).unwrap(),
            constraints,
            full_recovery: Some(FullRecoveryConstraint {
                alpha: 2.0,
                epsilon: 0.01,
            }),
            options: AnalysisOptions::sharp(),
            tolerance: 0.0,
        }
    }

    #[test]
    fn weak_problem_without_full_recovery_is_feasible_at_uniform() {
        // Without eq. 10, E(X_{100}) >= 1 with N=50 holds at uniform.
        let mut p = small_problem(vec![DecodingConstraint::new(100, 1.0)]);
        p.full_recovery = None;
        assert!(p.is_feasible(&PriorityDistribution::uniform(3)));
        let sol = solve_feasibility(&p, &SolverOptions::default());
        assert!(sol.feasible, "penalty={}", sol.penalty);
        assert_eq!(sol.penalty, 0.0);
        // The first evaluation (uniform start) already satisfies it.
        assert_eq!(sol.evaluations, 1);
    }

    #[test]
    fn full_recovery_constraint_is_not_free() {
        // With α=2 the uniform distribution fails eq. 10 on this skewed
        // profile (level 3 holds 70% of the blocks but would receive only
        // a third of the coded blocks); the solver must rebalance.
        let p = small_problem(vec![DecodingConstraint::new(100, 1.0)]);
        let uniform = PriorityDistribution::uniform(3);
        assert!(!p.is_feasible(&uniform), "uniform unexpectedly feasible");
        let sol = solve_feasibility(
            &p,
            &SolverOptions {
                max_evaluations: 4000,
                restarts: 8,
                seed: 7,
            },
        );
        assert!(sol.feasible, "penalty={}", sol.penalty);
        // Mass must shift toward the big low-priority level.
        assert!(
            sol.distribution.p(2) > 0.34,
            "p = {:?}",
            sol.distribution.as_slice()
        );
    }

    #[test]
    fn tight_constraint_forces_mass_to_level_one() {
        // Decode level 1 (5 blocks) from only 13 random blocks in
        // expectation: needs a concentrated distribution.
        let mut p = small_problem(vec![DecodingConstraint::new(13, 1.0)]);
        p.full_recovery = None;
        let uniform = PriorityDistribution::uniform(3);
        assert!(!p.is_feasible(&uniform), "uniform should not satisfy");
        let sol = solve_feasibility(&p, &SolverOptions::default());
        assert!(sol.feasible, "penalty={}", sol.penalty);
        // The solution must put substantially more than 1/3 mass on
        // level 1.
        assert!(
            sol.distribution.p(0) > 0.34,
            "p = {:?}",
            sol.distribution.as_slice()
        );
    }

    #[test]
    fn infeasible_problem_reports_best_effort() {
        // Impossible: decode all 3 levels (50 blocks) from 10 blocks.
        let p = small_problem(vec![DecodingConstraint::new(10, 3.0)]);
        let sol = solve_feasibility(
            &p,
            &SolverOptions {
                max_evaluations: 300,
                restarts: 3,
                seed: 1,
            },
        );
        assert!(!sol.feasible);
        assert!(sol.penalty > 0.0);
        assert!(sol.evaluations <= 300);
    }

    #[test]
    fn check_reports_every_constraint() {
        let p = small_problem(vec![
            DecodingConstraint::new(13, 1.0),
            DecodingConstraint::new(45, 2.0),
        ]);
        let checks = p.check(&PriorityDistribution::uniform(3));
        assert_eq!(checks.len(), 3); // 2 decoding + 1 full recovery
        assert!(checks[0].description.contains("13"));
        assert!(checks[2].description.contains("Pr"));
        for c in &checks {
            assert_eq!(
                c.satisfied,
                c.achieved >= c.required || {
                    // full-recovery uses strict >, allow either here
                    c.achieved > c.required
                }
            );
        }
    }

    #[test]
    fn penalty_zero_iff_feasible() {
        let p = small_problem(vec![DecodingConstraint::new(30, 1.0)]);
        let d = PriorityDistribution::uniform(3);
        assert_eq!(p.penalty(&d) == 0.0, p.is_feasible(&d));
    }

    #[test]
    fn solver_is_deterministic() {
        let p = small_problem(vec![DecodingConstraint::new(13, 1.0)]);
        let o = SolverOptions::default();
        let a = solve_feasibility(&p, &o);
        let b = solve_feasibility(&p, &o);
        assert_eq!(a.distribution.as_slice(), b.distribution.as_slice());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn softmax_stays_on_simplex() {
        let d = softmax(&[100.0, -100.0, 0.0]);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(d.p(0) > 0.999);
        assert!(d.p(1) >= 0.0);
    }
}
