//! Scheme-dispatching decoding curves — the analysis behind Figs. 4, 5
//! and 7 of the paper.

use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};

use crate::model::AnalysisOptions;
use crate::{plc, slc};

/// `Pr(X ≥ k)` for any scheme.
///
/// For RLC the decoded-level count jumps from 0 to `n` at full rank, so
/// for any `k ≥ 1` the survival probability is the probability that all
/// `N` source blocks decode from `m` blocks (sharp: `m ≥ N`).
///
/// # Panics
///
/// Panics if `k > n` or the distribution and profile disagree on the
/// level count.
pub fn survival(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    match scheme {
        Scheme::Slc => slc::survival(profile, dist, m, k, opts),
        Scheme::Plc => plc::survival(profile, dist, m, k, opts),
        Scheme::Rlc => {
            assert!(k <= profile.num_levels(), "k out of range");
            if k == 0 {
                1.0
            } else {
                opts.decode_weight(m, profile.total_blocks())
            }
        }
    }
}

/// `Pr(X = k)` for any scheme.
pub fn decode_exactly(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    let s_k = survival(scheme, profile, dist, m, k, opts);
    if k == n {
        return s_k;
    }
    (s_k - survival(scheme, profile, dist, m, k + 1, opts)).max(0.0)
}

/// `E(X)`: expected number of decoded levels from `m` coded blocks.
pub fn expected_levels(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    opts: &AnalysisOptions,
) -> f64 {
    match scheme {
        Scheme::Slc => slc::expected_levels(profile, dist, m, opts),
        Scheme::Plc => plc::expected_levels(profile, dist, m, opts),
        Scheme::Rlc => profile.num_levels() as f64 * opts.decode_weight(m, profile.total_blocks()),
    }
}

/// Probability that *all* source blocks decode from `m` coded blocks —
/// the quantity constrained by eq. 10, `Pr(X_{αN} = n) > 1 − ε`.
pub fn prob_complete(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    opts: &AnalysisOptions,
) -> f64 {
    survival(scheme, profile, dist, m, profile.num_levels(), opts)
}

/// The analytical decoding curve: `E(X)` evaluated at each entry of
/// `ms` — the solid lines of Figs. 4/5/7.
pub fn decoding_curve(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    ms: &[usize],
    opts: &AnalysisOptions,
) -> Vec<f64> {
    ms.iter()
        .map(|&m| expected_levels(scheme, profile, dist, m, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rlc_is_all_or_nothing() {
        let p = PriorityProfile::uniform(4, 5).unwrap();
        let d = PriorityDistribution::uniform(4);
        let o = AnalysisOptions::sharp();
        assert_eq!(expected_levels(Scheme::Rlc, &p, &d, 19, &o), 0.0);
        assert_eq!(expected_levels(Scheme::Rlc, &p, &d, 20, &o), 4.0);
        assert_eq!(survival(Scheme::Rlc, &p, &d, 19, 1, &o), 0.0);
        assert_eq!(survival(Scheme::Rlc, &p, &d, 25, 4, &o), 1.0);
        assert_eq!(survival(Scheme::Rlc, &p, &d, 0, 0, &o), 1.0);
    }

    #[test]
    fn priority_schemes_beat_rlc_before_n() {
        // The headline claim: below N blocks RLC decodes nothing while
        // SLC/PLC already deliver levels.
        let p = PriorityProfile::uniform(5, 10).unwrap();
        let d = PriorityDistribution::uniform(5);
        let o = AnalysisOptions::sharp();
        for m in [30usize, 40, 49] {
            assert_eq!(expected_levels(Scheme::Rlc, &p, &d, m, &o), 0.0);
            assert!(expected_levels(Scheme::Slc, &p, &d, m, &o) > 0.0);
            assert!(expected_levels(Scheme::Plc, &p, &d, m, &o) > 0.0);
        }
        // At 40 blocks (0.8 N) PLC already delivers a substantial
        // fraction of the levels in expectation.
        assert!(expected_levels(Scheme::Plc, &p, &d, 45, &o) > 1.0);
    }

    #[test]
    fn decoding_curve_shape() {
        let p = PriorityProfile::uniform(3, 5).unwrap();
        let d = PriorityDistribution::uniform(3);
        let o = AnalysisOptions::sharp();
        let ms: Vec<usize> = (0..=10).map(|i| i * 6).collect();
        let curve = decoding_curve(Scheme::Plc, &p, &d, &ms, &o);
        assert_eq!(curve.len(), ms.len());
        // Non-decreasing, bounded by n, eventually ~n.
        for w in curve.windows(2) {
            assert!(w[1] + 1e-9 >= w[0]);
        }
        assert!(curve.iter().all(|&e| (0.0..=3.0 + 1e-9).contains(&e)));
        assert!(curve.last().unwrap() > &2.9);
    }

    #[test]
    fn decode_exactly_consistency_across_schemes() {
        let p = PriorityProfile::uniform(3, 4).unwrap();
        let d = PriorityDistribution::uniform(3);
        let o = AnalysisOptions::sharp();
        for scheme in Scheme::ALL {
            for m in [0usize, 6, 12, 24] {
                let total: f64 = (0..=3)
                    .map(|k| decode_exactly(scheme, &p, &d, m, k, &o))
                    .sum();
                assert!((total - 1.0).abs() < 1e-9, "{scheme} m={m} total={total}");
            }
        }
    }

    #[test]
    fn prob_complete_matches_full_survival() {
        let p = PriorityProfile::uniform(2, 3).unwrap();
        let d = PriorityDistribution::uniform(2);
        let o = AnalysisOptions::sharp();
        for scheme in Scheme::ALL {
            for m in [6usize, 10, 14] {
                assert_eq!(
                    prob_complete(scheme, &p, &d, m, &o),
                    survival(scheme, &p, &d, m, 2, &o)
                );
            }
        }
        // With 2N blocks completion is near-certain for all schemes.
        for scheme in Scheme::ALL {
            assert!(prob_complete(scheme, &p, &d, 40, &o) > 0.99, "{scheme}");
        }
    }
}
