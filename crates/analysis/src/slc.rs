//! Decoding-performance analysis for SLC (Sec. 3.3.1 of the paper).
//!
//! The per-level coded-block counts `D = (D_1 … D_n)` of `M` randomly
//! accumulated blocks follow a multinomial over the priority distribution
//! (eq. 5). Each level is an independent RLC, so the first `k` levels
//! decode iff `D_i ≥ a_i` for every `i ≤ k` (events of eq. 2).
//!
//! Rather than enumerating count vectors (exponential) or computing each
//! `Pr(X = k)` separately, we evaluate the *survival* probabilities
//! `Pr(X ≥ k) = Pr(A_1 ∩ … ∩ A_k)` through the Poissonization identity
//!
//! `Pr(D ∈ A) = [z^M] ∏_i g_i(z) / Pois(M; M)`,
//!
//! where `g_i` is the `Poisson(M·p_i)` pmf restricted (or weighted) by
//! level `i`'s event. This is the same quantity the paper computes with
//! the Kontkanen–Myllymäki DP+FFT (its reference \[13\]), with the same
//! `O(M log M)` convolution cost per level. `Pr(X = k)` and `E(X)` follow
//! as `Pr(X ≥ k) − Pr(X ≥ k+1)` and `Σ_k Pr(X ≥ k)`.

use prlc_core::{PriorityDistribution, PriorityProfile};

use crate::conv::{convolution_coefficient, convolve};
use crate::model::AnalysisOptions;
use crate::numeric::{poisson_pmf, poisson_point};

/// `Pr(X ≥ k)`: probability that `m` randomly accumulated SLC coded
/// blocks decode at least the first `k` priority levels.
///
/// `k == 0` trivially returns 1.
///
/// # Panics
///
/// Panics if `k > n` or the distribution's level count differs from the
/// profile's.
pub fn survival(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    assert!(k <= n, "k={k} exceeds {n} levels");
    assert_eq!(
        dist.num_levels(),
        n,
        "distribution level count does not match profile"
    );
    if k == 0 {
        return 1.0;
    }
    // Decoding k levels needs at least b_k blocks in levels 1..k alone.
    if profile.bound(k) > m {
        return 0.0;
    }

    let len = m + 1;
    // Running product of the constrained per-level generating
    // polynomials.
    let mut acc = vec![0.0; len];
    acc[0] = 1.0;
    for level in 0..k {
        let lambda = m as f64 * dist.p(level);
        let a = profile.size(level);
        let mut g = poisson_pmf(lambda, len);
        for (d, gd) in g.iter_mut().enumerate() {
            *gd *= opts.decode_weight(d, a);
        }
        acc = convolve(&acc, &g, len);
        if acc.iter().all(|&x| x == 0.0) {
            return 0.0;
        }
    }

    // Levels k+1..n are unconstrained; their Poisson counts lump into a
    // single Poisson with the remaining mass.
    let rest = poisson_pmf(m as f64 * dist.mass(k..n), len);
    let numerator = convolution_coefficient(&acc, &rest, m);
    numerator / poisson_point(m as f64, m)
}

/// `Pr(X = k)`: probability of decoding *exactly* the first `k` levels
/// (eq. 6 of the paper).
pub fn decode_exactly(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    let s_k = survival(profile, dist, m, k, opts);
    if k == n {
        return s_k;
    }
    (s_k - survival(profile, dist, m, k + 1, opts)).max(0.0)
}

/// `E(X)`: expected number of decoded levels from `m` randomly
/// accumulated coded blocks (eq. 1), via `E(X) = Σ_{k≥1} Pr(X ≥ k)`.
///
/// Terms are monotone decreasing in `k`; summation stops early once they
/// fall below `1e-12`.
pub fn expected_levels(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let mut e = 0.0;
    for k in 1..=profile.num_levels() {
        let s = survival(profile, dist, m, k, opts);
        e += s;
        if s < 1e-12 {
            break;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, per: usize) -> (PriorityProfile, PriorityDistribution) {
        (
            PriorityProfile::uniform(n, per).unwrap(),
            PriorityDistribution::uniform(n),
        )
    }

    #[test]
    fn survival_edge_cases() {
        let (p, d) = uniform(3, 10);
        let o = AnalysisOptions::sharp();
        assert_eq!(survival(&p, &d, 50, 0, &o), 1.0);
        // Too few blocks for even level 1: b_1 = 10 > 5.
        assert_eq!(survival(&p, &d, 5, 1, &o), 0.0);
        // b_3 = 30 > 20.
        assert_eq!(survival(&p, &d, 20, 3, &o), 0.0);
    }

    #[test]
    fn survival_is_monotone_in_k_and_m() {
        let (p, d) = uniform(4, 5);
        let o = AnalysisOptions::sharp();
        for m in [10usize, 20, 40, 80] {
            let mut last = 1.0;
            for k in 1..=4 {
                let s = survival(&p, &d, m, k, &o);
                assert!(
                    s <= last + 1e-12,
                    "survival increased: m={m} k={k}: {s} > {last}"
                );
                assert!((0.0..=1.0 + 1e-12).contains(&s));
                last = s;
            }
        }
        for k in 1..=4 {
            let mut last = 0.0;
            for m in [10usize, 20, 40, 80, 160] {
                let s = survival(&p, &d, m, k, &o);
                assert!(s + 1e-9 >= last, "survival not monotone in m");
                last = s;
            }
        }
    }

    #[test]
    fn exact_probabilities_sum_to_one() {
        let (p, d) = uniform(3, 6);
        let o = AnalysisOptions::sharp();
        for m in [0usize, 5, 12, 30, 60] {
            let total: f64 = (0..=3).map(|k| decode_exactly(&p, &d, m, k, &o)).sum();
            assert!((total - 1.0).abs() < 1e-9, "m={m} total={total}");
        }
    }

    #[test]
    fn single_level_matches_binomial_tail() {
        // One level: X >= 1 iff D_1 = M >= a_1 (all blocks land there).
        let p = PriorityProfile::flat(10).unwrap();
        let d = PriorityDistribution::uniform(1);
        let o = AnalysisOptions::sharp();
        assert_eq!(survival(&p, &d, 9, 1, &o), 0.0);
        let s = survival(&p, &d, 10, 1, &o);
        assert!((s - 1.0).abs() < 1e-9, "s={s}");
    }

    #[test]
    fn two_level_case_matches_direct_binomial_sum() {
        // n=2, survival(1) = P(Bin(M, p1) >= a1): check against direct
        // binomial computation.
        let p = PriorityProfile::new(vec![3, 3]).unwrap();
        let d = PriorityDistribution::from_weights(vec![0.4, 0.6]).unwrap();
        let o = AnalysisOptions::sharp();
        let m = 12;
        let direct: f64 = (3..=m)
            .map(|j| {
                let binom = (0..j).fold(1.0, |acc, i| acc * (m - i) as f64 / (i + 1) as f64);
                binom * 0.4f64.powi(j as i32) * 0.6f64.powi((m - j) as i32)
            })
            .sum();
        let got = survival(&p, &d, m, 1, &o);
        assert!((got - direct).abs() < 1e-9, "got={got} direct={direct}");
    }

    #[test]
    fn expected_levels_bounds_and_growth() {
        let (p, d) = uniform(5, 4);
        let o = AnalysisOptions::sharp();
        let mut last = 0.0;
        for m in [0usize, 8, 16, 32, 64, 128] {
            let e = expected_levels(&p, &d, m, &o);
            assert!((0.0..=5.0 + 1e-9).contains(&e));
            assert!(e + 1e-9 >= last, "E(X) not monotone in m");
            last = e;
        }
        // Plenty of blocks: all levels decode.
        assert!(expected_levels(&p, &d, 400, &o) > 4.9);
    }

    #[test]
    fn rank_exact_is_slightly_pessimistic() {
        let (p, d) = uniform(3, 10);
        let sharp = AnalysisOptions::sharp();
        let exact = AnalysisOptions::rank_exact(256.0);
        for m in [30usize, 45, 60] {
            let es = expected_levels(&p, &d, m, &sharp);
            let ee = expected_levels(&p, &d, m, &exact);
            assert!(ee <= es + 1e-12, "m={m}: rank-exact above sharp");
            assert!(es - ee < 0.05, "m={m}: correction too large ({es} vs {ee})");
        }
    }

    #[test]
    fn zero_mass_level_blocks_decoding() {
        // If level 1 never receives coded blocks, it can never decode.
        let p = PriorityProfile::new(vec![2, 2]).unwrap();
        let d = PriorityDistribution::from_weights(vec![0.0, 1.0]).unwrap();
        let o = AnalysisOptions::sharp();
        assert!(survival(&p, &d, 100, 1, &o) < 1e-12);
        assert!(expected_levels(&p, &d, 100, &o) < 1e-9);
    }
}
