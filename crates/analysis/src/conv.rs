//! Truncated polynomial convolution, naive and FFT-accelerated.
//!
//! The decoding-performance analysis multiplies per-level generating
//! polynomials of degree up to `M` (Sec. 3.3 cites the Kontkanen–
//! Myllymäki DP+FFT technique for exactly these multinomial sums). Both a
//! quadratic schoolbook path and an `O(M log M)` FFT path are provided
//! and cross-checked in tests; the dispatcher picks by size.

use std::f64::consts::PI;

/// Size threshold above which convolution switches to FFT.
const FFT_THRESHOLD: usize = 96;

/// Truncated convolution: returns the first `max_len` coefficients of
/// `a * b`.
///
/// All analysis vectors are probability weights in `[0, 1]`; FFT rounding
/// can produce tiny negative values, which are clamped to 0.
pub fn convolve(a: &[f64], b: &[f64], max_len: usize) -> Vec<f64> {
    if a.is_empty() || b.is_empty() || max_len == 0 {
        return vec![0.0; max_len];
    }
    if a.len().min(b.len()) <= FFT_THRESHOLD {
        convolve_naive(a, b, max_len)
    } else {
        convolve_fft(a, b, max_len)
    }
}

/// Schoolbook truncated convolution.
pub fn convolve_naive(a: &[f64], b: &[f64], max_len: usize) -> Vec<f64> {
    let mut out = vec![0.0; max_len];
    for (i, &ai) in a.iter().enumerate() {
        if i >= max_len {
            break;
        }
        if ai == 0.0 {
            continue;
        }
        let lim = (max_len - i).min(b.len());
        for (j, &bj) in b.iter().take(lim).enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// FFT truncated convolution (clamps tiny negative round-off to 0).
pub fn convolve_fft(a: &[f64], b: &[f64], max_len: usize) -> Vec<f64> {
    let need = (a.len() + b.len() - 1).min(max_len.max(1));
    let size = (a.len() + b.len() - 1).next_power_of_two();

    let mut fa: Vec<(f64, f64)> = a.iter().map(|&x| (x, 0.0)).collect();
    fa.resize(size, (0.0, 0.0));
    let mut fb: Vec<(f64, f64)> = b.iter().map(|&x| (x, 0.0)).collect();
    fb.resize(size, (0.0, 0.0));

    fft(&mut fa, false);
    fft(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        let re = x.0 * y.0 - x.1 * y.1;
        let im = x.0 * y.1 + x.1 * y.0;
        *x = (re, im);
    }
    fft(&mut fa, true);

    let mut out = vec![0.0; max_len];
    for (o, &(re, _)) in out.iter_mut().take(need).zip(&fa) {
        *o = if re < 0.0 { 0.0 } else { re };
    }
    out
}

/// Only the `at`-th coefficient of `a * b` — the `[z^M]` extraction of
/// the Poissonization identity, cheaper than a full convolution.
pub fn convolution_coefficient(a: &[f64], b: &[f64], at: usize) -> f64 {
    let mut acc = 0.0;
    let lo = at.saturating_sub(b.len().saturating_sub(1));
    let hi = at.min(a.len().saturating_sub(1));
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    for i in lo..=hi {
        acc += a[i] * b[at - i];
    }
    acc
}

/// Iterative radix-2 Cooley–Tukey FFT over `(re, im)` pairs.
///
/// # Panics
///
/// Panics if the buffer length is not a power of two.
fn fft(buf: &mut [(f64, f64)], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = buf[start + k];
                let (vr, vi) = buf[start + k + len / 2];
                let (tr, ti) = (vr * cr - vi * ci, vr * ci + vi * cr);
                buf[start + k] = (ur + tr, ui + ti);
                buf[start + k + len / 2] = (ur - tr, ui - ti);
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            v.0 *= scale;
            v.1 *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn naive_small_example() {
        // (1 + 2z)(3 + 4z) = 3 + 10z + 8z^2
        let out = convolve_naive(&[1.0, 2.0], &[3.0, 4.0], 4);
        assert_close(&out, &[3.0, 10.0, 8.0, 0.0], 1e-12);
    }

    #[test]
    fn truncation_applies() {
        let out = convolve_naive(&[1.0, 2.0], &[3.0, 4.0], 2);
        assert_close(&out, &[3.0, 10.0], 1e-12);
    }

    #[test]
    fn fft_matches_naive_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let la = rng.gen_range(1..300);
            let lb = rng.gen_range(1..300);
            let a: Vec<f64> = (0..la).map(|_| rng.gen::<f64>()).collect();
            let b: Vec<f64> = (0..lb).map(|_| rng.gen::<f64>()).collect();
            let max_len = rng.gen_range(1..600);
            let naive = convolve_naive(&a, &b, max_len);
            let fft = convolve_fft(&a, &b, max_len);
            assert_close(&naive, &fft, 1e-9);
        }
    }

    #[test]
    fn dispatcher_handles_edge_cases() {
        assert_eq!(convolve(&[], &[1.0], 3), vec![0.0; 3]);
        assert_eq!(convolve(&[1.0], &[], 3), vec![0.0; 3]);
        assert_eq!(convolve(&[1.0], &[1.0], 0), Vec::<f64>::new());
        let out = convolve(&[5.0], &[7.0], 3);
        assert_close(&out, &[35.0, 0.0, 0.0], 1e-12);
    }

    #[test]
    fn coefficient_extraction_matches_full_convolution() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..30).map(|_| rng.gen::<f64>()).collect();
        let full = convolve_naive(&a, &b, 79);
        for at in [0usize, 1, 25, 49, 60, 78] {
            assert!(
                (convolution_coefficient(&a, &b, at) - full[at]).abs() < 1e-12,
                "at={at}"
            );
        }
        // Beyond the degree: zero.
        assert_eq!(convolution_coefficient(&a, &b, 79), 0.0);
        assert_eq!(convolution_coefficient(&a, &b, 1000), 0.0);
    }

    #[test]
    fn convolving_probability_vectors_preserves_mass() {
        // Poisson(3) * Poisson(5) = Poisson(8).
        let a = crate::numeric::poisson_pmf(3.0, 60);
        let b = crate::numeric::poisson_pmf(5.0, 60);
        let c = convolve(&a, &b, 60);
        let want = crate::numeric::poisson_pmf(8.0, 60);
        assert_close(&c, &want, 1e-9);
    }

    #[test]
    fn fft_negative_clamp() {
        // Convolving non-negative vectors can only round to tiny
        // negatives; verify the clamp keeps outputs non-negative.
        let a = vec![1e-300; 200];
        let b = vec![1e-300; 200];
        let out = convolve_fft(&a, &b, 399);
        assert!(out.iter().all(|&x| x >= 0.0));
    }
}
