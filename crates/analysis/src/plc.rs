//! Decoding-performance analysis for PLC (Sec. 3.3.2 / Theorem 1).
//!
//! Theorem 1 characterises the event "exactly the first `k` levels
//! decode from `M` randomly accumulated coded blocks":
//!
//! * `A_i = { D_{i,k} ≥ b_k − b_{i−1} }` for `i = 1…k` — the first `k`
//!   levels decode (Lemma 2): rows of levels `i..k` are the only ones
//!   whose support lies inside the prefix `b_k` yet reaches past
//!   `b_{i-1}`, so at least `b_k − b_{i−1}` of them are needed;
//! * `A_j = { D_{k+1,j} ≤ b_j − b_k − 1 }` for `j = k+1…m` — decoding
//!   cannot extend to any longer prefix (Lemma 3): once the prefix `b_k`
//!   is known, only rows of levels `k+1..j` constrain the next
//!   `b_j − b_k` unknowns,
//!
//! with `m = argmax_i { b_i ≤ M }` (no longer prefix is countable at
//! all). Note that `Pr(X ≥ k)` is *not* simply Lemma 2's event at `k`:
//! a prefix can decode "through" a longer prefix — e.g. with levels of
//! sizes (2, 1) and three level-2 blocks, level 1 decodes even though no
//! level-1 block was ever collected. The distribution of `X` must
//! therefore be assembled from the exact per-`k` events above.
//!
//! Both event groups constrain *cumulative* counts, so each is computed
//! by a dynamic program over per-level Poissonized generating
//! polynomials (the same Poissonization identity as the SLC analysis):
//! group one processes levels `k…1` clamping suffix sums from below;
//! group two processes levels `k+1…m` clamping prefix sums from above.
//! The paper's technical report resorts to approximations here; the DP
//! below evaluates Theorem 1's events exactly, which is why our analysis
//! tracks the 50-level simulation more closely than the paper's own
//! curves (see EXPERIMENTS.md).

use prlc_core::{PriorityDistribution, PriorityProfile};

use crate::conv::{convolution_coefficient, convolve};
use crate::model::{AnalysisOptions, DecodabilityModel};
use crate::numeric::{poisson_pmf, poisson_point};

/// The probability distribution of `X`, the number of decoded levels:
/// returns `probs` with `probs[k] = Pr(X = k)` for `k = 0..=n`.
///
/// The vector sums to 1 (up to floating point; a useful self-check since
/// each entry is an independent DP evaluation).
///
/// # Panics
///
/// Panics if the distribution's level count differs from the profile's.
pub fn distribution(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    opts: &AnalysisOptions,
) -> Vec<f64> {
    let n = profile.num_levels();
    assert_eq!(
        dist.num_levels(),
        n,
        "distribution level count does not match profile"
    );
    // m_lvl = argmax { b_i <= m }: the longest prefix countably decodable.
    let m_lvl = (0..=n).rev().find(|&i| profile.bound(i) <= m).unwrap_or(0);

    let mut probs = vec![0.0; n + 1];
    // Work from the likeliest end (large k) down, stopping once the mass
    // is exhausted — for large M only a handful of k carry weight.
    let mut captured = 0.0;
    for k in (0..=m_lvl).rev() {
        let p = decode_exactly_raw(profile, dist, m, k, m_lvl, opts);
        probs[k] = p;
        captured += p;
        if captured >= 1.0 - 1e-12 {
            break;
        }
    }
    probs
}

/// `Pr(X = k)` per Theorem 1.
pub fn decode_exactly(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    assert!(k <= n, "k={k} exceeds {n} levels");
    let m_lvl = (0..=n).rev().find(|&i| profile.bound(i) <= m).unwrap_or(0);
    if k > m_lvl {
        return 0.0;
    }
    decode_exactly_raw(profile, dist, m, k, m_lvl, opts)
}

/// `Pr(X ≥ k)`.
pub fn survival(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    assert!(k <= n, "k={k} exceeds {n} levels");
    if k == 0 {
        return 1.0;
    }
    let probs = distribution(profile, dist, m, opts);
    probs[k..].iter().sum::<f64>().min(1.0)
}

/// `E(X)` for PLC.
pub fn expected_levels(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    opts: &AnalysisOptions,
) -> f64 {
    distribution(profile, dist, m, opts)
        .iter()
        .enumerate()
        .map(|(k, &p)| k as f64 * p)
        .sum()
}

/// Evaluates Theorem 1's event probability for exactly-`k`, given the
/// precomputed level cap `m_lvl`. Caller guarantees `k <= m_lvl`.
fn decode_exactly_raw(
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    m: usize,
    k: usize,
    m_lvl: usize,
    opts: &AnalysisOptions,
) -> f64 {
    let n = profile.num_levels();
    let len = m + 1;
    let b_k = profile.bound(k);

    // Group 1 (Lemma 2): process levels k..1, clamping suffix sums
    // D_{i,k} >= b_k - b_{i-1} from below.
    let mut v = vec![0.0; len];
    v[0] = 1.0;
    for level in (0..k).rev() {
        let g = poisson_pmf(m as f64 * dist.p(level), len);
        v = convolve(&v, &g, len);
        let threshold = b_k - profile.bound(level);
        for s in v.iter_mut().take(threshold.min(len)) {
            *s = 0.0;
        }
        if v.iter().all(|&x| x == 0.0) {
            return 0.0;
        }
    }
    // Optional rank refinement on the row count covering the decoded
    // prefix.
    if k > 0 {
        if let DecodabilityModel::RankExact { q } = opts.model {
            for (s, vs) in v.iter_mut().enumerate() {
                *vs *= crate::numeric::full_rank_probability(q, s, b_k);
            }
        }
    }

    // Group 2 (Lemma 3): process levels k+1..m_lvl, clamping prefix sums
    // D_{k+1,j} <= b_j - b_k - 1 from above.
    let mut w = vec![0.0; len];
    w[0] = 1.0;
    for level in k..m_lvl {
        let g = poisson_pmf(m as f64 * dist.p(level), len);
        w = convolve(&w, &g, len);
        let cap = profile.bound(level + 1) - b_k - 1;
        for s in w.iter_mut().skip(cap + 1) {
            *s = 0.0;
        }
        if w.iter().all(|&x| x == 0.0) {
            return 0.0;
        }
    }

    // Levels m_lvl+1..n are unconstrained; lump their Poisson mass.
    let rest = poisson_pmf(m as f64 * dist.mass(m_lvl..n), len);

    let vw = convolve(&v, &w, len);
    let numerator = convolution_coefficient(&vw, &rest, m);
    numerator / poisson_point(m as f64, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, per: usize) -> (PriorityProfile, PriorityDistribution) {
        (
            PriorityProfile::uniform(n, per).unwrap(),
            PriorityDistribution::uniform(n),
        )
    }

    #[test]
    fn survival_edge_cases() {
        let (p, d) = uniform(3, 10);
        let o = AnalysisOptions::sharp();
        assert_eq!(survival(&p, &d, 100, 0, &o), 1.0);
        assert_eq!(survival(&p, &d, 9, 1, &o), 0.0); // b_1 = 10 > 9
        assert_eq!(survival(&p, &d, 29, 3, &o), 0.0); // b_3 = 30 > 29
    }

    #[test]
    fn distribution_sums_to_one() {
        let (p, d) = uniform(3, 6);
        let o = AnalysisOptions::sharp();
        for m in [0usize, 6, 15, 18, 40, 80] {
            let probs = distribution(&p, &d, m, &o);
            let total: f64 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-8, "m={m} total={total}");
            assert!(probs.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        }
    }

    #[test]
    fn survival_monotonicity() {
        let (p, d) = uniform(4, 5);
        let o = AnalysisOptions::sharp();
        for m in [10usize, 20, 40, 80] {
            let mut last = 1.0;
            for k in 1..=4 {
                let s = survival(&p, &d, m, k, &o);
                assert!(s <= last + 1e-9, "m={m} k={k}: {s} > {last}");
                assert!((0.0..=1.0 + 1e-9).contains(&s));
                last = s;
            }
        }
    }

    #[test]
    fn hand_computed_two_level_case() {
        // Profile (2, 1), uniform distribution, M = 3. By enumeration of
        // the multinomial (D_1, D_2) (see module tests derivation):
        // Pr(X=1) = Pr(D=(3,0)) = 1/8, Pr(X=2) = 7/8, E(X) = 15/8.
        let p = PriorityProfile::new(vec![2, 1]).unwrap();
        let d = PriorityDistribution::uniform(2);
        let o = AnalysisOptions::sharp();
        let probs = distribution(&p, &d, 3, &o);
        assert!((probs[0] - 0.0).abs() < 1e-9, "P0={}", probs[0]);
        assert!((probs[1] - 0.125).abs() < 1e-9, "P1={}", probs[1]);
        assert!((probs[2] - 0.875).abs() < 1e-9, "P2={}", probs[2]);
        let e = expected_levels(&p, &d, 3, &o);
        assert!((e - 1.875).abs() < 1e-9, "E={e}");
    }

    #[test]
    fn single_level_plc_equals_slc() {
        let p = PriorityProfile::flat(12).unwrap();
        let d = PriorityDistribution::uniform(1);
        let o = AnalysisOptions::sharp();
        for m in [5usize, 11, 12, 20] {
            let plc = survival(&p, &d, m, 1, &o);
            let slc = crate::slc::survival(&p, &d, m, 1, &o);
            assert!((plc - slc).abs() < 1e-9, "m={m}: {plc} vs {slc}");
        }
    }

    #[test]
    fn plc_dominates_slc() {
        let (p, d) = uniform(5, 4);
        let o = AnalysisOptions::sharp();
        for m in [4usize, 8, 12, 16, 20, 24, 30, 40] {
            let e_plc = expected_levels(&p, &d, m, &o);
            let e_slc = crate::slc::expected_levels(&p, &d, m, &o);
            assert!(e_plc + 1e-9 >= e_slc, "m={m}: PLC {e_plc} < SLC {e_slc}");
        }
    }

    #[test]
    fn two_level_survival_matches_direct_enumeration() {
        // n=2, sizes (2,3), p = (0.3, 0.7), M = 7.
        // X >= 2 iff D_{1,2} = 7 >= 5 (always) and D_2 >= 3, i.e. D_1 <= 4.
        // X >= 1 iff D_1 >= 2 (decode via level 1) OR X >= 2; since
        // D_1 <= 4 covers D_1 in {0..4} and D_1 >= 2 covers {2..7}, the
        // union is everything: Pr(X>=1) = 1.
        let p = PriorityProfile::new(vec![2, 3]).unwrap();
        let d = PriorityDistribution::from_weights(vec![0.3, 0.7]).unwrap();
        let o = AnalysisOptions::sharp();
        let m = 7usize;
        let binom = |j: usize| -> f64 {
            let c = (0..j).fold(1.0, |acc, i| acc * (m - i) as f64 / (i + 1) as f64);
            c * 0.3f64.powi(j as i32) * 0.7f64.powi((m - j) as i32)
        };
        let direct_k2: f64 = (0..=4).map(binom).sum();
        let got_k2 = survival(&p, &d, m, 2, &o);
        assert!((got_k2 - direct_k2).abs() < 1e-9, "{got_k2} vs {direct_k2}");
        let got_k1 = survival(&p, &d, m, 1, &o);
        assert!((got_k1 - 1.0).abs() < 1e-9, "{got_k1}");
        // Pr(X = 1) = Pr(D_1 >= 2 and D_1 >= 5) = Pr(D_1 >= 5).
        let direct_x1: f64 = (5..=7).map(binom).sum();
        let got_x1 = decode_exactly(&p, &d, m, 1, &o);
        assert!((got_x1 - direct_x1).abs() < 1e-9, "{got_x1} vs {direct_x1}");
    }

    #[test]
    fn per_level_blocks_insufficient_for_slc_still_decode_plc() {
        // All mass on the last level: PLC decodes everything once enough
        // full-support rows arrive; SLC never decodes level 1.
        let p = PriorityProfile::new(vec![2, 2]).unwrap();
        let d = PriorityDistribution::from_weights(vec![0.0, 1.0]).unwrap();
        let o = AnalysisOptions::sharp();
        let plc = survival(&p, &d, 10, 2, &o);
        assert!((plc - 1.0).abs() < 1e-9, "plc={plc}");
        // And level 1 decodes *through* level 2 even at exactly 4 blocks.
        let plc1 = survival(&p, &d, 4, 1, &o);
        assert!((plc1 - 1.0).abs() < 1e-9, "plc1={plc1}");
        let slc = crate::slc::survival(&p, &d, 10, 2, &o);
        assert!(slc < 1e-12);
    }

    #[test]
    fn rank_exact_close_to_sharp_for_gf256() {
        let (p, d) = uniform(3, 8);
        let sharp = AnalysisOptions::sharp();
        let exact = AnalysisOptions::rank_exact(256.0);
        for m in [24usize, 36, 60] {
            let es = expected_levels(&p, &d, m, &sharp);
            let ee = expected_levels(&p, &d, m, &exact);
            assert!(es - ee < 0.06, "m={m}: {es} vs {ee}");
        }
    }

    #[test]
    fn monte_carlo_agreement_moderate_size() {
        // Direct cross-validation against the real decoder at a size
        // large enough to be meaningful but fast: N=30, 3 levels.
        use prlc_core::{Encoder, PlcDecoder, PriorityDecoder, Scheme};
        use prlc_gf::Gf256;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PriorityProfile::new(vec![5, 10, 15]).unwrap();
        let d = PriorityDistribution::uniform(3);
        let o = AnalysisOptions::sharp();
        let mut rng = StdRng::seed_from_u64(1234);
        for m in [12usize, 24, 36] {
            let runs = 400;
            let mut acc = 0.0;
            for _ in 0..runs {
                let enc = Encoder::new(Scheme::Plc, p.clone());
                let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(p.clone());
                for _ in 0..m {
                    let level = d.sample_level(&mut rng);
                    dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
                }
                acc += dec.decoded_levels() as f64;
            }
            let sim = acc / runs as f64;
            let ana = expected_levels(&p, &d, m, &o);
            assert!(
                (sim - ana).abs() < 0.25,
                "m={m}: sim {sim} vs analysis {ana}"
            );
        }
    }
}
