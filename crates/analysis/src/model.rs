//! Shared modelling options for the decoding-performance analysis.

use serde::{Deserialize, Serialize};

/// How decodability is modelled given per-level coded-block counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum DecodabilityModel {
    /// The paper's large-field idealisation (footnote 1 of Sec. 3.3):
    /// a level (or prefix) decodes **iff** it has accumulated at least as
    /// many coded blocks as it has source blocks. Sharp 0/1 indicator.
    #[default]
    Sharp,
    /// Refines the indicator with the probability that a random matrix
    /// over `GF(q)` actually reaches full column rank,
    /// `∏_{i=d-a+1}^{d}(1 − q^{−i})` for `d` blocks covering `a` unknowns.
    ///
    /// For SLC (independent per-level RLC decodes) this makes the
    /// analysis exact up to the uniform-entry approximation; for PLC it
    /// is applied per constraint event and remains an approximation.
    RankExact {
        /// The field size `q` (e.g. 256).
        q: f64,
    },
}

/// Options for the analytical decoding curves.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AnalysisOptions {
    /// The decodability model; defaults to the paper's sharp indicator.
    pub model: DecodabilityModel,
}

impl AnalysisOptions {
    /// The paper's model.
    pub fn sharp() -> Self {
        AnalysisOptions {
            model: DecodabilityModel::Sharp,
        }
    }

    /// The rank-corrected model over `GF(q)`.
    pub fn rank_exact(q: f64) -> Self {
        AnalysisOptions {
            model: DecodabilityModel::RankExact { q },
        }
    }

    /// Weight for the event "`d` random blocks decode `a` unknowns".
    pub(crate) fn decode_weight(&self, d: usize, a: usize) -> f64 {
        match self.model {
            DecodabilityModel::Sharp => {
                if d >= a {
                    1.0
                } else {
                    0.0
                }
            }
            DecodabilityModel::RankExact { q } => crate::numeric::full_rank_probability(q, d, a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharp_weight_is_indicator() {
        let o = AnalysisOptions::sharp();
        assert_eq!(o.decode_weight(4, 5), 0.0);
        assert_eq!(o.decode_weight(5, 5), 1.0);
        assert_eq!(o.decode_weight(9, 5), 1.0);
    }

    #[test]
    fn rank_exact_weight_is_between_zero_and_sharp() {
        let o = AnalysisOptions::rank_exact(256.0);
        assert_eq!(o.decode_weight(4, 5), 0.0);
        let w = o.decode_weight(5, 5);
        assert!(w > 0.99 && w < 1.0);
        assert!(o.decode_weight(8, 5) > w);
    }

    #[test]
    fn default_is_sharp() {
        assert_eq!(AnalysisOptions::default(), AnalysisOptions::sharp());
    }
}
