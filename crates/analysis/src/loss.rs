//! Survivability analysis: expected decoding after random block loss.
//!
//! The paper's motivating quantity — "the smaller `M_i` is, the more
//! severe node failures that the data in the first `k_i` levels can
//! survive" (Sec. 3.3) — made explicit: if `M` coded blocks were stored
//! and each independently survives a failure event with probability
//! `1 − loss` (uniform node failure destroys each cached block
//! independently), the surviving count is `Binomial(M, 1 − loss)` and
//!
//! `E[X | loss] = Σ_m P(Bin(M, 1−loss) = m) · E(X_m)`.
//!
//! The binomial mass outside ±6σ is negligible, so the mixture is
//! evaluated over that window only.

use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};

use crate::curves;
use crate::model::AnalysisOptions;
use crate::numeric::LnFactorial;

/// Expected decoded levels after storing `stored` blocks and losing each
/// independently with probability `loss`.
///
/// # Panics
///
/// Panics if `loss` is outside `[0, 1]`.
pub fn expected_levels_after_loss(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    stored: usize,
    loss: f64,
    opts: &AnalysisOptions,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&loss),
        "loss must be in [0,1], got {loss}"
    );
    if loss == 0.0 {
        return curves::expected_levels(scheme, profile, dist, stored, opts);
    }
    if loss == 1.0 || stored == 0 {
        return 0.0;
    }
    let keep = 1.0 - loss;
    let mean = stored as f64 * keep;
    let sigma = (stored as f64 * keep * loss).sqrt();
    let lo = (mean - 6.0 * sigma).floor().max(0.0) as usize;
    let hi = (mean + 6.0 * sigma).ceil().min(stored as f64) as usize;

    let lnfact = LnFactorial::up_to(stored);
    let (lk, ll) = (keep.ln(), loss.ln());
    let mut acc = 0.0;
    let mut mass = 0.0;
    for m in lo..=hi {
        let ln_pmf = lnfact.get(stored) - lnfact.get(m) - lnfact.get(stored - m)
            + m as f64 * lk
            + (stored - m) as f64 * ll;
        let p = ln_pmf.exp();
        if p < 1e-14 {
            continue;
        }
        mass += p;
        acc += p * curves::expected_levels(scheme, profile, dist, m, opts);
    }
    // Renormalise over the truncated window (mass ≈ 1 − 1e-9).
    if mass > 0.0 {
        acc / mass
    } else {
        0.0
    }
}

/// The largest loss fraction (within `tol`) at which the expected
/// decoded levels still reach `target` — the *survivable failure
/// severity* of a deployment, found by bisection (`E[X | loss]` is
/// non-increasing in the loss).
///
/// Returns `None` if even lossless storage misses the target.
///
/// # Panics
///
/// Panics if `tol` is not positive.
pub fn max_survivable_loss(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    stored: usize,
    target_levels: f64,
    tol: f64,
    opts: &AnalysisOptions,
) -> Option<f64> {
    assert!(tol > 0.0, "tolerance must be positive");
    let at = |loss: f64| expected_levels_after_loss(scheme, profile, dist, stored, loss, opts);
    if at(0.0) < target_levels {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if at(mid) >= target_levels {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PriorityProfile, PriorityDistribution, AnalysisOptions) {
        (
            PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            PriorityDistribution::uniform(3),
            AnalysisOptions::sharp(),
        )
    }

    #[test]
    fn loss_boundaries() {
        let (p, d, o) = setup();
        let full = expected_levels_after_loss(Scheme::Plc, &p, &d, 40, 0.0, &o);
        assert_eq!(full, curves::expected_levels(Scheme::Plc, &p, &d, 40, &o));
        assert_eq!(
            expected_levels_after_loss(Scheme::Plc, &p, &d, 40, 1.0, &o),
            0.0
        );
        assert_eq!(
            expected_levels_after_loss(Scheme::Plc, &p, &d, 0, 0.5, &o),
            0.0
        );
    }

    #[test]
    fn loss_curve_is_monotone_decreasing() {
        let (p, d, o) = setup();
        for scheme in [Scheme::Slc, Scheme::Plc, Scheme::Rlc] {
            let mut last = f64::INFINITY;
            for loss in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
                let e = expected_levels_after_loss(scheme, &p, &d, 30, loss, &o);
                assert!(e <= last + 1e-9, "{scheme} loss={loss}");
                assert!((0.0..=3.0 + 1e-9).contains(&e));
                last = e;
            }
        }
    }

    #[test]
    fn matches_monte_carlo_thinning() {
        use prlc_core::{Encoder, PlcDecoder, PriorityDecoder};
        use prlc_gf::Gf256;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let (p, d, o) = setup();
        let stored = 30;
        let loss = 0.4;
        let runs = 400;
        let mut rng = StdRng::seed_from_u64(11);
        let mut acc = 0.0;
        for _ in 0..runs {
            let enc = Encoder::new(Scheme::Plc, p.clone());
            let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(p.clone());
            for _ in 0..stored {
                let level = d.sample_level(&mut rng);
                let b = enc.encode_unpayloaded::<Gf256, _>(level, &mut rng);
                if !rng.gen_bool(loss) {
                    dec.insert_block(&b);
                }
            }
            acc += dec.decoded_levels() as f64;
        }
        let sim = acc / runs as f64;
        let ana = expected_levels_after_loss(Scheme::Plc, &p, &d, stored, loss, &o);
        assert!((sim - ana).abs() < 0.25, "sim {sim} vs analysis {ana}");
    }

    #[test]
    fn rlc_cliff_is_visible() {
        // 2N stored: RLC holds everything below 50% loss, then falls off
        // a cliff, as the ablation measures.
        let p = PriorityProfile::flat(20).unwrap();
        let d = PriorityDistribution::uniform(1);
        let o = AnalysisOptions::sharp();
        let before = expected_levels_after_loss(Scheme::Rlc, &p, &d, 40, 0.3, &o);
        let after = expected_levels_after_loss(Scheme::Rlc, &p, &d, 40, 0.7, &o);
        assert!(before > 0.95, "before cliff: {before}");
        assert!(after < 0.05, "after cliff: {after}");
    }

    #[test]
    fn max_survivable_loss_brackets() {
        let (p, d, o) = setup();
        let loss = max_survivable_loss(Scheme::Plc, &p, &d, 40, 1.0, 1e-3, &o)
            .expect("level 1 survivable at zero loss");
        assert!((0.0..1.0).contains(&loss));
        // Verify the bracket property.
        let at = |l: f64| expected_levels_after_loss(Scheme::Plc, &p, &d, 40, l, &o);
        assert!(at(loss) >= 1.0 - 1e-6);
        assert!(at((loss + 0.05).min(1.0)) < 1.0 + 1e-9);
        // Unreachable target.
        assert_eq!(
            max_survivable_loss(Scheme::Plc, &p, &d, 5, 3.0, 1e-2, &o),
            None
        );
        // More stored blocks survive strictly harsher loss.
        let small = max_survivable_loss(Scheme::Plc, &p, &d, 20, 1.0, 1e-3, &o).unwrap();
        let large = max_survivable_loss(Scheme::Plc, &p, &d, 80, 1.0, 1e-3, &o).unwrap();
        assert!(large > small, "{large} vs {small}");
    }
}
