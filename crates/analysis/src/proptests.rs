//! Property tests: probability laws, and agreement between the
//! analytical curves and Monte-Carlo simulation of the real decoders —
//! the same validation Sec. 5.1 of the paper performs at scale.

use proptest::prelude::*;

use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
};
use prlc_gf::Gf256;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::curves;
use crate::model::AnalysisOptions;

fn profile_strategy() -> impl Strategy<Value = PriorityProfile> {
    prop::collection::vec(1usize..6, 1..5)
        .prop_map(|sizes| PriorityProfile::new(sizes).expect("nonzero sizes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn survival_probabilities_form_a_law(
        profile in profile_strategy(),
        m in 0usize..40,
        seed in 0u64..100,
    ) {
        let n = profile.num_levels();
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0.1..1.0)).collect();
        let dist = PriorityDistribution::from_weights(w).unwrap();
        let o = AnalysisOptions::sharp();
        for scheme in Scheme::ALL {
            let mut last = 1.0f64;
            for k in 0..=n {
                let s = curves::survival(scheme, &profile, &dist, m, k, &o);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{scheme} k={k}: {s}");
                prop_assert!(s <= last + 1e-9, "{scheme}: survival not monotone");
                last = s;
            }
            let total: f64 = (0..=n)
                .map(|k| curves::decode_exactly(scheme, &profile, &dist, m, k, &o))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "{scheme}: sums to {total}");
            // E(X) equals the survival sum by construction; check it also
            // equals sum k * P(X = k).
            let e = curves::expected_levels(scheme, &profile, &dist, m, &o);
            let e2: f64 = (1..=n)
                .map(|k| k as f64 * curves::decode_exactly(scheme, &profile, &dist, m, k, &o))
                .sum();
            prop_assert!((e - e2).abs() < 1e-7, "{scheme}: {e} vs {e2}");
        }
    }

    #[test]
    fn plc_analysis_matches_monte_carlo(
        sizes in prop::collection::vec(1usize..5, 1..4),
        seed in 0u64..50,
    ) {
        let profile = PriorityProfile::new(sizes).unwrap();
        let n = profile.num_levels();
        let total = profile.total_blocks();
        let dist = PriorityDistribution::uniform(n);
        let o = AnalysisOptions::sharp();
        let m = total; // mid-curve: neither trivially 0 nor saturated

        let runs = 300usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0f64;
        for _ in 0..runs {
            let enc = Encoder::new(Scheme::Plc, profile.clone());
            let mut dec: PlcDecoder<Gf256, ()> =
                PlcDecoder::coefficients_only(profile.clone());
            for _ in 0..m {
                let level = dist.sample_level(&mut rng);
                let b = enc.encode_unpayloaded::<Gf256, _>(level, &mut rng);
                dec.insert_block(&b);
            }
            acc += dec.decoded_levels() as f64;
        }
        let simulated = acc / runs as f64;
        let analytic = curves::expected_levels(Scheme::Plc, &profile, &dist, m, &o);
        // Monte-Carlo with 300 runs over a [0, n] variable: allow a
        // generous tolerance (plus the GF(256) singular-matrix gap the
        // sharp model ignores).
        let tol = 0.35 + 0.2 * n as f64 / 3.0;
        prop_assert!(
            (simulated - analytic).abs() < tol,
            "sim {simulated} vs analysis {analytic} (profile {:?})",
            profile.sizes()
        );
    }

    #[test]
    fn slc_analysis_matches_monte_carlo(
        sizes in prop::collection::vec(1usize..5, 1..4),
        seed in 0u64..50,
    ) {
        let profile = PriorityProfile::new(sizes).unwrap();
        let n = profile.num_levels();
        let total = profile.total_blocks();
        let dist = PriorityDistribution::uniform(n);
        let o = AnalysisOptions::sharp();
        let m = total + n; // SLC needs a little extra to be mid-curve

        let runs = 300usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0f64;
        for _ in 0..runs {
            let enc = Encoder::new(Scheme::Slc, profile.clone());
            let mut dec: SlcDecoder<Gf256, ()> =
                SlcDecoder::coefficients_only(profile.clone());
            for _ in 0..m {
                let level = dist.sample_level(&mut rng);
                let b = enc.encode_unpayloaded::<Gf256, _>(level, &mut rng);
                dec.insert_block(&b);
            }
            acc += dec.decoded_levels() as f64;
        }
        let simulated = acc / runs as f64;
        let analytic = curves::expected_levels(Scheme::Slc, &profile, &dist, m, &o);
        let tol = 0.35 + 0.2 * n as f64 / 3.0;
        prop_assert!(
            (simulated - analytic).abs() < tol,
            "sim {simulated} vs analysis {analytic} (profile {:?})",
            profile.sizes()
        );
    }

    #[test]
    fn plc_always_dominates_slc(
        profile in profile_strategy(),
        mult in 1usize..4,
    ) {
        let n = profile.num_levels();
        let dist = PriorityDistribution::uniform(n);
        let o = AnalysisOptions::sharp();
        let m = profile.total_blocks() * mult / 2;
        let plc = curves::expected_levels(Scheme::Plc, &profile, &dist, m, &o);
        let slc = curves::expected_levels(Scheme::Slc, &profile, &dist, m, &o);
        prop_assert!(plc + 1e-9 >= slc, "m={m}: PLC {plc} < SLC {slc}");
    }

    #[test]
    fn distributions_allocate_consistently(
        n in 1usize..6,
        m in 0usize..500,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0) + 1e-6).collect();
        let dist = PriorityDistribution::from_weights(w).unwrap();
        let counts = dist.allocate(m);
        prop_assert_eq!(counts.iter().sum::<usize>(), m);
        for (i, &c) in counts.iter().enumerate() {
            let exact = dist.p(i) * m as f64;
            prop_assert!((c as f64 - exact).abs() < 1.0 + 1e-9,
                "level {}: {} vs exact {}", i, c, exact);
        }
    }
}
