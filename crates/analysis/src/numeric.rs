//! Numerically stable primitives: log-factorials, Poisson pmf vectors and
//! Galois-field rank probabilities.

/// Natural log of `n!` computed by summation (exact enough for the block
/// counts used here, `n ≤ ~10^5`).
#[derive(Debug, Clone)]
pub struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    /// A table covering `0! ..= max!`.
    pub fn up_to(max: usize) -> Self {
        let mut table = Vec::with_capacity(max + 1);
        table.push(0.0);
        let mut acc = 0.0f64;
        for n in 1..=max {
            acc += (n as f64).ln();
            table.push(acc);
        }
        LnFactorial { table }
    }

    /// `ln(n!)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the table size.
    #[inline]
    pub fn get(&self, n: usize) -> f64 {
        self.table[n]
    }
}

/// The Poisson pmf `P(Z = d)` for `d = 0..len`, with mean `lambda`.
///
/// Computed in log space so that large means (`λ > 700`, where `e^{-λ}`
/// underflows) stay finite; far-tail entries underflow harmlessly to 0.
///
/// `lambda == 0` yields the point mass at 0.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson_pmf(lambda: f64, len: usize) -> Vec<f64> {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson mean must be a non-negative finite number, got {lambda}"
    );
    if len == 0 {
        return Vec::new();
    }
    if lambda == 0.0 {
        let mut v = vec![0.0; len];
        v[0] = 1.0;
        return v;
    }
    let lnfact = LnFactorial::up_to(len - 1);
    let ln_lambda = lambda.ln();
    (0..len)
        .map(|d| (-lambda + d as f64 * ln_lambda - lnfact.get(d)).exp())
        .collect()
}

/// `P(Z = at)` for `Z ~ Poisson(lambda)` — used for the Poissonization
/// denominator `Pois(M; M)`.
pub fn poisson_point(lambda: f64, at: usize) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson mean must be a non-negative finite number, got {lambda}"
    );
    if lambda == 0.0 {
        return if at == 0 { 1.0 } else { 0.0 };
    }
    let lnfact = LnFactorial::up_to(at);
    (-lambda + at as f64 * lambda.ln() - lnfact.get(at)).exp()
}

/// Probability that a `rows × cols` matrix with independent uniformly
/// random entries over `GF(q)` has full column rank (`rank == cols`),
/// assuming `rows ≥ cols`:
///
/// `∏_{i = rows-cols+1}^{rows} (1 − q^{−i})`.
///
/// Returns 0 when `rows < cols`. This is the correction factor for the
/// paper's large-field idealisation (footnote 1: "we assume a
/// sufficiently large Galois field such as GF(2^8)"), quantifying the
/// residual probability that "enough" random coded blocks are still not
/// decodable.
pub fn full_rank_probability(q: f64, rows: usize, cols: usize) -> f64 {
    assert!(q >= 2.0, "field size must be at least 2, got {q}");
    if rows < cols {
        return 0.0;
    }
    if cols == 0 {
        return 1.0;
    }
    let mut prob = 1.0;
    for i in (rows - cols + 1)..=rows {
        let term = 1.0 - q.powi(-(i as i32));
        if term <= 0.0 {
            return 0.0;
        }
        prob *= term;
        // q^{-i} underflows quickly; once the factor is 1.0 the rest are.
        if term == 1.0 {
            break;
        }
    }
    prob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_values() {
        let lf = LnFactorial::up_to(10);
        assert_eq!(lf.get(0), 0.0);
        assert_eq!(lf.get(1), 0.0);
        assert!((lf.get(5) - 120f64.ln()).abs() < 1e-12);
        assert!((lf.get(10) - 3628800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [0.5, 3.0, 50.0, 700.0, 1500.0] {
            let v = poisson_pmf(lambda, (4.0 * lambda) as usize + 40);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "lambda={lambda} sum={sum}");
            assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn poisson_pmf_zero_mean_is_point_mass() {
        let v = poisson_pmf(0.0, 5);
        assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn poisson_pmf_known_values() {
        // λ=2: P(0)=e^-2, P(1)=2e^-2, P(2)=2e^-2.
        let v = poisson_pmf(2.0, 3);
        let e2 = (-2.0f64).exp();
        assert!((v[0] - e2).abs() < 1e-12);
        assert!((v[1] - 2.0 * e2).abs() < 1e-12);
        assert!((v[2] - 2.0 * e2).abs() < 1e-12);
    }

    #[test]
    fn poisson_point_matches_pmf() {
        let v = poisson_pmf(37.5, 100);
        for at in [0usize, 1, 37, 99] {
            assert!((poisson_point(37.5, at) - v[at]).abs() < 1e-15);
        }
        assert_eq!(poisson_point(0.0, 0), 1.0);
        assert_eq!(poisson_point(0.0, 3), 0.0);
    }

    #[test]
    fn poisson_large_mean_is_finite() {
        // e^{-1500} underflows; the log-space path must survive.
        let v = poisson_pmf(1500.0, 1600);
        assert!(v.iter().all(|p| p.is_finite()));
        let sum: f64 = v.iter().sum();
        assert!(sum > 0.99, "sum={sum}");
        // Mode near the mean.
        assert!(v[1500] > v[1300]);
    }

    #[test]
    fn full_rank_probability_basics() {
        // Underdetermined: impossible.
        assert_eq!(full_rank_probability(256.0, 3, 5), 0.0);
        // Trivial.
        assert_eq!(full_rank_probability(256.0, 0, 0), 1.0);
        // Square q=2, n=1: P(nonzero) = 1/2.
        assert!((full_rank_probability(2.0, 1, 1) - 0.5).abs() < 1e-12);
        // Square q=2, n=2: (1-1/2)(1-1/4) = 0.375.
        assert!((full_rank_probability(2.0, 2, 2) - 0.375).abs() < 1e-12);
        // GF(256) square matrices are near-certainly invertible.
        let p = full_rank_probability(256.0, 100, 100);
        assert!(p > 0.995 && p < 1.0);
        // Extra rows help.
        assert!(full_rank_probability(2.0, 6, 3) > full_rank_probability(2.0, 3, 3));
    }

    #[test]
    fn full_rank_probability_is_monotone_in_rows() {
        let mut last = 0.0;
        for rows in 4..12 {
            let p = full_rank_probability(16.0, rows, 4);
            assert!(p >= last);
            last = p;
        }
    }
}
