//! Numerical decoding-performance analysis and priority-distribution
//! design for priority random linear codes.
//!
//! This crate reproduces Sec. 3.3 and Sec. 3.4 of *"Differentiated Data
//! Persistence with Priority Random Linear Codes"* (Lin, Li, Liang —
//! ICDCS 2007):
//!
//! * [`slc`] / [`plc`] — the probability that `M` randomly accumulated
//!   coded blocks decode (at least / exactly) the first `k` priority
//!   levels, and the expected decoded-level count `E(X)`, computed
//!   through a Poissonized multinomial dynamic program with FFT-backed
//!   polynomial convolutions (see [`conv`]).
//! * [`curves`] — scheme-dispatched decoding curves: `E(X)` against the
//!   number of processed coded blocks, the quantity plotted in every
//!   figure of the paper's evaluation.
//! * [`design`] — the feasibility solver of Sec. 3.4: find a priority
//!   distribution meeting a set of decoding constraints (eq. 9–11),
//!   replacing the paper's MATLAB search.
//! * [`model`] — the decodability model: the paper's sharp large-field
//!   idealisation, or a `GF(q)` rank-probability refinement.
//!
//! # Example
//!
//! ```
//! use prlc_analysis::{curves, AnalysisOptions};
//! use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 100 source blocks in 5 levels of 20; uniform priority distribution.
//! let profile = PriorityProfile::uniform(5, 20)?;
//! let dist = PriorityDistribution::uniform(5);
//! let opts = AnalysisOptions::sharp();
//!
//! // At N = 100 collected blocks, PLC has already decoded ~3 of the 5
//! // levels in expectation, while RLC still needs the full N
//! // independent blocks and decodes nothing with one block short.
//! let e = curves::expected_levels(Scheme::Plc, &profile, &dist, 100, &opts);
//! assert!(e > 2.0 && e < 5.0);
//! let rlc = curves::expected_levels(Scheme::Rlc, &profile, &dist, 99, &opts);
//! assert_eq!(rlc, 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod curves;
pub mod design;
pub mod loss;
pub mod model;
pub mod numeric;
pub mod overhead;
pub mod plc;
pub mod slc;

pub use design::{
    solve_feasibility, FeasibilityProblem, FullRecoveryConstraint, Solution, SolverOptions,
};
pub use model::{AnalysisOptions, DecodabilityModel};

#[cfg(test)]
mod proptests;
