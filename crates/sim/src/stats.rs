//! Summary statistics: means and 95% confidence intervals.
//!
//! The paper reports "the average and the 95% confidence intervals from
//! 100 independent experiments" for every data point; this module
//! provides exactly that aggregation.

use serde::{Deserialize, Serialize};

/// Mean and 95% confidence half-width of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation,
    /// `1.96 · s/√n`; the paper's 100-run samples are comfortably in CLT
    /// territory).
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Lower bound of the 95% confidence interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper bound of the 95% confidence interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

/// Summarises a sample.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "cannot summarise an empty sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary { mean, ci95: 0.0, n };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    Summary {
        mean,
        ci95: 1.96 * se,
        n,
    }
}

/// Summarises a matrix of per-run trajectories column-wise: `runs[r][i]`
/// is run `r`'s value at index `i`. All runs must have equal length.
///
/// # Panics
///
/// Panics if `runs` is empty or trajectory lengths differ.
pub fn summarize_trajectories(runs: &[Vec<f64>]) -> Vec<Summary> {
    assert!(!runs.is_empty(), "no trajectories to summarise");
    let len = runs[0].len();
    assert!(
        runs.iter().all(|r| r.len() == len),
        "trajectory lengths differ"
    );
    (0..len)
        .map(|i| {
            let col: Vec<f64> = runs.iter().map(|r| r[i]).collect();
            summarize(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 1);
        assert_eq!(s.lo(), 5.0);
        assert_eq!(s.hi(), 5.0);
    }

    #[test]
    fn known_values() {
        // Sample {1,2,3,4,5}: mean 3, s^2 = 2.5, se = sqrt(0.5).
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        let expect = 1.96 * (2.5f64 / 5.0).sqrt();
        assert!((s.ci95 - expect).abs() < 1e-12);
        assert!(s.lo() < 3.0 && s.hi() > 3.0);
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let s = summarize(&[7.0; 50]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        summarize(&[]);
    }

    #[test]
    fn trajectories_columnwise() {
        let runs = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
        let cols = summarize_trajectories(&runs);
        assert_eq!(cols.len(), 2);
        assert!((cols[0].mean - 2.0).abs() < 1e-12);
        assert!((cols[1].mean - 10.0).abs() < 1e-12);
        assert_eq!(cols[1].ci95, 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn ragged_trajectories_panic() {
        summarize_trajectories(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(summarize(&large).ci95 < summarize(&small).ci95);
    }
}
