//! Deterministic parallel experiment execution.
//!
//! Every experiment is a pure function of a 64-bit seed. The runner
//! splits a base seed into per-run seeds with SplitMix64 (so run `i` is
//! reproducible in isolation), executes runs across a configurable
//! number of std scoped threads, and returns results in run order —
//! identical output regardless of thread count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64: the standard seed-splitting mix (Steele et al.), used to
/// derive independent per-run seeds from a base seed.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for run `index` under `base_seed`.
pub fn run_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(index as u64 + 1))
}

/// The runner's default worker count: the `PRLC_THREADS` environment
/// variable if set to a positive decimal integer (e.g. `PRLC_THREADS=4`),
/// otherwise `available_parallelism`.
///
/// A set-but-malformed `PRLC_THREADS` (empty, non-numeric, or `0`) falls
/// back to `available_parallelism` and warns once on stderr — a typo'd
/// pin must not silently change how many workers a benchmark ran with.
pub fn default_threads() -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    if let Ok(v) = std::env::var("PRLC_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: ignoring PRLC_THREADS={v:?} (expected a positive \
                     integer, e.g. PRLC_THREADS=4); using available parallelism"
                );
            }),
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Executes `runs` independent experiments in parallel and returns their
/// results in run order. `f` receives the run's derived seed.
///
/// Worker count comes from [`default_threads`]; use
/// [`run_parallel_with_threads`] to pin it explicitly.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_parallel<T, F>(runs: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_parallel_with_threads(runs, base_seed, default_threads(), f)
}

/// [`run_parallel`] with an explicit worker-thread count (clamped to at
/// least 1 and at most `runs`). Results are independent of `threads`.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_parallel_with_threads<T, F>(runs: usize, base_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, runs);

    // Per-run wall-clock spans aggregate into the `sim.run` timer (and a
    // run counter); the timer is excluded from deterministic snapshots.
    // The trace track is keyed by the run's split seed, not its index or
    // thread, so trace dumps are identical across worker counts.
    let timed = |seed: u64| {
        let _span = prlc_obs::timer!("sim.run").span();
        let _track = prlc_obs::trace::track(seed);
        prlc_obs::counter!("sim.runs").incr();
        f(seed)
    };

    if threads <= 1 {
        return (0..runs).map(|i| timed(run_seed(base_seed, i))).collect();
    }

    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..runs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= runs {
                    break;
                }
                let out = timed(run_seed(base_seed, i));
                // Poison only means another worker panicked while
                // holding the guard; the Vec slot assignment below is
                // still well-defined, so recover the guard.
                results.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|r| r.expect("every run index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive run seeds differ.
        let seeds: Vec<u64> = (0..100).map(|i| run_seed(42, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "run seeds collide");
    }

    #[test]
    fn results_are_in_run_order() {
        let out = run_parallel(100, 7, |seed| seed);
        let expect: Vec<u64> = (0..100).map(|i| run_seed(7, i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u64> = run_parallel(0, 7, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_serial() {
        // The parallel path must produce exactly what a serial map would.
        let serial: Vec<u64> = (0..37).map(|i| run_seed(99, i) % 1000).collect();
        let parallel = run_parallel(37, 99, |s| s % 1000);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn malformed_prlc_threads_falls_back() {
        // Results are thread-count independent, so briefly perturbing
        // the variable cannot change any concurrent test's outcome.
        let saved = std::env::var("PRLC_THREADS").ok();
        std::env::set_var("PRLC_THREADS", "lots");
        let fallback = default_threads();
        match saved {
            Some(v) => std::env::set_var("PRLC_THREADS", v),
            None => std::env::remove_var("PRLC_THREADS"),
        }
        let expected = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(fallback, expected);
    }

    #[test]
    fn base_seed_changes_everything() {
        let a = run_parallel(10, 1, |s| s);
        let b = run_parallel(10, 2, |s| s);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }
}
