//! Plain-text and CSV rendering for experiment output.
//!
//! The benchmark binaries print each of the paper's tables and figure
//! series as aligned text (for eyeballing against the paper) and CSV
//! (for replotting).

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned monospace text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..width[i] {
                    out.push(' ');
                }
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &width, &mut out);
        let rule: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }

    /// Renders as CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["M", "E(X)"]);
        t.push_row(["100", "1.5"]);
        t.push_row(["2000", "3.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("M"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("2000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(1.0, 4), "1.0000");
    }
}
