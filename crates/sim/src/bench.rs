//! The `prlc bench` probe suite: canonical pinned-seed workloads whose
//! envelopes are committed at the repository root as `BENCH_<probe>.json`
//! baselines and re-checked by `prlc bench --check` (the differ lives in
//! [`prlc_obs::baseline`]).
//!
//! Five probes cover the claims the paper makes quantitatively:
//!
//! * `kernel` — GF(2⁸) `axpy` throughput per backend (scalar, table,
//!   and whatever the dispatcher picks). Purely environmental.
//! * `lossy` — the collection sweep over loss × retry budgets
//!   (the trace-determinism CI workload, widened to a 2×2 grid).
//! * `timeline` — the fault-injected, churned, repaired `N = 10^5`
//!   persistence timeline with `O(ln N)` fanout and sparse rows (the
//!   large-n-smoke CI workload).
//! * `adversary` — the targeted cache-killer sweep at `N = 10^4`
//!   (the adversary-smoke CI workload).
//! * `sparse` — per-row coefficient memory vs `ln N` on the encoder
//!   path, with the generator's end state pinned.
//!
//! Every probe resets the global recorders through
//! [`run_probe_and_reset`] — the same helper `prlc sim` uses — so its
//! metrics block reflects only the probe's own deterministic work.
//! Fields that cannot be deterministic never enter an envelope:
//! the event buffer (its retained set depends on thread scheduling once
//! it overflows), span timers (wall-clock), and the
//! `obs.events.dropped` counter are all skipped, and the
//! backend-suffixed `gf.<op>.bytes.<backend>` counters are merged to
//! `gf.<op>.bytes` so envelopes agree across `PRLC_KERNEL` settings.

use std::collections::BTreeMap;

use prlc_core::{Encoder, PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::{kernel, Gf256};
use prlc_net::{AdversaryPlan, AdversaryStrategy, CoeffRep, FaultPlan, RetryPolicy, SourceFanout};
use prlc_obs::baseline::{digest64, BENCH_SCHEMA_VERSION, SCHEMA_VERSION_KEY};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::metadata::{
    measure_symbol_throughput_mb_s, measure_symbol_throughput_mb_s_with, measure_wall_ms,
    run_probe_and_reset,
};
use crate::{
    adversary_results_json, persistence_under_lossy_collection_with_threads,
    simulate_adversary_sweep_with_threads, simulate_persistence_timeline_with_threads,
    timeline_results_json, AdversarySweepConfig, LossyCollectionConfig, TimelineConfig,
};

/// The canonical probe names, in suite order.
pub const BENCH_PROBES: &[&str] = &["kernel", "lossy", "timeline", "adversary", "sparse"];

/// The committed baseline file for a probe: `BENCH_<probe>.json` at the
/// repository root.
pub fn bench_file_name(probe: &str) -> String {
    format!("BENCH_{probe}.json")
}

/// Runs one probe on `threads` workers and returns its envelope as one
/// JSON document (a trailing newline, matching the `--bench-out`
/// writers).
///
/// # Errors
///
/// Returns `Err` for an unknown probe name or a probe-level simulation
/// failure.
pub fn run_bench_probe(probe: &str, threads: usize) -> Result<String, String> {
    match probe {
        "kernel" => Ok(probe_kernel(threads)),
        "lossy" => probe_lossy(threads),
        "timeline" => probe_timeline(threads),
        "adversary" => probe_adversary(threads),
        "sparse" => probe_sparse(threads),
        other => Err(format!(
            "unknown probe {other:?} (want one of {})",
            BENCH_PROBES.join(", ")
        )),
    }
}

// ---------------------------------------------------------------------------
// Envelope assembly
// ---------------------------------------------------------------------------

/// Everything a probe contributes beyond its run metadata.
struct ProbeOutput {
    /// Probe name (the `"probe"` field).
    probe: &'static str,
    /// Probe configuration as a JSON object (deterministic).
    config_json: String,
    /// Deterministic metrics block, when the recorder was enabled.
    metrics_json: Option<String>,
    /// FNV-1a digest of the full trace dump, when tracing was enabled.
    trace_digest: Option<String>,
    /// Result rows as a JSON array (deterministic).
    results_json: String,
    /// Pinned RNG end state, for probes that own their generator.
    rng_end_state: Option<String>,
    /// Elapsed wall-clock of the workload, in milliseconds.
    wall_ms: f64,
}

/// Renders the versioned envelope:
/// `{"bench_schema_version":1,"probe":...,"config":...,"run_metadata":...`
/// `[,"metrics":...][,"trace_digest":...],"results":...`
/// `[,"rng_end_state":...],"wall_ms":...}`.
fn envelope(meta: &crate::RunMetadata, out: &ProbeOutput) -> String {
    let mut s = format!(
        "{{\"{}\":{},\"probe\":\"{}\",\"config\":{},\"run_metadata\":{}",
        SCHEMA_VERSION_KEY,
        BENCH_SCHEMA_VERSION,
        out.probe,
        out.config_json,
        meta.to_json()
    );
    if let Some(m) = &out.metrics_json {
        s.push_str(",\"metrics\":");
        s.push_str(m);
    }
    if let Some(d) = &out.trace_digest {
        s.push_str(&format!(",\"trace_digest\":\"{d}\""));
    }
    s.push_str(",\"results\":");
    s.push_str(&out.results_json);
    if let Some(r) = &out.rng_end_state {
        s.push_str(&format!(",\"rng_end_state\":\"{r}\""));
    }
    if out.wall_ms.is_finite() {
        s.push_str(&format!(",\"wall_ms\":{:.1}}}\n", out.wall_ms));
    } else {
        s.push_str(",\"wall_ms\":null}\n");
    }
    s
}

/// Snapshot of the recorders after a probe, ready for the envelope:
/// `Some((metrics_json, trace_digest))` per enabled recorder.
fn recorder_blocks() -> (Option<String>, Option<String>) {
    let metrics = if prlc_obs::enabled() {
        Some(deterministic_metrics_json(&prlc_obs::snapshot()))
    } else {
        None
    };
    let trace = if prlc_obs::trace::enabled() {
        Some(digest64(&prlc_obs::trace::snapshot().to_json()))
    } else {
        None
    };
    (metrics, trace)
}

/// The metrics block a baseline can hold: counters, histogram bounds and
/// histograms (with their percentile fields) — no events (the bounded
/// buffer's retained set is thread-schedule-dependent once it
/// overflows), no timers (wall-clock), no `obs.events.dropped`. The
/// per-backend `gf.<op>.bytes.<backend>` counters are merged to
/// `gf.<op>.bytes`: the byte volume is recorded at dispatch entry and is
/// identical whichever backend runs, only the key differs. Zero-valued
/// counters and empty histograms are dropped: the global registry keeps
/// names registered by *earlier* probes (reset zeroes values but not
/// names), so including them would make an envelope depend on which
/// probes ran before it in the same process.
fn deterministic_metrics_json(snap: &prlc_obs::Snapshot) -> String {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (name, v) in &snap.counters {
        if *name == "obs.events.dropped" || *v == 0 {
            continue;
        }
        *counters.entry(merge_backend_suffix(name)).or_insert(0) += v;
    }
    let mut s = String::from("{\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{name}\":{v}"));
    }
    s.push_str("},\"histogram_bounds\":[");
    for (i, b) in prlc_obs::BUCKET_BOUNDS.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&b.to_string());
    }
    s.push_str("],\"histograms\":{");
    let mut first = true;
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\"{name}\":{{\"counts\":["));
        for (j, c) in h.counts.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str(&format!("],\"sum\":{},\"count\":{}", h.sum, h.count));
        for (key, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            match h.percentile(q) {
                Some(v) => s.push_str(&format!(",\"{key}\":{v}")),
                None => s.push_str(&format!(",\"{key}\":null")),
            }
        }
        s.push('}');
    }
    s.push_str("}}");
    s
}

/// `gf.<op>.bytes.<backend>` → `gf.<op>.bytes`; anything else unchanged.
fn merge_backend_suffix(name: &str) -> String {
    if name.starts_with("gf.") {
        for suffix in [".scalar", ".table", ".simd"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                return stem.to_string();
            }
        }
    }
    name.to_string()
}

// ---------------------------------------------------------------------------
// The probes
// ---------------------------------------------------------------------------

/// The pinned `[2,3,5]` PLC code every simulation probe runs on. The
/// level sizes are compile-time constants, so the only way this errs is
/// a future regression in `PriorityProfile::new` — propagated, per the
/// workspace panic-hygiene rule, rather than asserted.
fn plc_profile() -> Result<(PriorityProfile, PriorityDistribution), String> {
    let profile =
        PriorityProfile::new(vec![2, 3, 5]).map_err(|e| format!("pinned [2,3,5] profile: {e}"))?;
    let distribution = PriorityDistribution::uniform(profile.num_levels());
    Ok((profile, distribution))
}

/// GF(2⁸) `axpy` throughput on 64 KiB slices: one row per fixed backend
/// plus a `dispatched` row labelled with what the dispatcher picked.
/// Entirely environmental — no metrics/trace blocks (the iteration
/// counts are wall-clock-bounded and could never match a baseline).
fn probe_kernel(threads: usize) -> String {
    let mut meta = run_probe_and_reset(threads);
    let (rows, wall_ms) = measure_wall_ms(|| {
        let mut rows = Vec::new();
        for backend in [kernel::Backend::Scalar, kernel::Backend::Table] {
            let mb_s = measure_symbol_throughput_mb_s_with(backend);
            rows.push(format!(
                "{{\"backend\":\"{}\",\"mb_s\":{}}}",
                backend.name(),
                fmt_mb_s(mb_s)
            ));
        }
        rows.push(format!(
            "{{\"backend\":\"dispatched\",\"description\":\"{}\",\"mb_s\":{}}}",
            kernel::active_backend_description(),
            fmt_mb_s(measure_symbol_throughput_mb_s())
        ));
        rows
    });
    // The probe's own kernel loops polluted the recorders; clear them so
    // a stale state never leaks into a later probe even if the suite
    // order changes.
    let _ = run_probe_and_reset(threads);
    meta.aggregate_obs_timing();
    envelope(
        &meta,
        &ProbeOutput {
            probe: "kernel",
            config_json: "{\"slice_len\":65536,\"budget_ms\":20}".to_string(),
            metrics_json: None,
            trace_digest: None,
            results_json: format!("[{}]", rows.join(",")),
            rng_end_state: None,
            wall_ms,
        },
    )
}

/// Non-finite throughput measurements become `null`, mirroring
/// `RunMetadata::to_json` (the differ treats a lost measurement against
/// a numeric baseline as out-of-band).
fn fmt_mb_s(mb_s: f64) -> String {
    if mb_s.is_finite() {
        format!("{mb_s:.1}")
    } else {
        "null".to_string()
    }
}

/// The lossy-collection sweep: the trace-determinism CI workload
/// (`--scheme plc --loss 0.3 --retries 2 --runs 40 --seed 7`) widened to
/// a loss × retry grid.
fn probe_lossy(threads: usize) -> Result<String, String> {
    let (profile, distribution) = plc_profile()?;
    let cfg = LossyCollectionConfig {
        scheme: Scheme::Plc,
        profile,
        distribution,
        nodes: 80,
        locations: 40,
        node_failure: 0.3,
        backoff_hops: 1,
        runs: 40,
        seed: 7,
    };
    let losses = [0.0, 0.3];
    let retries = [0usize, 2];
    let mut meta = run_probe_and_reset(threads);
    let (sweep, wall_ms) = measure_wall_ms(|| {
        persistence_under_lossy_collection_with_threads::<Gf256>(&cfg, &losses, &retries, threads)
    });
    let sweep = sweep.map_err(|e| format!("lossy probe: {e}"))?;
    let (metrics_json, trace_digest) = recorder_blocks();
    meta.aggregate_obs_timing();
    Ok(envelope(
        &meta,
        &ProbeOutput {
            probe: "lossy",
            config_json: "{\"scheme\":\"plc\",\"levels\":[2,3,5],\"nodes\":80,\
                          \"locations\":40,\"node_failure\":0.3,\"backoff_hops\":1,\
                          \"runs\":40,\"seed\":7,\"losses\":[0.0,0.3],\"retry_budgets\":[0,2]}"
                .to_string(),
            metrics_json,
            trace_digest,
            results_json: sweep.results_json(),
            rng_end_state: None,
            wall_ms,
        },
    ))
}

/// The `N = 10^5` persistence timeline with `O(ln N)` fanout and sparse
/// coefficient rows — the large-n-smoke CI workload.
fn probe_timeline(threads: usize) -> Result<String, String> {
    let (profile, distribution) = plc_profile()?;
    let cfg = TimelineConfig {
        scheme: Scheme::Plc,
        profile,
        distribution,
        nodes: 100_000,
        locations: 80,
        churn_per_epoch: 0.15,
        epochs: 8,
        repair_donors: Some(3),
        faults: FaultPlan::lossy(0.1, RetryPolicy::with_retries(2, 1), 42),
        fanout: SourceFanout::Log { factor: 2.0 },
        coeff_rep: CoeffRep::Sparse,
        runs: 20,
        seed: 42,
    };
    let mut meta = run_probe_and_reset(threads);
    let (summaries, wall_ms) =
        measure_wall_ms(|| simulate_persistence_timeline_with_threads::<Gf256>(&cfg, threads));
    let summaries = summaries.map_err(|e| format!("timeline probe: {e}"))?;
    let (metrics_json, trace_digest) = recorder_blocks();
    meta.aggregate_obs_timing();
    Ok(envelope(
        &meta,
        &ProbeOutput {
            probe: "timeline",
            config_json: "{\"scheme\":\"plc\",\"levels\":[2,3,5],\"nodes\":100000,\
                          \"locations\":80,\"churn_per_epoch\":0.15,\"epochs\":8,\
                          \"repair_donors\":3,\"loss\":0.1,\"retry_budget\":2,\
                          \"fanout\":\"log:2\",\"coeff_rep\":\"sparse\",\
                          \"runs\":20,\"seed\":42}"
                .to_string(),
            metrics_json,
            trace_digest,
            results_json: timeline_results_json(&summaries),
            rng_end_state: None,
            wall_ms,
        },
    ))
}

/// The targeted cache-killer sweep at `N = 10^4` — the adversary-smoke
/// CI workload.
fn probe_adversary(threads: usize) -> Result<String, String> {
    let (profile, distribution) = plc_profile()?;
    let cfg = AdversarySweepConfig {
        scheme: Scheme::Plc,
        profile,
        distribution,
        nodes: 10_000,
        locations: 200,
        adversary: AdversaryPlan {
            strategy: AdversaryStrategy::Targeted {
                kills: 192,
                focus: 1.0,
            },
            after_messages: 0,
            seed: 42,
        },
        epochs: 2,
        churn_per_epoch: 0.0,
        repair_donors: None,
        faults: FaultPlan::none(),
        fanout: SourceFanout::All,
        coeff_rep: CoeffRep::Dense,
        runs: 10,
        seed: 42,
    };
    let mut meta = run_probe_and_reset(threads);
    let (epochs, wall_ms) =
        measure_wall_ms(|| simulate_adversary_sweep_with_threads::<Gf256>(&cfg, threads));
    let (metrics_json, trace_digest) = recorder_blocks();
    meta.aggregate_obs_timing();
    Ok(envelope(
        &meta,
        &ProbeOutput {
            probe: "adversary",
            config_json: "{\"scheme\":\"plc\",\"levels\":[2,3,5],\"nodes\":10000,\
                          \"locations\":200,\"adversary\":\"targeted\",\"kills\":192,\
                          \"focus\":1.0,\"epochs\":2,\"churn_per_epoch\":0.0,\
                          \"runs\":10,\"seed\":42}"
                .to_string(),
            metrics_json,
            trace_digest,
            results_json: adversary_results_json(&epochs),
            rng_end_state: None,
            wall_ms,
        },
    ))
}

/// Per-row coefficient memory on the encoder path at
/// `N ∈ {10^3, 10^4, 10^5}`, dense vs sparse rows: integer nonzero and
/// byte totals over 50 rows each, the `bytes / ln N` ratio the paper's
/// `O(ln N)` claim rests on, and the shared generator's end state.
fn probe_sparse(threads: usize) -> Result<String, String> {
    const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
    const ROWS: usize = 50;
    const FACTOR: f64 = 2.0;
    const SEED: u64 = 0xC0DE;
    let mut meta = run_probe_and_reset(threads);
    let work = || -> Result<(String, String), String> {
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut rows = Vec::new();
        for n in SIZES {
            let profile =
                PriorityProfile::flat(n).map_err(|e| format!("sparse probe N={n}: {e}"))?;
            for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
                let enc = Encoder::sparse(Scheme::Rlc, profile.clone(), FACTOR).with_coeff_rep(rep);
                let mut nnz_total = 0usize;
                let mut bytes_total = 0usize;
                for _ in 0..ROWS {
                    let row = enc.encode_coefficients::<Gf256, _>(0, &mut rng);
                    nnz_total += row.nnz();
                    bytes_total += row.storage_bytes();
                }
                let ln_n = (n as f64).ln();
                rows.push(format!(
                    "{{\"n\":{n},\"rep\":\"{}\",\"rows\":{ROWS},\
                     \"nnz_total\":{nnz_total},\"bytes_total\":{bytes_total},\
                     \"bytes_per_row\":{:.2},\"bytes_per_row_per_ln_n\":{:.4}}}",
                    match rep {
                        CoeffRep::Dense => "dense",
                        CoeffRep::Sparse => "sparse",
                    },
                    bytes_total as f64 / ROWS as f64,
                    bytes_total as f64 / ROWS as f64 / ln_n,
                ));
            }
        }
        let end_state = format!("{:#018x}", rng.next_u64());
        Ok((format!("[{}]", rows.join(",")), end_state))
    };
    let (out, wall_ms) = measure_wall_ms(work);
    let (results_json, rng_end_state) = out?;
    let (metrics_json, trace_digest) = recorder_blocks();
    meta.aggregate_obs_timing();
    Ok(envelope(
        &meta,
        &ProbeOutput {
            probe: "sparse",
            config_json: format!(
                "{{\"sizes\":[1000,10000,100000],\"rows_per_cell\":{ROWS},\
                 \"factor\":{FACTOR},\"scheme\":\"rlc\",\"seed\":{SEED}}}"
            ),
            metrics_json,
            trace_digest,
            results_json,
            rng_end_state: Some(rng_end_state),
            wall_ms,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_obs::baseline::{diff_envelopes, parse_json, Json, Tolerances};

    #[test]
    fn file_names_and_probe_list() {
        assert_eq!(bench_file_name("kernel"), "BENCH_kernel.json");
        assert_eq!(BENCH_PROBES.len(), 5);
        assert!(run_bench_probe("nope", 1).is_err());
    }

    #[test]
    fn merge_backend_suffix_only_rewrites_gf_byte_counters() {
        assert_eq!(merge_backend_suffix("gf.axpy.bytes.simd"), "gf.axpy.bytes");
        assert_eq!(
            merge_backend_suffix("gf.scale.bytes.scalar"),
            "gf.scale.bytes"
        );
        assert_eq!(
            merge_backend_suffix("net.messages.sent"),
            "net.messages.sent"
        );
        assert_eq!(merge_backend_suffix("gf.axpy.bytes"), "gf.axpy.bytes");
    }

    #[test]
    fn metrics_block_drops_zero_entries_and_merges_backends() {
        let empty = prlc_obs::HistogramSnapshot {
            counts: vec![0; 15],
            sum: 0,
            count: 0,
        };
        let mut full = empty.clone();
        full.counts[0] = 2;
        full.sum = 2;
        full.count = 2;
        let snap = prlc_obs::Snapshot {
            counters: vec![
                ("gf.axpy.bytes.scalar", 0),
                ("gf.axpy.bytes.simd", 7),
                ("net.stale", 0),
                ("net.used", 3),
                ("obs.events.dropped", 5),
            ],
            histograms: vec![("h.stale", empty), ("h.used", full)],
            timers: vec![],
            events: vec![],
            events_dropped: 5,
        };
        let json = deterministic_metrics_json(&snap);
        // Zero-valued counters and empty histograms are registry
        // residue from earlier probes in the same process — their
        // presence must not depend on suite order or --probe subsets.
        assert!(!json.contains("stale"), "{json}");
        assert!(!json.contains("obs.events.dropped"), "{json}");
        assert!(json.contains("\"gf.axpy.bytes\":7"), "{json}");
        assert!(json.contains("\"net.used\":3"), "{json}");
        assert!(
            json.contains("\"h.used\":{\"counts\":[2,") && json.contains("\"p50\":1"),
            "{json}"
        );
    }

    #[test]
    fn kernel_probe_envelope_is_versioned_and_self_checks() {
        let env = run_bench_probe("kernel", 1).expect("kernel probe");
        let doc = parse_json(&env).expect("envelope parses");
        assert_eq!(
            doc.get("bench_schema_version").and_then(|v| match v {
                Json::Num(n) => Some(n.value),
                _ => None,
            }),
            Some(1.0)
        );
        assert_eq!(doc.get("probe"), Some(&Json::Str("kernel".to_string())));
        // Self-diff is clean: deterministic fields match byte-for-byte,
        // environmental fields sit at zero delta.
        let report = diff_envelopes("kernel", &env, &env, &Tolerances::default()).expect("diff");
        assert!(report.clean(), "{:?}", report.findings);
    }

    #[test]
    fn sparse_probe_is_deterministic_and_tracks_ln_n() {
        let a = run_bench_probe("sparse", 1).expect("sparse probe");
        let b = run_bench_probe("sparse", 4).expect("sparse probe");
        let report = diff_envelopes("sparse", &a, &b, &Tolerances::default()).expect("diff");
        assert!(
            report.clean(),
            "sparse probe differs across thread counts: {:?}",
            report.findings
        );
        let doc = parse_json(&a).expect("parse");
        assert!(doc.get("rng_end_state").is_some());
        // Dense rows pay O(N) bytes; sparse rows pay O(ln N). At
        // N = 10^5 the gap must be enormous.
        let results = match doc.get("results") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("bad results: {other:?}"),
        };
        let bytes = |rep: &str| -> f64 {
            results
                .iter()
                .find(|r| {
                    r.get("n")
                        .is_some_and(|n| matches!(n, Json::Num(v) if v.value == 1e5))
                        && r.get("rep") == Some(&Json::Str(rep.to_string()))
                })
                .and_then(|r| r.get("bytes_per_row"))
                .and_then(|v| match v {
                    Json::Num(n) => Some(n.value),
                    _ => None,
                })
                .expect("row present")
        };
        assert!(bytes("dense") > 50.0 * bytes("sparse"));
    }

    #[test]
    fn lossy_probe_is_thread_count_invariant() {
        let a = run_bench_probe("lossy", 1).expect("lossy probe");
        let b = run_bench_probe("lossy", 2).expect("lossy probe");
        let report = diff_envelopes("lossy", &a, &b, &Tolerances::default()).expect("diff");
        assert!(
            report.clean(),
            "lossy probe differs across thread counts: {:?}",
            report.findings
        );
    }
}
