//! Decoding-curve degradation under structured adversaries — the A10
//! ablation family.
//!
//! Every other experiment stresses the codes with iid loss and iid
//! churn. This sweep mounts one of the four [`AdversaryStrategy`]
//! attacks on a deployed overlay and measures, epoch by epoch, how many
//! priority levels a collector still decodes *through the faulted
//! transport* (not omniscient: an eclipsed or crashed cache really is
//! out of reach). Optional background churn plus repair run alongside,
//! so strategies that evade repair — slow compromise keeps its victims
//! alive in the overlay, where the repair pass cannot see them and
//! keeps placing fresh blocks onto them — show their differentiated
//! damage.

use prlc_core::{
    CoeffRep, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme,
    SlcDecoder,
};
use prlc_gf::GfElem;
use prlc_net::{
    collect_with_faults, observe_deployment, predistribute_with_faults, Adversary, AdversaryPlan,
    CollectionConfig, Deployment, FaultPlan, FaultSession, Network, NodeId, ProtocolConfig,
    RefreshConfig, RingNetwork, SourceFanout,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::runner::{default_threads, run_parallel_with_threads, splitmix64};
use crate::stats::{summarize_trajectories, Summary};

/// Configuration of an adversary sweep.
#[derive(Debug, Clone)]
pub struct AdversarySweepConfig {
    /// Coding scheme.
    pub scheme: Scheme,
    /// Level sizes.
    pub profile: PriorityProfile,
    /// Priority distribution for the location parts.
    pub distribution: PriorityDistribution,
    /// Overlay size (ring nodes).
    pub nodes: usize,
    /// Storage locations `M`.
    pub locations: usize,
    /// The attack to mount. Each run re-seeds a copy of this plan
    /// (domain-separated by run seed), mirroring the fault plan.
    pub adversary: AdversaryPlan,
    /// Epochs to simulate after the attack is armed. Crash strikes fire
    /// at the first attempt boundary of epoch 1; creep corrupts more
    /// nodes every epoch.
    pub epochs: usize,
    /// Background per-epoch overlay churn (`0.0` isolates the
    /// adversary's own damage). Unlike adversary strikes, overlay churn
    /// is *visible* to the repair pass.
    pub churn_per_epoch: f64,
    /// Donors per repaired slot; `None` disables repair.
    pub repair_donors: Option<usize>,
    /// Fault plan for the protocol sessions (lossy links, retries).
    pub faults: FaultPlan,
    /// Source fanout of the predistribution phase.
    pub fanout: SourceFanout,
    /// Coefficient-row storage for the cached blocks.
    pub coeff_rep: CoeffRep,
    /// Independent runs.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

/// Decoding state after one epoch, aggregated over the runs.
#[derive(Debug, Clone)]
pub struct AdversaryEpoch {
    /// Epoch index (`0` is after predistribution, before the attack).
    pub epoch: usize,
    /// Priority levels the collector decoded through the faulted
    /// transport.
    pub decoded_levels: Summary,
    /// Per-level survival frequency: entry `k` is the fraction of runs
    /// in which level `k + 1` was decodable this epoch.
    pub level_survival: Vec<f64>,
}

/// Runs the adversary sweep on the runner's default worker count. See
/// [`simulate_adversary_sweep_with_threads`].
pub fn simulate_adversary_sweep<F: GfElem>(cfg: &AdversarySweepConfig) -> Vec<AdversaryEpoch> {
    simulate_adversary_sweep_with_threads::<F>(cfg, default_threads())
}

/// [`simulate_adversary_sweep`] with an explicit worker count. Results
/// are bit-identical across `threads` (each run is seeded by index).
///
/// Per run: predistribute on a fresh ring through a shared fault
/// session, measure the epoch-0 baseline by collecting from a random
/// collector, arm the adversary (topology strategies against the ring
/// and collector, the adaptive strategy against slot observations),
/// then per epoch: advance creep, fire due strikes, apply background
/// churn, optionally repair, and collect again with a fresh decoder.
/// A run in which the adversary takes the collector itself down scores
/// zero decoded levels — killing the collector is legitimate success.
pub fn simulate_adversary_sweep_with_threads<F: GfElem>(
    cfg: &AdversarySweepConfig,
    threads: usize,
) -> Vec<AdversaryEpoch> {
    let levels = cfg.profile.num_levels();
    let fields = 1 + levels;
    let trajectories =
        run_parallel_with_threads(cfg.runs, cfg.seed, threads, |seed| one_run::<F>(cfg, seed));
    let summaries = summarize_trajectories(&trajectories);
    (0..=cfg.epochs)
        .map(|epoch| {
            let base = epoch * fields;
            AdversaryEpoch {
                epoch,
                decoded_levels: summaries[base],
                level_survival: (0..levels).map(|k| summaries[base + 1 + k].mean).collect(),
            }
        })
        .collect()
}

fn one_run<F: GfElem>(cfg: &AdversarySweepConfig, seed: u64) -> Vec<f64> {
    let levels = cfg.profile.num_levels();
    let fields = 1 + levels;
    let mut out = Vec::with_capacity((cfg.epochs + 1) * fields);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RingNetwork::new(cfg.nodes, &mut rng);
    let sources: Vec<Vec<F>> = vec![Vec::new(); cfg.profile.total_blocks()];

    // One fault session per run, on one message-step clock; the fault
    // and adversary plans are both re-seeded per run (domain-separated
    // from the run seed) so realisations differ across runs but stay
    // pinned to the base seed.
    let mut plan = cfg.faults.clone();
    plan.seed = splitmix64(seed ^ plan.seed);
    let mut session = plan.session(cfg.nodes);
    let mut adv_plan = cfg.adversary;
    adv_plan.seed = splitmix64(seed ^ adv_plan.seed);

    let protocol = ProtocolConfig {
        scheme: cfg.scheme,
        profile: cfg.profile.clone(),
        distribution: cfg.distribution.clone(),
        locations: cfg.locations,
        fanout: cfg.fanout,
        coeff_rep: cfg.coeff_rep,
        two_choices: true,
        node_capacity: None,
        shared_seed: seed,
    };
    let Ok(mut dep) = predistribute_with_faults(&net, &protocol, &sources, &mut session, &mut rng)
    else {
        out.resize((cfg.epochs + 1) * fields, 0.0);
        return out;
    };
    let Some(collector) = net.random_alive_node(&mut rng) else {
        out.resize((cfg.epochs + 1) * fields, 0.0);
        return out;
    };

    push_measurement::<F>(cfg, &net, &dep, collector, &mut session, &mut rng, &mut out);

    let mut adversary = Adversary::new(adv_plan, cfg.nodes);
    adversary.arm_topology(&net, collector, &mut session);
    adversary.arm_observed(&observe_deployment(&dep), &mut session);

    for _epoch in 1..=cfg.epochs {
        adversary.advance_epoch(&mut session);
        // Fire strikes already due at this boundary even if repair is
        // disabled and no message would otherwise cross it.
        session.advance_steps(0);
        if cfg.churn_per_epoch > 0.0 {
            net.fail_uniform(cfg.churn_per_epoch, &mut rng);
        }
        if net.alive_count() == 0 {
            out.extend(std::iter::repeat_n(0.0, fields));
            continue;
        }
        if let Some(donors) = cfg.repair_donors {
            prlc_net::refresh_with_faults(
                &net,
                &mut dep,
                &RefreshConfig {
                    scheme: cfg.scheme,
                    donors_per_slot: donors,
                },
                &mut session,
                &mut rng,
            );
        }
        push_measurement::<F>(cfg, &net, &dep, collector, &mut session, &mut rng, &mut out);
    }
    out
}

/// Collects from `collector` through the faulted transport with a fresh
/// coefficients-only decoder and appends `[levels, survive_1..L]` to
/// `out`. A dead or unreachable collector scores zero.
fn push_measurement<F: GfElem>(
    cfg: &AdversarySweepConfig,
    net: &RingNetwork,
    dep: &Deployment<F>,
    collector: NodeId,
    session: &mut FaultSession,
    rng: &mut (impl Rng + ?Sized),
    out: &mut Vec<f64>,
) {
    let levels = cfg.profile.num_levels();
    let ccfg = CollectionConfig::default();
    let decoded = match cfg.scheme {
        Scheme::Slc => {
            let mut dec: SlcDecoder<F, ()> = SlcDecoder::coefficients_only(cfg.profile.clone());
            collect_with_faults(net, dep, &mut dec, collector, &ccfg, session, rng)
                .map(|_| dec.decoded_levels())
        }
        _ => {
            let mut dec: PlcDecoder<F, ()> = PlcDecoder::coefficients_only(cfg.profile.clone());
            collect_with_faults(net, dep, &mut dec, collector, &ccfg, session, rng)
                .map(|_| dec.decoded_levels())
        }
    };
    let decoded = decoded.unwrap_or(0);
    out.push(decoded as f64);
    for k in 1..=levels {
        out.push(if decoded >= k { 1.0 } else { 0.0 });
    }
}

/// Renders per-epoch results as a JSON array (the `results` payload of
/// a `BENCH_adversary.json` envelope).
pub fn adversary_results_json(epochs: &[AdversaryEpoch]) -> String {
    let rows: Vec<String> = epochs
        .iter()
        .map(|e| {
            let survival: Vec<String> =
                e.level_survival.iter().map(|s| format!("{s:.6}")).collect();
            format!(
                "{{\"epoch\":{},\"levels_mean\":{:.6},\"levels_ci95\":{:.6},\"survival\":[{}]}}",
                e.epoch,
                e.decoded_levels.mean,
                e.decoded_levels.ci95,
                survival.join(",")
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use prlc_net::AdversaryStrategy;

    fn base(strategy: AdversaryStrategy) -> AdversarySweepConfig {
        AdversarySweepConfig {
            scheme: Scheme::Plc,
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            nodes: 60,
            locations: 30,
            adversary: AdversaryPlan {
                strategy,
                after_messages: 0,
                seed: 3,
            },
            epochs: 3,
            churn_per_epoch: 0.0,
            repair_donors: None,
            faults: FaultPlan::none(),
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            runs: 8,
            seed: 17,
        }
    }

    #[test]
    fn targeted_adversary_degrades_decoding() {
        let benign = base(AdversaryStrategy::Targeted {
            kills: 0,
            focus: 1.0,
        });
        let attack = base(AdversaryStrategy::Targeted {
            kills: 20,
            focus: 1.0,
        });
        let b = simulate_adversary_sweep::<Gf256>(&benign);
        let a = simulate_adversary_sweep::<Gf256>(&attack);
        assert_eq!(a.len(), 4);
        // Same seeds: identical baseline, strictly worse under attack.
        assert_eq!(b[0].decoded_levels.mean, a[0].decoded_levels.mean);
        assert!(
            a[3].decoded_levels.mean < b[3].decoded_levels.mean,
            "attack {} vs benign {}",
            a[3].decoded_levels.mean,
            b[3].decoded_levels.mean
        );
        // Survival frequencies are monotone non-increasing in the level
        // index within every epoch.
        for e in &a {
            for k in 1..e.level_survival.len() {
                assert!(e.level_survival[k] <= e.level_survival[k - 1] + 1e-12);
            }
        }
    }

    #[test]
    fn eclipse_suppresses_collection_but_not_storage() {
        let cfg = base(AdversaryStrategy::Eclipse { loss: 1.0 });
        let out = simulate_adversary_sweep::<Gf256>(&cfg);
        // Baseline (pre-arm) decodes fine; post-arm the collector is cut
        // off from every cache but itself.
        assert!(
            out[0].decoded_levels.mean > 2.5,
            "{}",
            out[0].decoded_levels.mean
        );
        assert!(
            out[1].decoded_levels.mean < 1.0,
            "{}",
            out[1].decoded_levels.mean
        );
    }

    #[test]
    fn deterministic_across_threads() {
        let cfg = base(AdversaryStrategy::Region {
            fraction: 0.1,
            segment_len: 3,
        });
        let a = simulate_adversary_sweep_with_threads::<Gf256>(&cfg, 1);
        let b = simulate_adversary_sweep_with_threads::<Gf256>(&cfg, 4);
        assert_eq!(adversary_results_json(&a), adversary_results_json(&b));
    }
}
