//! In-memory decoding experiments — the simulation methodology of
//! Sec. 5: "we randomly generate a set of coded blocks according to the
//! priority distribution and the encoding algorithms, and use the
//! partial decoding algorithms to recover the maximal number of source
//! blocks from the coded blocks."
//!
//! One simulated run feeds a stream of randomly generated blocks to a
//! progressive decoder and records the decoded-level count after *every*
//! block — because the stream is i.i.d., the prefix of length `M` is
//! exactly "M randomly accumulated coded blocks", so a single pass
//! yields the entire decoding curve. Runs are averaged with 95%
//! confidence intervals ([`crate::stats`]).

use prlc_core::baseline::{GrowthDecoder, GrowthEncoder, ReplicationDecoder, ReplicationEncoder};
use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
};
use prlc_gf::GfElem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::runner::{default_threads, run_parallel_with_threads};
use crate::stats::{summarize_trajectories, Summary};

/// Which persistence scheme an experiment exercises: one of the paper's
/// codes, or a baseline from its related-work comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Persistence {
    /// RLC / SLC / PLC.
    Coding(Scheme),
    /// Priority-aware replication (no coding).
    Replication,
    /// Growth Codes (priority-blind XOR codes with a degree schedule).
    Growth,
}

impl std::fmt::Display for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Persistence::Coding(s) => write!(f, "{s}"),
            Persistence::Replication => write!(f, "Replication"),
            Persistence::Growth => write!(f, "GrowthCodes"),
        }
    }
}

/// Configuration of a decoding-curve experiment.
#[derive(Debug, Clone)]
pub struct CurveConfig {
    /// Scheme under test.
    pub persistence: Persistence,
    /// Level sizes.
    pub profile: PriorityProfile,
    /// Priority distribution for generating coded blocks (ignored by
    /// Growth Codes, which are priority-blind).
    pub distribution: PriorityDistribution,
    /// Maximum number of coded blocks to process per run.
    pub max_blocks: usize,
    /// Number of independent runs (the paper uses 100).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

/// A simulated decoding curve: `summaries[m]` is the decoded-level
/// statistic after `m` processed blocks (`summaries[0]` is always 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecodingCurve {
    /// Per-block-count summaries, indexed by number of processed blocks.
    pub summaries: Vec<Summary>,
}

impl DecodingCurve {
    /// Summaries at selected block counts.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `ms` exceeds the simulated maximum.
    pub fn at(&self, ms: &[usize]) -> Vec<Summary> {
        ms.iter().map(|&m| self.summaries[m]).collect()
    }

    /// The largest simulated block count.
    pub fn max_blocks(&self) -> usize {
        self.summaries.len() - 1
    }
}

/// Runs the decoding-curve experiment over field `F` with the runner's
/// default worker count.
pub fn simulate_decoding_curve<F: GfElem>(cfg: &CurveConfig) -> DecodingCurve {
    simulate_decoding_curve_with_threads::<F>(cfg, default_threads())
}

/// [`simulate_decoding_curve`] with an explicit worker-thread count.
/// Results are independent of `threads`.
pub fn simulate_decoding_curve_with_threads<F: GfElem>(
    cfg: &CurveConfig,
    threads: usize,
) -> DecodingCurve {
    let trajectories = run_parallel_with_threads(cfg.runs, cfg.seed, threads, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        one_trajectory::<F>(cfg, &mut rng)
    });
    DecodingCurve {
        summaries: summarize_trajectories(&trajectories),
    }
}

/// One run: decoded levels after each of `0..=max_blocks` blocks.
fn one_trajectory<F: GfElem>(cfg: &CurveConfig, rng: &mut StdRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(cfg.max_blocks + 1);
    out.push(0.0);
    match cfg.persistence {
        Persistence::Coding(Scheme::Slc) => {
            let enc = Encoder::new(Scheme::Slc, cfg.profile.clone());
            let mut dec: SlcDecoder<F, ()> = SlcDecoder::coefficients_only(cfg.profile.clone());
            for _ in 0..cfg.max_blocks {
                let level = cfg.distribution.sample_level(rng);
                dec.insert_block(&enc.encode_unpayloaded::<F, _>(level, rng));
                out.push(dec.decoded_levels() as f64);
            }
        }
        Persistence::Coding(scheme) => {
            let enc = Encoder::new(scheme, cfg.profile.clone());
            let mut dec: PlcDecoder<F, ()> = PlcDecoder::coefficients_only(cfg.profile.clone());
            for _ in 0..cfg.max_blocks {
                let level = cfg.distribution.sample_level(rng);
                dec.insert_block(&enc.encode_unpayloaded::<F, _>(level, rng));
                out.push(dec.decoded_levels() as f64);
            }
        }
        Persistence::Replication => {
            let n = cfg.profile.total_blocks();
            let sources: Vec<Vec<F>> = vec![Vec::new(); n];
            let enc = ReplicationEncoder::new(cfg.profile.clone());
            let mut dec: ReplicationDecoder<F> = ReplicationDecoder::new(cfg.profile.clone());
            for _ in 0..cfg.max_blocks {
                let r = enc.encode_random_level(&cfg.distribution, &sources, rng);
                dec.insert(&r);
                out.push(dec.decoded_levels() as f64);
            }
        }
        Persistence::Growth => {
            let n = cfg.profile.total_blocks();
            let sources: Vec<Vec<F>> = vec![Vec::new(); n];
            let enc = GrowthEncoder::new(n);
            let mut dec: GrowthDecoder<F> = GrowthDecoder::new(n);
            for _ in 0..cfg.max_blocks {
                let cw = enc.encode(dec.decoded_blocks(), &sources, rng);
                dec.insert(&cw);
                out.push(growth_levels(&cfg.profile, &dec) as f64);
            }
        }
    }
    out
}

/// Strict-priority decoded-level count for a Growth-Codes decoder:
/// consecutive levels whose blocks are all recovered.
pub fn growth_levels<F: GfElem>(profile: &PriorityProfile, dec: &GrowthDecoder<F>) -> usize {
    (0..profile.num_levels())
        .take_while(|&l| profile.blocks_of(l).all(|i| dec.is_decoded(i)))
        .count()
}

/// Configuration of a survivability sweep: blocks are stored, a fraction
/// is destroyed by node failure, and the survivors are decoded — the
/// paper's motivating scenario ("data in the first k levels can survive
/// more severe node failures the smaller M_i is").
#[derive(Debug, Clone)]
pub struct SurvivabilityConfig {
    /// Scheme under test.
    pub persistence: Persistence,
    /// Level sizes.
    pub profile: PriorityProfile,
    /// Priority distribution used when storing.
    pub distribution: PriorityDistribution,
    /// Blocks stored in the network before the failure event.
    pub stored_blocks: usize,
    /// Number of independent runs.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

/// Mean decoded levels (with CI) after destroying each failure fraction,
/// using the runner's default worker count.
pub fn simulate_survivability<F: GfElem>(
    cfg: &SurvivabilityConfig,
    loss_fractions: &[f64],
) -> Vec<Summary> {
    simulate_survivability_with_threads::<F>(cfg, loss_fractions, default_threads())
}

/// [`simulate_survivability`] with an explicit worker-thread count.
/// Results are independent of `threads`.
pub fn simulate_survivability_with_threads<F: GfElem>(
    cfg: &SurvivabilityConfig,
    loss_fractions: &[f64],
    threads: usize,
) -> Vec<Summary> {
    let fractions = loss_fractions.to_vec();
    let trajectories = run_parallel_with_threads(cfg.runs, cfg.seed, threads, move |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        fractions
            .iter()
            .map(|&f| one_survival::<F>(cfg, f, &mut rng) as f64)
            .collect::<Vec<f64>>()
    });
    summarize_trajectories(&trajectories)
}

fn one_survival<F: GfElem>(cfg: &SurvivabilityConfig, loss: f64, rng: &mut StdRng) -> usize {
    let keep = |rng: &mut StdRng| !rng.gen_bool(loss);
    match cfg.persistence {
        Persistence::Coding(Scheme::Slc) => {
            let enc = Encoder::new(Scheme::Slc, cfg.profile.clone());
            let mut dec: SlcDecoder<F, ()> = SlcDecoder::coefficients_only(cfg.profile.clone());
            for _ in 0..cfg.stored_blocks {
                let level = cfg.distribution.sample_level(rng);
                let b = enc.encode_unpayloaded::<F, _>(level, rng);
                if keep(rng) {
                    dec.insert_block(&b);
                }
            }
            dec.decoded_levels()
        }
        Persistence::Coding(scheme) => {
            let enc = Encoder::new(scheme, cfg.profile.clone());
            let mut dec: PlcDecoder<F, ()> = PlcDecoder::coefficients_only(cfg.profile.clone());
            for _ in 0..cfg.stored_blocks {
                let level = cfg.distribution.sample_level(rng);
                let b = enc.encode_unpayloaded::<F, _>(level, rng);
                if keep(rng) {
                    dec.insert_block(&b);
                }
            }
            dec.decoded_levels()
        }
        Persistence::Replication => {
            let n = cfg.profile.total_blocks();
            let sources: Vec<Vec<F>> = vec![Vec::new(); n];
            let enc = ReplicationEncoder::new(cfg.profile.clone());
            let mut dec: ReplicationDecoder<F> = ReplicationDecoder::new(cfg.profile.clone());
            for _ in 0..cfg.stored_blocks {
                let r = enc.encode_random_level(&cfg.distribution, &sources, rng);
                if keep(rng) {
                    dec.insert(&r);
                }
            }
            dec.decoded_levels()
        }
        Persistence::Growth => {
            // Codewords are generated against an idealised progress
            // estimate (the shadow decoder sees every stored block), then
            // thinned by the failure — the most favourable reading of the
            // Growth-Codes degree schedule.
            let n = cfg.profile.total_blocks();
            let sources: Vec<Vec<F>> = vec![Vec::new(); n];
            let enc = GrowthEncoder::new(n);
            let mut shadow: GrowthDecoder<F> = GrowthDecoder::new(n);
            let mut dec: GrowthDecoder<F> = GrowthDecoder::new(n);
            for _ in 0..cfg.stored_blocks {
                let cw = enc.encode(shadow.decoded_blocks(), &sources, rng);
                shadow.insert(&cw);
                if keep(rng) {
                    dec.insert(&cw);
                }
            }
            growth_levels(&cfg.profile, &dec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    fn base_cfg(p: Persistence) -> CurveConfig {
        CurveConfig {
            persistence: p,
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            max_blocks: 30,
            runs: 10,
            seed: 1,
        }
    }

    #[test]
    fn curves_are_monotone_and_bounded() {
        for p in [
            Persistence::Coding(Scheme::Rlc),
            Persistence::Coding(Scheme::Slc),
            Persistence::Coding(Scheme::Plc),
            Persistence::Replication,
            Persistence::Growth,
        ] {
            let curve = simulate_decoding_curve::<Gf256>(&base_cfg(p));
            assert_eq!(curve.summaries.len(), 31);
            assert_eq!(curve.summaries[0].mean, 0.0);
            for w in curve.summaries.windows(2) {
                assert!(w[1].mean + 1e-12 >= w[0].mean, "{p}: not monotone");
            }
            assert!(curve.summaries.iter().all(|s| s.mean <= 3.0));
            assert_eq!(curve.max_blocks(), 30);
        }
    }

    #[test]
    fn plc_curve_dominates_slc_and_rlc() {
        // Domination holds in expectation (Theorem 1 of the technical
        // report); with finite runs allow sampling noise pointwise and
        // require a clear win in the aggregate.
        let mut cfg = base_cfg(Persistence::Coding(Scheme::Plc));
        cfg.runs = 60;
        let plc = simulate_decoding_curve::<Gf256>(&cfg);
        cfg.persistence = Persistence::Coding(Scheme::Slc);
        let slc = simulate_decoding_curve::<Gf256>(&cfg);
        cfg.persistence = Persistence::Coding(Scheme::Rlc);
        let rlc = simulate_decoding_curve::<Gf256>(&cfg);
        let mut plc_wins_rlc = 0;
        let (mut plc_area, mut slc_area) = (0.0, 0.0);
        for m in 1..=30 {
            assert!(
                plc.summaries[m].mean + 0.3 >= slc.summaries[m].mean,
                "m={m}: PLC {} far below SLC {}",
                plc.summaries[m].mean,
                slc.summaries[m].mean
            );
            plc_area += plc.summaries[m].mean;
            slc_area += slc.summaries[m].mean;
            if plc.summaries[m].mean > rlc.summaries[m].mean {
                plc_wins_rlc += 1;
            }
        }
        assert!(plc_area + 1e-9 >= slc_area, "{plc_area} < {slc_area}");
        assert!(plc_wins_rlc > 5, "PLC never beat RLC below N");
    }

    #[test]
    fn curve_at_selects_points() {
        let curve = simulate_decoding_curve::<Gf256>(&base_cfg(Persistence::Coding(Scheme::Plc)));
        let picks = curve.at(&[0, 10, 30]);
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0].mean, 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = base_cfg(Persistence::Coding(Scheme::Plc));
        let one = simulate_decoding_curve_with_threads::<Gf256>(&cfg, 1);
        let four = simulate_decoding_curve_with_threads::<Gf256>(&cfg, 4);
        for (x, y) in one.summaries.iter().zip(&four.summaries) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.ci95, y.ci95);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = base_cfg(Persistence::Coding(Scheme::Plc));
        let a = simulate_decoding_curve::<Gf256>(&cfg);
        let b = simulate_decoding_curve::<Gf256>(&cfg);
        for (x, y) in a.summaries.iter().zip(&b.summaries) {
            assert_eq!(x.mean, y.mean);
        }
    }

    #[test]
    fn simulation_tracks_analysis() {
        // The Sec. 5.1 validation in miniature: simulated PLC curve vs
        // the analytical curve.
        let mut cfg = base_cfg(Persistence::Coding(Scheme::Plc));
        cfg.runs = 60;
        let curve = simulate_decoding_curve::<Gf256>(&cfg);
        let opts = prlc_analysis::AnalysisOptions::sharp();
        for m in [5usize, 10, 15, 20, 25, 30] {
            let analytic = prlc_analysis::curves::expected_levels(
                Scheme::Plc,
                &cfg.profile,
                &cfg.distribution,
                m,
                &opts,
            );
            let sim = curve.summaries[m].mean;
            assert!(
                (sim - analytic).abs() < 0.35,
                "m={m}: sim {sim} vs analysis {analytic}"
            );
        }
    }

    #[test]
    fn survivability_degrades_with_loss() {
        let cfg = SurvivabilityConfig {
            persistence: Persistence::Coding(Scheme::Plc),
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            stored_blocks: 40,
            runs: 20,
            seed: 3,
        };
        let out = simulate_survivability::<Gf256>(&cfg, &[0.0, 0.3, 0.6, 0.95]);
        assert_eq!(out.len(), 4);
        // No loss with 4x overhead: everything decodes.
        assert!(out[0].mean > 2.5, "mean at 0 loss: {}", out[0].mean);
        // Heavier loss never helps.
        for w in out.windows(2) {
            assert!(w[1].mean <= w[0].mean + 0.2);
        }
        assert!(out[3].mean < 1.5);
    }

    #[test]
    fn growth_levels_counts_prefix() {
        let profile = PriorityProfile::new(vec![1, 2]).unwrap();
        let mut dec: GrowthDecoder<Gf256> = GrowthDecoder::new(3);
        assert_eq!(growth_levels(&profile, &dec), 0);
        dec.insert(&prlc_core::baseline::growth::Codeword {
            members: vec![0],
            payload: Vec::new(),
        });
        assert_eq!(growth_levels(&profile, &dec), 1);
        dec.insert(&prlc_core::baseline::growth::Codeword {
            members: vec![2],
            payload: Vec::new(),
        });
        assert_eq!(growth_levels(&profile, &dec), 1); // level 2 incomplete
    }

    #[test]
    fn display_names() {
        assert_eq!(Persistence::Coding(Scheme::Plc).to_string(), "PLC");
        assert_eq!(Persistence::Replication.to_string(), "Replication");
        assert_eq!(Persistence::Growth.to_string(), "GrowthCodes");
    }
}
