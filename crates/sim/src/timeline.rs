//! Long-horizon persistence timelines: churn epoch after churn epoch,
//! with or without in-network repair.
//!
//! The paper evaluates survival of a *single* failure event; a deployed
//! persistence layer faces continuous churn, under which stored
//! redundancy decays geometrically. This timeline experiment quantifies
//! that decay — and how much of it the [`prlc_net::refresh()`] repair pass
//! claws back — by measuring the decodable levels after every epoch.

use prlc_core::{
    CoeffRep, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme,
    SlcDecoder,
};
use prlc_gf::GfElem;
use prlc_net::{
    predistribute_with_faults, refresh_with_faults, FaultPlan, Network, ProtocolConfig,
    ProtocolError, RefreshConfig, RingNetwork, SourceFanout,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::{default_threads, run_parallel_with_threads, splitmix64};
use crate::stats::{summarize_trajectories, Summary};

/// Configuration of a persistence timeline.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Coding scheme.
    pub scheme: Scheme,
    /// Level sizes.
    pub profile: PriorityProfile,
    /// Priority distribution for the location parts.
    pub distribution: PriorityDistribution,
    /// Overlay size (ring nodes).
    pub nodes: usize,
    /// Storage locations `M`.
    pub locations: usize,
    /// Per-epoch independent node-failure probability.
    pub churn_per_epoch: f64,
    /// Number of churn epochs to simulate.
    pub epochs: usize,
    /// Donors per repaired slot; `None` disables repair.
    pub repair_donors: Option<usize>,
    /// Fault plan for the protocol sessions themselves (lossy links,
    /// retry budgets). Each run re-seeds a clone of this plan, and the
    /// predistribution plus every repair pass share one fault session,
    /// so the whole run lives on a single message-step clock.
    pub faults: FaultPlan,
    /// Source fanout of the predistribution phase. [`SourceFanout::All`]
    /// reproduces the paper's protocol; sparse fanouts keep large-N
    /// timelines affordable.
    pub fanout: SourceFanout,
    /// Coefficient-row storage for the cached blocks (dense vectors or
    /// sorted pairs). A physical-representation choice only: results
    /// are identical either way, but sparse rows keep per-block memory
    /// at `O(ln N)` under sparse fanouts instead of `O(N)`.
    pub coeff_rep: CoeffRep,
    /// Independent runs.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

/// Mean decodable levels after each epoch (`out[0]` is before any
/// churn; `out[e]` after epoch `e`). Runs on the runner's default
/// worker count; see [`simulate_persistence_timeline_with_threads`].
///
/// # Errors
///
/// Returns the first [`ProtocolError`] raised by any run's
/// predistribution (e.g. a config whose capacity cannot hold the
/// requested locations).
pub fn simulate_persistence_timeline<F: GfElem>(
    cfg: &TimelineConfig,
) -> Result<Vec<Summary>, ProtocolError> {
    simulate_persistence_timeline_with_threads::<F>(cfg, default_threads())
}

/// [`simulate_persistence_timeline`] with an explicit worker count.
/// Results are bit-identical across `threads` (each run is seeded by
/// index, not by schedule).
///
/// # Errors
///
/// See [`simulate_persistence_timeline`].
pub fn simulate_persistence_timeline_with_threads<F: GfElem>(
    cfg: &TimelineConfig,
    threads: usize,
) -> Result<Vec<Summary>, ProtocolError> {
    let trajectories = run_parallel_with_threads(cfg.runs, cfg.seed, threads, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(cfg.epochs + 1);

        let mut net = RingNetwork::new(cfg.nodes, &mut rng);
        let sources: Vec<Vec<F>> = vec![Vec::new(); cfg.profile.total_blocks()];
        // One fault session per run: predistribution and every repair
        // pass advance the same message-step clock, so trace spans from
        // successive sessions nest on one causal timeline. The plan seed
        // is domain-separated per run so fault realisations differ
        // across runs but stay pinned to the base seed.
        let mut plan = cfg.faults.clone();
        plan.seed = splitmix64(seed ^ plan.seed);
        let mut session = plan.session(cfg.nodes);
        let mut dep = predistribute_with_faults(
            &net,
            &ProtocolConfig {
                scheme: cfg.scheme,
                profile: cfg.profile.clone(),
                distribution: cfg.distribution.clone(),
                locations: cfg.locations,
                fanout: cfg.fanout,
                coeff_rep: cfg.coeff_rep,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &sources,
            &mut session,
            &mut rng,
        )?;

        let baseline = decodable_levels::<F>(&net, &dep, cfg);
        out.push(baseline as f64);
        if prlc_obs::trace::enabled() {
            prlc_obs::trace_instant!("sim.timeline.epoch", 0, levels: baseline as u64);
        }
        for epoch in 1..=cfg.epochs {
            net.fail_uniform(cfg.churn_per_epoch, &mut rng);
            if net.alive_count() == 0 {
                out.push(0.0);
                if prlc_obs::trace::enabled() {
                    prlc_obs::trace_instant!("sim.timeline.epoch", epoch as u64, levels: 0);
                }
                continue;
            }
            if let Some(donors) = cfg.repair_donors {
                refresh_with_faults(
                    &net,
                    &mut dep,
                    &RefreshConfig {
                        scheme: cfg.scheme,
                        donors_per_slot: donors,
                    },
                    &mut session,
                    &mut rng,
                );
            }
            let levels = decodable_levels::<F>(&net, &dep, cfg);
            out.push(levels as f64);
            if prlc_obs::trace::enabled() {
                prlc_obs::trace_instant!("sim.timeline.epoch", epoch as u64, levels: levels as u64);
            }
        }
        // Pad in case of early total death (keep lengths rectangular).
        while out.len() < cfg.epochs + 1 {
            out.push(0.0);
        }
        Ok(out)
    });
    let trajectories: Vec<Vec<f64>> = trajectories.into_iter().collect::<Result<_, _>>()?;
    Ok(summarize_trajectories(&trajectories))
}

/// Renders per-epoch summaries as a JSON array (the `results` payload
/// of a `BENCH_timeline.json` envelope).
pub fn timeline_results_json(summaries: &[Summary]) -> String {
    let rows: Vec<String> = summaries
        .iter()
        .enumerate()
        .map(|(epoch, s)| {
            format!(
                "{{\"epoch\":{},\"levels_mean\":{:.6},\"levels_ci95\":{:.6}}}",
                epoch, s.mean, s.ci95
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Decodable levels from the blocks currently surviving in the network
/// (an omniscient measurement: every surviving block is offered to a
/// fresh decoder).
fn decodable_levels<F: GfElem>(
    net: &RingNetwork,
    dep: &prlc_net::Deployment<F>,
    cfg: &TimelineConfig,
) -> usize {
    let surviving = dep.surviving_slots(net);
    match cfg.scheme {
        Scheme::Slc => {
            let mut dec: SlcDecoder<F, ()> = SlcDecoder::coefficients_only(cfg.profile.clone());
            for &i in &surviving {
                let slot = &dep.slots()[i];
                if !slot.block.is_empty() {
                    dec.insert_block(&slot.block);
                }
            }
            dec.decoded_levels()
        }
        _ => {
            let mut dec: PlcDecoder<F, ()> = PlcDecoder::coefficients_only(cfg.profile.clone());
            for &i in &surviving {
                let slot = &dep.slots()[i];
                if !slot.block.is_empty() {
                    dec.insert_block(&slot.block);
                }
            }
            dec.decoded_levels()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    fn base(repair: Option<usize>) -> TimelineConfig {
        TimelineConfig {
            scheme: Scheme::Plc,
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            nodes: 50,
            locations: 30,
            churn_per_epoch: 0.2,
            epochs: 4,
            repair_donors: repair,
            faults: FaultPlan::none(),
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            runs: 8,
            seed: 5,
        }
    }

    #[test]
    fn timeline_has_expected_shape() {
        let out = simulate_persistence_timeline::<Gf256>(&base(None)).expect("timeline");
        assert_eq!(out.len(), 5);
        // Fresh deployment with 3x overhead decodes everything.
        assert!(out[0].mean > 2.5, "epoch 0: {}", out[0].mean);
        // Persistence decays (weakly) over epochs without repair.
        assert!(out[4].mean <= out[0].mean + 1e-9);
    }

    #[test]
    fn repair_improves_long_horizon_persistence() {
        let without = simulate_persistence_timeline::<Gf256>(&base(None)).expect("timeline");
        let with = simulate_persistence_timeline::<Gf256>(&base(Some(3))).expect("timeline");
        // Same seeds, same churn realisations: repair can only help.
        let last = base(None).epochs;
        assert!(
            with[last].mean >= without[last].mean,
            "repair hurt: {} vs {}",
            with[last].mean,
            without[last].mean
        );
        // And over a longer horizon it must help strictly (with high
        // probability at these sizes).
        let mut cfg = base(Some(3));
        cfg.epochs = 8;
        let long_with = simulate_persistence_timeline::<Gf256>(&cfg).expect("timeline");
        cfg.repair_donors = None;
        let long_without = simulate_persistence_timeline::<Gf256>(&cfg).expect("timeline");
        assert!(
            long_with[8].mean > long_without[8].mean,
            "8 epochs: {} vs {}",
            long_with[8].mean,
            long_without[8].mean
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate_persistence_timeline::<Gf256>(&base(Some(2))).expect("timeline");
        let b = simulate_persistence_timeline::<Gf256>(&base(Some(2))).expect("timeline");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean, y.mean);
        }
    }
}
