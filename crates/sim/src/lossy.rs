//! Persistence under lossy collection: the paper's retrieval phase
//! (Sec. 2, "measured data stored at a random subset of existing nodes
//! will be retrieved for analysis") re-run over a fault-injected
//! transport.
//!
//! The decoding-curve experiments assume every surviving block reaches
//! the collector. Real sensor links drop packets; this sweep quantifies
//! how much decodable priority data a collector actually recovers when
//! each per-node query is lost with probability `loss` and retried at
//! most `retries` times ([`prlc_net::FaultPlan`] /
//! [`prlc_net::collect_with_faults`]). The grid `loss × retry budget`
//! shows both the degradation and how much of it a modest retry budget
//! buys back.

use prlc_core::{
    CoeffRep, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme,
    SlcDecoder,
};
use prlc_gf::GfElem;
use prlc_net::{
    collect_with_faults, predistribute, CollectionConfig, CollectionReport, FaultPlan, Network,
    ProtocolConfig, ProtocolError, RetryPolicy, RingNetwork, SourceFanout,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::{default_threads, run_parallel_with_threads, splitmix64};
use crate::stats::{summarize_trajectories, Summary};

/// Configuration of a lossy-collection sweep. The `loss × retry` grid is
/// passed separately to [`persistence_under_lossy_collection`].
#[derive(Debug, Clone)]
pub struct LossyCollectionConfig {
    /// Coding scheme (the baselines have no networked collection path).
    pub scheme: Scheme,
    /// Level sizes.
    pub profile: PriorityProfile,
    /// Priority distribution for the location parts.
    pub distribution: PriorityDistribution,
    /// Overlay size (ring nodes).
    pub nodes: usize,
    /// Storage locations `M`.
    pub locations: usize,
    /// Independent node-failure probability applied *before* collection
    /// (the paper's failure event; link loss then hits the survivors).
    pub node_failure: f64,
    /// Extra hops charged per retransmission (the clockless stand-in for
    /// retry backoff).
    pub backoff_hops: usize,
    /// Independent runs.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
}

/// One cell of the sweep: statistics at a fixed `(loss, retries)` pair,
/// averaged over the runs. Accounting fields are per-run means taken
/// straight from [`CollectionReport`].
#[derive(Debug, Clone)]
pub struct LossyCell {
    /// Per-transmission loss probability.
    pub loss: f64,
    /// Retry budget (retransmissions allowed after the first attempt).
    pub retries: usize,
    /// Decoded priority levels at the end of collection.
    pub decoded_levels: Summary,
    /// Mean coded blocks that reached the collector.
    pub blocks_collected: f64,
    /// Mean query transmissions lost in transit.
    pub lost_messages: f64,
    /// Mean retransmissions spent.
    pub retries_spent: f64,
    /// Mean caching nodes skipped as unroutable or crashed.
    pub unreachable_nodes: f64,
    /// Mean queries abandoned after exhausting the retry budget.
    pub gave_up: f64,
    /// Mean total query hops (including retries and backoff surcharge).
    pub query_hops: f64,
}

/// The full sweep result: one [`LossyCell`] per `(loss, retries)` pair,
/// row-major with loss as the outer axis.
#[derive(Debug, Clone)]
pub struct LossySweep {
    /// The swept loss rates (outer axis).
    pub losses: Vec<f64>,
    /// The swept retry budgets (inner axis).
    pub retry_budgets: Vec<usize>,
    /// Cells in `losses × retry_budgets` row-major order.
    pub cells: Vec<LossyCell>,
}

impl LossySweep {
    /// The cell at `(loss_idx, retry_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, loss_idx: usize, retry_idx: usize) -> &LossyCell {
        &self.cells[loss_idx * self.retry_budgets.len() + retry_idx]
    }

    /// Renders the cells as a JSON array (the `results` payload of a
    /// `BENCH_*.json` envelope).
    pub fn results_json(&self) -> String {
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"loss\":{:.4},\"retries\":{},\"levels_mean\":{:.6},\
                     \"levels_ci95\":{:.6},\"blocks_collected\":{:.3},\
                     \"lost_messages\":{:.3},\"retries_spent\":{:.3},\
                     \"unreachable_nodes\":{:.3},\"gave_up\":{:.3},\
                     \"query_hops\":{:.3}}}",
                    c.loss,
                    c.retries,
                    c.decoded_levels.mean,
                    c.decoded_levels.ci95,
                    c.blocks_collected,
                    c.lost_messages,
                    c.retries_spent,
                    c.unreachable_nodes,
                    c.gave_up,
                    c.query_hops
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

/// Per-cell values recorded by one run, in order.
const FIELDS: usize = 7;

/// Domain-separated sub-seed for loss-level `li` of the sweep grid.
/// Every retry budget at one loss rate shares a collector and visit
/// order (paired comparison) while distinct loss levels never alias;
/// the tag is registered in docs/RNG_DOMAINS.md.
fn mix_loss_seed(seed: u64, li: u64) -> u64 {
    splitmix64(seed ^ splitmix64(0x4C4F_5353 ^ li)) // "LOSS"
}

/// Runs the lossy-collection sweep with the runner's default worker
/// count. See [`persistence_under_lossy_collection_with_threads`].
pub fn persistence_under_lossy_collection<F: GfElem>(
    cfg: &LossyCollectionConfig,
    losses: &[f64],
    retry_budgets: &[usize],
) -> Result<LossySweep, ProtocolError> {
    persistence_under_lossy_collection_with_threads::<F>(
        cfg,
        losses,
        retry_budgets,
        default_threads(),
    )
}

/// Runs the sweep with an explicit worker-thread count. Results are
/// independent of `threads`.
///
/// Each run pre-distributes one deployment on a fresh ring, applies the
/// node-failure event, then collects once per grid cell through a
/// seeded [`FaultPlan::lossy`] session. Cells sharing a loss rate also
/// share the collector and visit order within a run, so retry budgets
/// are compared on paired query sequences.
///
/// # Errors
///
/// Returns the first [`ProtocolError`] raised while pre-distributing a
/// run's deployment (e.g. a configuration whose level count does not
/// match its distribution).
///
/// # Panics
///
/// Panics if any loss rate is outside `[0, 1]`.
pub fn persistence_under_lossy_collection_with_threads<F: GfElem>(
    cfg: &LossyCollectionConfig,
    losses: &[f64],
    retry_budgets: &[usize],
    threads: usize,
) -> Result<LossySweep, ProtocolError> {
    let losses = losses.to_vec();
    let retry_budgets = retry_budgets.to_vec();
    let trajectories: Vec<Result<Vec<f64>, ProtocolError>> = {
        let (losses, retry_budgets) = (losses.clone(), retry_budgets.clone());
        run_parallel_with_threads(cfg.runs, cfg.seed, threads, move |seed| {
            one_sweep_run::<F>(cfg, &losses, &retry_budgets, seed)
        })
    };
    let trajectories = trajectories.into_iter().collect::<Result<Vec<_>, _>>()?;
    let summaries = summarize_trajectories(&trajectories);

    let mut cells = Vec::with_capacity(losses.len() * retry_budgets.len());
    for (li, &loss) in losses.iter().enumerate() {
        for (ri, &retries) in retry_budgets.iter().enumerate() {
            let base = (li * retry_budgets.len() + ri) * FIELDS;
            cells.push(LossyCell {
                loss,
                retries,
                decoded_levels: summaries[base],
                blocks_collected: summaries[base + 1].mean,
                lost_messages: summaries[base + 2].mean,
                retries_spent: summaries[base + 3].mean,
                unreachable_nodes: summaries[base + 4].mean,
                gave_up: summaries[base + 5].mean,
                query_hops: summaries[base + 6].mean,
            });
        }
    }
    Ok(LossySweep {
        losses,
        retry_budgets,
        cells,
    })
}

fn one_sweep_run<F: GfElem>(
    cfg: &LossyCollectionConfig,
    losses: &[f64],
    retry_budgets: &[usize],
    seed: u64,
) -> Result<Vec<f64>, ProtocolError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RingNetwork::new(cfg.nodes, &mut rng);
    let sources: Vec<Vec<F>> = vec![Vec::new(); cfg.profile.total_blocks()];
    let dep = predistribute(
        &net,
        &ProtocolConfig {
            scheme: cfg.scheme,
            profile: cfg.profile.clone(),
            distribution: cfg.distribution.clone(),
            locations: cfg.locations,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        },
        &sources,
        &mut rng,
    )?;
    net.fail_uniform(cfg.node_failure, &mut rng);

    let mut out = Vec::with_capacity(losses.len() * retry_budgets.len() * FIELDS);
    for (li, &loss) in losses.iter().enumerate() {
        // One sub-seed per loss rate: every retry budget at this loss
        // sees the same collector and visit order (paired comparison).
        let loss_seed = mix_loss_seed(seed, li as u64);
        for &retries in retry_budgets {
            let mut cell_rng = StdRng::seed_from_u64(loss_seed);
            let Some(collector) = net.random_alive_node(&mut cell_rng) else {
                out.extend(std::iter::repeat_n(0.0, FIELDS));
                continue;
            };
            let plan = FaultPlan::lossy(
                loss,
                RetryPolicy::with_retries(retries, cfg.backoff_hops),
                loss_seed,
            );
            let mut faults = plan.session(net.node_count());
            let ccfg = CollectionConfig::default();
            let report = match cfg.scheme {
                Scheme::Slc => {
                    let mut dec: SlcDecoder<F, ()> =
                        SlcDecoder::coefficients_only(cfg.profile.clone());
                    collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &ccfg,
                        &mut faults,
                        &mut cell_rng,
                    )
                    .map(|r| (r, dec.decoded_levels()))
                }
                _ => {
                    let mut dec: PlcDecoder<F, ()> =
                        PlcDecoder::coefficients_only(cfg.profile.clone());
                    collect_with_faults(
                        &net,
                        &dep,
                        &mut dec,
                        collector,
                        &ccfg,
                        &mut faults,
                        &mut cell_rng,
                    )
                    .map(|r| (r, dec.decoded_levels()))
                }
            };
            let (report, levels) = report.unwrap_or((CollectionReport::default(), 0));
            out.push(levels as f64);
            out.push(report.blocks_collected as f64);
            out.push(report.lost_messages as f64);
            out.push(report.retries as f64);
            out.push(report.unreachable_nodes as f64);
            out.push(report.gave_up as f64);
            out.push(report.query_hops as f64);
        }
    }
    if prlc_obs::enabled() {
        // One structured trace entry per run: the run seed identifies the
        // run, the value is the first cell's decoded level count — both
        // deterministic, so the event stream survives snapshot sorting
        // identically across thread counts.
        prlc_obs::record_event(
            "sim.lossy",
            seed,
            "run",
            out.first().copied().unwrap_or(0.0) as u64,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    fn base() -> LossyCollectionConfig {
        LossyCollectionConfig {
            scheme: Scheme::Plc,
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            nodes: 80,
            locations: 40,
            node_failure: 0.2,
            backoff_hops: 1,
            runs: 12,
            seed: 11,
        }
    }

    #[test]
    fn sweep_has_grid_shape_and_indexing() {
        let sweep = persistence_under_lossy_collection::<Gf256>(&base(), &[0.0, 0.5], &[0, 2])
            .expect("sweep");
        assert_eq!(sweep.cells.len(), 4);
        assert_eq!(sweep.cell(1, 0).loss, 0.5);
        assert_eq!(sweep.cell(1, 0).retries, 0);
        assert_eq!(sweep.cell(0, 1).loss, 0.0);
        assert_eq!(sweep.cell(0, 1).retries, 2);
    }

    #[test]
    fn zero_loss_matches_fault_free_collection() {
        let sweep =
            persistence_under_lossy_collection::<Gf256>(&base(), &[0.0], &[0]).expect("sweep");
        let cell = sweep.cell(0, 0);
        // 4x overhead and mild node failure: everything decodes, and the
        // fault layer reports a silent transport.
        assert!(
            cell.decoded_levels.mean > 2.5,
            "{}",
            cell.decoded_levels.mean
        );
        assert_eq!(cell.lost_messages, 0.0);
        assert_eq!(cell.retries_spent, 0.0);
        assert_eq!(cell.gave_up, 0.0);
        assert_eq!(cell.unreachable_nodes, 0.0);
    }

    #[test]
    fn loss_degrades_and_retries_recover() {
        // The acceptance criterion of the fault-injection PR: nonzero
        // loss measurably hurts decoded levels, and a retry budget buys
        // a measurable part of them back.
        let mut cfg = base();
        cfg.runs = 20;
        let sweep =
            persistence_under_lossy_collection::<Gf256>(&cfg, &[0.0, 0.6], &[0, 4]).expect("sweep");
        let clean = sweep.cell(0, 0).decoded_levels.mean;
        let lossy = sweep.cell(1, 0).decoded_levels.mean;
        let retried = sweep.cell(1, 1).decoded_levels.mean;
        assert!(
            lossy < clean - 0.3,
            "loss did not degrade: {lossy} vs {clean}"
        );
        assert!(
            retried > lossy + 0.3,
            "retries did not recover: {retried} vs {lossy}"
        );
        // Accounting: the lossy cells actually lost traffic, and the
        // retried cell spent retransmissions.
        assert!(sweep.cell(1, 0).lost_messages > 0.0);
        assert!(sweep.cell(1, 1).retries_spent > 0.0);
        assert!(sweep.cell(1, 0).gave_up > 0.0);
        assert_eq!(sweep.cell(1, 0).retries_spent, 0.0);
    }

    #[test]
    fn deterministic_and_thread_independent() {
        let cfg = base();
        let a = persistence_under_lossy_collection_with_threads::<Gf256>(&cfg, &[0.3], &[1], 1)
            .expect("sweep");
        let b = persistence_under_lossy_collection_with_threads::<Gf256>(&cfg, &[0.3], &[1], 4)
            .expect("sweep");
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.decoded_levels.mean, y.decoded_levels.mean);
            assert_eq!(x.query_hops, y.query_hops);
        }
    }

    #[test]
    fn results_json_is_well_formed() {
        let sweep =
            persistence_under_lossy_collection::<Gf256>(&base(), &[0.0, 0.4], &[1]).expect("sweep");
        let json = sweep.results_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"loss\":").count(), 2);
        assert!(json.contains("\"retries\":1"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
