//! Experiment harness for the PRLC evaluation (Sec. 5 of the paper).
//!
//! Provides the simulation methodology shared by every figure and table
//! of the evaluation:
//!
//! * [`experiments`] — decoding-curve and survivability simulations over
//!   any scheme ([`Persistence`]): RLC/SLC/PLC plus the replication and
//!   Growth-Codes baselines;
//! * [`lossy`] — collection re-run over a fault-injected transport
//!   (loss rate × retry budget sweeps via [`prlc_net::FaultPlan`]);
//! * [`adversarial`] — per-epoch decoding degradation under structured
//!   fault adversaries (regional outage, collector eclipse, targeted
//!   cache killer, slow compromise via [`prlc_net::Adversary`]);
//! * [`stats`] — means and 95% confidence intervals ("the average and
//!   the 95% confidence intervals from 100 independent experiments");
//! * [`runner`] — seed-split, order-deterministic parallel execution;
//! * [`metadata`] — run environment (kernel backend, threads, measured
//!   symbol throughput) for `BENCH_*.json` artifacts;
//! * [`table`] — aligned-text and CSV rendering of result series.
//!
//! # Example
//!
//! ```
//! use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
//! use prlc_gf::Gf256;
//! use prlc_sim::{simulate_decoding_curve, CurveConfig, Persistence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let curve = simulate_decoding_curve::<Gf256>(&CurveConfig {
//!     persistence: Persistence::Coding(Scheme::Plc),
//!     profile: PriorityProfile::uniform(5, 4)?,
//!     distribution: PriorityDistribution::uniform(5),
//!     max_blocks: 40,
//!     runs: 20,
//!     seed: 7,
//! });
//! // With twice the source count in blocks, everything decodes.
//! assert!(curve.summaries[40].mean > 4.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod bench;
pub mod experiments;
pub mod lossy;
pub mod metadata;
pub mod runner;
pub mod stats;
pub mod table;
pub mod timeline;

pub use adversarial::{
    adversary_results_json, simulate_adversary_sweep, simulate_adversary_sweep_with_threads,
    AdversaryEpoch, AdversarySweepConfig,
};
pub use bench::{bench_file_name, run_bench_probe, BENCH_PROBES};
pub use experiments::{
    growth_levels, simulate_decoding_curve, simulate_decoding_curve_with_threads,
    simulate_survivability, simulate_survivability_with_threads, CurveConfig, DecodingCurve,
    Persistence, SurvivabilityConfig,
};
pub use lossy::{
    persistence_under_lossy_collection, persistence_under_lossy_collection_with_threads, LossyCell,
    LossyCollectionConfig, LossySweep,
};
pub use metadata::{measure_wall_ms, run_probe_and_reset, RunMetadata};
pub use runner::{default_threads, run_parallel, run_parallel_with_threads, run_seed, splitmix64};
pub use stats::{summarize, summarize_trajectories, Summary};
pub use table::{fmt_f, Table};
pub use timeline::{
    simulate_persistence_timeline, simulate_persistence_timeline_with_threads,
    timeline_results_json, TimelineConfig,
};
