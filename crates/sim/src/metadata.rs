//! Run metadata: which kernel backend an experiment executed with, how
//! many worker threads it used, and the measured GF(2⁸) symbol
//! throughput — recorded alongside results so `BENCH_*.json` files
//! capture the performance trajectory of the codebase, not just the
//! statistical outputs.

use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

use prlc_gf::{kernel, Gf256, GfElem};
use prlc_obs::baseline::{BENCH_SCHEMA_VERSION, SCHEMA_VERSION_KEY};

/// Environment metadata attached to an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetadata {
    /// The dispatched kernel backend, including the SIMD instruction set
    /// when relevant — e.g. `"simd(avx2)"`, `"table"`, `"scalar"`.
    pub kernel_backend: String,
    /// Worker threads the runner executed with.
    pub threads: usize,
    /// Measured GF(2⁸) `axpy` throughput over 64 KiB symbol slices, in
    /// MB/s (destination bytes written per second; 1 MB = 10⁶ bytes).
    pub symbol_throughput_mb_s: f64,
    /// Total wall-clock time spent inside experiment runs, in
    /// milliseconds, aggregated from the `sim.run` span timer when
    /// metrics are enabled ([`RunMetadata::aggregate_obs_timing`]).
    /// `None` when metrics were off; omitted from the JSON in that case.
    pub run_wall_ms_total: Option<f64>,
}

impl RunMetadata {
    /// Collects metadata for a run executing on `threads` workers:
    /// queries the active kernel backend and measures symbol throughput.
    pub fn collect(threads: usize) -> Self {
        RunMetadata {
            kernel_backend: kernel::active_backend_description(),
            threads,
            symbol_throughput_mb_s: measure_symbol_throughput_mb_s(),
            run_wall_ms_total: None,
        }
    }

    /// Fills [`run_wall_ms_total`](Self::run_wall_ms_total) from the
    /// global `sim.run` span timer, if any runs were timed (metrics
    /// enabled). Call after the experiment sweep finishes and before
    /// serialising the metadata.
    pub fn aggregate_obs_timing(&mut self) {
        let snap = prlc_obs::snapshot();
        if let Some((_, timer)) = snap.timers.iter().find(|(name, _)| *name == "sim.run") {
            if timer.count > 0 {
                self.run_wall_ms_total = Some(timer.total_nanos as f64 / 1e6);
            }
        }
    }

    /// Renders the metadata as a JSON object.
    ///
    /// Serialisation is hand-rolled: the workspace builds offline and the
    /// fields are three scalars, so a serializer dependency buys nothing.
    /// A non-finite throughput (a zero-duration or failed measurement)
    /// is emitted as `null` — `{:.1}` would print `NaN`/`inf`, which is
    /// not JSON and silently corrupts every `BENCH_*.json` envelope
    /// built on top of this object.
    pub fn to_json(&self) -> String {
        let throughput = if self.symbol_throughput_mb_s.is_finite() {
            format!("{:.1}", self.symbol_throughput_mb_s)
        } else {
            "null".to_string()
        };
        let wall = match self.run_wall_ms_total {
            Some(ms) if ms.is_finite() => format!(",\"run_wall_ms_total\":{ms:.1}"),
            _ => String::new(),
        };
        format!(
            "{{\"kernel_backend\":\"{}\",\"threads\":{},\"symbol_throughput_mb_s\":{}{}}}",
            escape_json(&self.kernel_backend),
            self.threads,
            throughput,
            wall
        )
    }

    /// Writes `{"run_metadata": <self>, "results": <results_json>}` to
    /// `path` — the envelope used by the `BENCH_*.json` artifacts.
    /// `results_json` must already be valid JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_bench_json(&self, path: &Path, results_json: &str) -> std::io::Result<()> {
        self.write_bench_json_with_metrics(path, results_json, None)
    }

    /// [`write_bench_json`](Self::write_bench_json) with an optional
    /// metrics block: when `metrics_json` is `Some`, the envelope becomes
    /// `{"run_metadata": ..., "metrics": ..., "results": ...}`.
    /// `metrics_json` must already be valid JSON (e.g. a
    /// [`prlc_obs::Snapshot`] rendering).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_bench_json_with_metrics(
        &self,
        path: &Path,
        results_json: &str,
        metrics_json: Option<&str>,
    ) -> std::io::Result<()> {
        self.write_bench_json_with_blocks(path, results_json, metrics_json, None)
    }

    /// [`write_bench_json_with_metrics`](Self::write_bench_json_with_metrics)
    /// with an additional optional trace block; the full envelope is
    /// `{"run_metadata": ..., "metrics": ..., "trace": ..., "results": ...}`
    /// with absent blocks omitted. Both optional arguments must already be
    /// valid JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_bench_json_with_blocks(
        &self,
        path: &Path,
        results_json: &str,
        metrics_json: Option<&str>,
        trace_json: Option<&str>,
    ) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let metrics = match metrics_json {
            Some(m) => format!(",\"metrics\":{m}"),
            None => String::new(),
        };
        let trace = match trace_json {
            Some(t) => format!(",\"trace\":{t}"),
            None => String::new(),
        };
        // The leading schema stamp is what lets `prlc bench --check`
        // refuse to diff envelopes written by a different writer
        // generation (see prlc_obs::baseline).
        writeln!(
            f,
            "{{\"{}\":{},\"run_metadata\":{}{}{},\"results\":{}}}",
            SCHEMA_VERSION_KEY,
            BENCH_SCHEMA_VERSION,
            self.to_json(),
            metrics,
            trace,
            results_json
        )
    }
}

/// Collects [`RunMetadata`] for a sweep about to start and clears the
/// global metrics and trace recorders (when enabled), so the workload's
/// observability output is not polluted by the throughput probe's own
/// GF kernel traffic. The single entry point shared by `prlc sim` and
/// every `prlc bench` probe — keeping the two paths from drifting.
pub fn run_probe_and_reset(threads: usize) -> RunMetadata {
    let meta = RunMetadata::collect(threads);
    if prlc_obs::enabled() {
        prlc_obs::reset();
    }
    if prlc_obs::trace::enabled() {
        prlc_obs::trace::reset();
    }
    meta
}

/// Runs `f` and returns its result together with the elapsed wall-clock
/// milliseconds. Lives here — not in the bench module — because this
/// file is the one `prlc-sim` location allowlisted for `Instant` (lint
/// L1): wall-clock is an *environmental* measurement and must stay
/// quarantined from deterministic result paths.
pub fn measure_wall_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Measures the dispatched GF(2⁸) `axpy` throughput in MB/s on 64 KiB
/// slices (the representative bulk size for payload mirroring).
///
/// Short and calibrated: one warm-up pass builds the field tables, then
/// iterations are timed for roughly 20 ms.
pub fn measure_symbol_throughput_mb_s() -> f64 {
    measure_throughput(kernel::axpy)
}

/// [`measure_symbol_throughput_mb_s`] forced onto a specific kernel
/// backend — the per-backend rows of the `prlc bench` kernel probe.
pub fn measure_symbol_throughput_mb_s_with(backend: kernel::Backend) -> f64 {
    measure_throughput(|dst, c, src| kernel::axpy_with(backend, dst, c, src))
}

fn measure_throughput(mut axpy: impl FnMut(&mut [Gf256], Gf256, &[Gf256])) -> f64 {
    const LEN: usize = 64 * 1024;
    const BUDGET: Duration = Duration::from_millis(20);
    let src: Vec<Gf256> = (0..LEN).map(|i| Gf256::new((i % 251) as u8)).collect();
    let mut dst: Vec<Gf256> = (0..LEN).map(|i| Gf256::new((i % 241) as u8)).collect();
    let c = Gf256::from_index(0x53);

    // Warm-up: forces table construction out of the timed region.
    axpy(&mut dst, c, &src);

    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        axpy(&mut dst, c, &src);
        iters += 1;
        if start.elapsed() >= BUDGET {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    // Keep the result observable so the loop cannot be optimised away.
    std::hint::black_box(&dst);
    (iters as f64 * LEN as f64) / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reports_active_backend() {
        let meta = RunMetadata::collect(4);
        assert_eq!(meta.kernel_backend, kernel::active_backend_description());
        assert_eq!(meta.threads, 4);
        assert!(
            meta.symbol_throughput_mb_s > 0.0,
            "throughput {}",
            meta.symbol_throughput_mb_s
        );
    }

    #[test]
    fn json_shape() {
        let meta = RunMetadata {
            kernel_backend: "table".into(),
            threads: 8,
            symbol_throughput_mb_s: 1234.56,
            run_wall_ms_total: None,
        };
        assert_eq!(
            meta.to_json(),
            "{\"kernel_backend\":\"table\",\"threads\":8,\"symbol_throughput_mb_s\":1234.6}"
        );
    }

    #[test]
    fn json_includes_wall_time_when_present() {
        let meta = RunMetadata {
            kernel_backend: "table".into(),
            threads: 8,
            symbol_throughput_mb_s: 1234.56,
            run_wall_ms_total: Some(42.25),
        };
        assert_eq!(
            meta.to_json(),
            "{\"kernel_backend\":\"table\",\"threads\":8,\
             \"symbol_throughput_mb_s\":1234.6,\"run_wall_ms_total\":42.2}"
        );
    }

    #[test]
    fn non_finite_throughput_stays_valid_json() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let meta = RunMetadata {
                kernel_backend: "table".into(),
                threads: 2,
                symbol_throughput_mb_s: bad,
                run_wall_ms_total: None,
            };
            assert_eq!(
                meta.to_json(),
                "{\"kernel_backend\":\"table\",\"threads\":2,\"symbol_throughput_mb_s\":null}"
            );
        }
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("\n"), "\\u000a");
    }

    #[test]
    fn bench_json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("prlc-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let meta = RunMetadata {
            kernel_backend: "scalar".into(),
            threads: 1,
            symbol_throughput_mb_s: 10.0,
            run_wall_ms_total: None,
        };
        meta.write_bench_json(&path, "[1,2,3]").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"bench_schema_version\":1,"));
        assert!(text.contains("\"run_metadata\":{\"kernel_backend\":\"scalar\""));
        assert!(text.contains("\"results\":[1,2,3]"));

        meta.write_bench_json_with_metrics(&path, "[1,2,3]", Some("{\"counters\":{}}"))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(",\"metrics\":{\"counters\":{}},\"results\":[1,2,3]"));

        meta.write_bench_json_with_blocks(
            &path,
            "[1,2,3]",
            Some("{\"counters\":{}}"),
            Some("{\"tracks\":[]}"),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(
            ",\"metrics\":{\"counters\":{}},\"trace\":{\"tracks\":[]},\"results\":[1,2,3]"
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
