//! A 2D unit-square sensor field with unit-disk radio links and greedy
//! geographic routing — the sensor-network instantiation of the paper's
//! geometric network.
//!
//! Routing is GPSR-flavoured (Karp & Kung, MOBICOM 2000): greedy
//! forwarding to the neighbour closest to the destination point; when a
//! packet reaches a local minimum (a void), GPSR switches to perimeter
//! mode. Full perimeter routing requires planarising the graph; as a
//! behaviour-preserving substitute this simulation escapes voids with a
//! hop-counted breadth-first detour to the nearest node that is strictly
//! closer to the destination — like perimeter mode, it trades extra hops
//! for guaranteed delivery within a connected component (see DESIGN.md,
//! substitutions).

use rand::Rng;
use std::collections::VecDeque;

use crate::network::{Network, NodeId, Route};

/// A point in the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanePoint {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f64,
}

impl PlanePoint {
    /// Euclidean distance to `other`.
    pub fn distance(self, other: PlanePoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A simulated sensor deployment on the unit square.
#[derive(Debug, Clone)]
pub struct PlaneNetwork {
    positions: Vec<PlanePoint>,
    radius: f64,
    /// Static unit-disk adjacency (computed once; failures filter it).
    neighbors: Vec<Vec<usize>>,
    alive: Vec<bool>,
    alive_count: usize,
}

impl PlaneNetwork {
    /// Deploys `nodes` sensors uniformly at random with the given radio
    /// `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `radius` is not positive.
    pub fn new<R: Rng + ?Sized>(nodes: usize, radius: f64, rng: &mut R) -> Self {
        assert!(nodes > 0, "a deployment needs at least one node");
        assert!(radius > 0.0, "radio radius must be positive");
        let positions: Vec<PlanePoint> = (0..nodes)
            .map(|_| PlanePoint {
                x: rng.gen(),
                y: rng.gen(),
            })
            .collect();

        // Grid binning keeps neighbour discovery near-linear.
        let cell = radius.max(1e-6);
        let cells_per_side = (1.0 / cell).ceil().max(1.0) as usize;
        let cell_of = |p: PlanePoint| -> (usize, usize) {
            (
                ((p.x / cell) as usize).min(cells_per_side - 1),
                ((p.y / cell) as usize).min(cells_per_side - 1),
            )
        };
        let mut grid = vec![Vec::new(); cells_per_side * cells_per_side];
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cells_per_side + cx].push(i);
        }
        let mut neighbors = vec![Vec::new(); nodes];
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0
                        || ny < 0
                        || nx >= cells_per_side as i64
                        || ny >= cells_per_side as i64
                    {
                        continue;
                    }
                    for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                        if j != i && p.distance(positions[j]) <= radius {
                            neighbors[i].push(j);
                        }
                    }
                }
            }
        }

        PlaneNetwork {
            positions,
            radius,
            neighbors,
            alive: vec![true; nodes],
            alive_count: nodes,
        }
    }

    /// Deploys `nodes` sensors with the standard connectivity radius
    /// `sqrt(c · ln W / W)` (`c = 2`), which keeps a uniform random
    /// deployment connected with high probability.
    pub fn with_connectivity_radius<R: Rng + ?Sized>(nodes: usize, rng: &mut R) -> Self {
        let w = nodes.max(2) as f64;
        let radius = (2.0 * w.ln() / w).sqrt().min(1.5);
        Self::new(nodes, radius, rng)
    }

    /// The deployed position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> PlanePoint {
        self.positions[node.index()]
    }

    /// The radio radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Alive neighbours of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn alive_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors[node.index()]
            .iter()
            .filter(|&&j| self.alive[j])
            .map(|&j| NodeId::new(j))
    }

    /// Kills every alive node within `radius` of `center` — a correlated
    /// regional failure (fire, flood, jamming). Returns the number
    /// killed.
    pub fn fail_disk(&mut self, center: PlanePoint, radius: f64) -> usize {
        let mut killed = 0;
        for i in 0..self.positions.len() {
            if self.alive[i] && self.positions[i].distance(center) <= radius {
                self.alive[i] = false;
                self.alive_count -= 1;
                killed += 1;
            }
        }
        killed
    }

    /// Whether the alive subgraph is connected (useful to validate
    /// deployments before experiments).
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.alive.iter().position(|&a| a) else {
            return true; // vacuously
        };
        let mut seen = vec![false; self.positions.len()];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u] {
                if self.alive[v] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.alive_count
    }

    /// Greedy step: the alive neighbour of `u` closest to `target`,
    /// if strictly closer than `u` itself.
    fn greedy_next(&self, u: usize, target: PlanePoint) -> Option<usize> {
        let here = self.positions[u].distance(target);
        let mut best = None;
        let mut best_d = here;
        for &v in &self.neighbors[u] {
            if !self.alive[v] {
                continue;
            }
            let d = self.positions[v].distance(target);
            if d < best_d {
                best_d = d;
                best = Some(v);
            }
        }
        best
    }

    /// Void escape: BFS from `u` over alive nodes to the nearest (in hop
    /// count) node strictly closer to `target` than `u`. Returns that
    /// node and the detour hop count.
    fn escape_void(&self, u: usize, target: PlanePoint) -> Option<(usize, usize)> {
        let here = self.positions[u].distance(target);
        let mut seen = vec![false; self.positions.len()];
        let mut queue = VecDeque::from([(u, 0usize)]);
        seen[u] = true;
        while let Some((v, depth)) = queue.pop_front() {
            for &w in &self.neighbors[v] {
                if !self.alive[w] || seen[w] {
                    continue;
                }
                seen[w] = true;
                if self.positions[w].distance(target) < here {
                    return Some((w, depth + 1));
                }
                queue.push_back((w, depth + 1));
            }
        }
        None
    }
}

impl Network for PlaneNetwork {
    type Point = PlanePoint;

    fn node_count(&self) -> usize {
        self.positions.len()
    }

    fn alive_count(&self) -> usize {
        self.alive_count
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> PlanePoint {
        PlanePoint {
            x: rng.gen(),
            y: rng.gen(),
        }
    }

    fn owner_of(&self, point: PlanePoint) -> Option<NodeId> {
        (0..self.positions.len())
            .filter(|&i| self.alive[i])
            .min_by(|&a, &b| {
                self.positions[a]
                    .distance(point)
                    .total_cmp(&self.positions[b].distance(point))
            })
            .map(NodeId::new)
    }

    fn route(&self, from: NodeId, point: PlanePoint) -> Option<Route> {
        if !self.alive[from.index()] {
            return None;
        }
        let owner = self.owner_of(point)?;
        let mut current = from.index();
        let mut hops = 0usize;
        // Greedy + void escape strictly shrinks the distance to `point`
        // each iteration, so this terminates; the bound is a backstop.
        let max_hops = 4 * self.positions.len() + 16;
        while current != owner.index() {
            if hops > max_hops {
                return None;
            }
            if let Some(next) = self.greedy_next(current, point) {
                current = next;
                hops += 1;
            } else if let Some((next, detour)) = self.escape_void(current, point) {
                current = next;
                hops += detour;
            } else {
                // No node in this component is closer: the true owner is
                // unreachable (network partition).
                return None;
            }
        }
        Some(Route { owner, hops })
    }

    fn fail_uniform<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0,1], got {fraction}"
        );
        let mut killed = 0;
        for i in 0..self.positions.len() {
            if self.alive[i] && rng.gen_bool(fraction) {
                self.alive[i] = false;
                self.alive_count -= 1;
                killed += 1;
            }
        }
        killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plane(n: usize, seed: u64) -> PlaneNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        PlaneNetwork::with_connectivity_radius(n, &mut rng)
    }

    #[test]
    fn deployment_basics() {
        let net = plane(200, 1);
        assert_eq!(net.node_count(), 200);
        assert_eq!(net.alive_count(), 200);
        assert!(net.radius() > 0.0);
        for i in 0..200 {
            let p = net.position(NodeId::new(i));
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn connectivity_radius_yields_connected_graph() {
        // whp-connected; use fixed seeds known to produce connectivity.
        for seed in 1..=5 {
            let net = plane(300, seed);
            assert!(net.is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_within_radius() {
        let net = plane(150, 2);
        for i in 0..150 {
            let a = NodeId::new(i);
            for b in net.alive_neighbors(a) {
                let d = net.position(a).distance(net.position(b));
                assert!(d <= net.radius() + 1e-12);
                assert!(
                    net.alive_neighbors(b).any(|x| x == a),
                    "adjacency not symmetric"
                );
            }
        }
    }

    #[test]
    fn owner_is_globally_nearest() {
        let net = plane(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let p = net.random_point(&mut rng);
            let owner = net.owner_of(p).unwrap();
            let d = net.position(owner).distance(p);
            for i in 0..100 {
                assert!(net.position(NodeId::new(i)).distance(p) >= d - 1e-12);
            }
        }
    }

    #[test]
    fn routing_reaches_owner() {
        let net = plane(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("connected network must route");
            assert_eq!(Some(r.owner), net.owner_of(p));
        }
    }

    #[test]
    fn routing_after_failures_still_delivers_within_component() {
        let mut net = plane(400, 7);
        let mut rng = StdRng::seed_from_u64(8);
        net.fail_uniform(0.3, &mut rng);
        let mut delivered = 0;
        let mut attempts = 0;
        for _ in 0..100 {
            let Some(from) = net.random_alive_node(&mut rng) else {
                break;
            };
            let p = net.random_point(&mut rng);
            attempts += 1;
            if let Some(r) = net.route(from, p) {
                assert!(net.is_alive(r.owner));
                delivered += 1;
            }
        }
        // Most deliveries should still succeed at 30% failure.
        assert!(delivered * 2 > attempts, "{delivered}/{attempts}");
    }

    #[test]
    fn fail_disk_kills_the_region() {
        let mut net = plane(500, 9);
        let center = PlanePoint { x: 0.5, y: 0.5 };
        let killed = net.fail_disk(center, 0.2);
        assert!(killed > 0);
        for i in 0..500 {
            let id = NodeId::new(i);
            if net.position(id).distance(center) <= 0.2 {
                assert!(!net.is_alive(id));
            } else {
                assert!(net.is_alive(id));
            }
        }
    }

    #[test]
    fn partitioned_network_fails_gracefully() {
        // Two nodes placed manually far apart with a tiny radius.
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = PlaneNetwork::new(40, 0.01, &mut rng);
        // With radius 0.01 and 40 random nodes the graph is almost surely
        // heavily partitioned: many routes must return None rather than
        // loop forever.
        let mut failures = 0;
        for _ in 0..50 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            if net.route(from, p).is_none() {
                failures += 1;
            }
        }
        assert!(failures > 0, "expected some unreachable owners");
        // And failing everyone leaves no owner.
        net.fail_disk(PlanePoint { x: 0.5, y: 0.5 }, 2.0);
        assert_eq!(net.alive_count(), 0);
        assert_eq!(net.owner_of(PlanePoint { x: 0.1, y: 0.1 }), None);
    }

    #[test]
    fn point_distance() {
        let a = PlanePoint { x: 0.0, y: 0.0 };
        let b = PlanePoint { x: 3.0, y: 4.0 };
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }
}
