//! Data collection: a server gathers surviving coded blocks and decodes
//! progressively.
//!
//! The paper's model (Sec. 2): "measured data stored at a random subset
//! of existing nodes will be retrieved for analysis"; with progressive
//! decoding, "the data collecting server can stop collecting coded data
//! once the partial decoded data fulfill the application requirement"
//! (Sec. 3.2).
//!
//! The collector visits surviving caching nodes in random order,
//! retrieves every coded block each node holds, and feeds them to a
//! partial decoder in arrival order, recording the decoded-level
//! trajectory and the message/hop cost.

use prlc_gf::GfElem;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use prlc_core::PriorityDecoder;

use crate::fault::{DeliveryOutcome, FaultPlan, FaultSession};
use crate::network::{Network, NodeId};
use crate::protocol::Deployment;

/// Networks that can name a point a given node owns (its own location) —
/// needed to route queries *to a node* through a point-addressed
/// substrate.
pub trait NodeLocator: Network {
    /// A point owned by `node` (the node's own position or ring ID).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn locate(&self, node: NodeId) -> Self::Point;
}

impl NodeLocator for crate::ring::RingNetwork {
    fn locate(&self, node: NodeId) -> u64 {
        self.id_of(node)
    }
}

impl NodeLocator for crate::plane::PlaneNetwork {
    fn locate(&self, node: NodeId) -> crate::plane::PlanePoint {
        self.position(node)
    }
}

/// Options for a collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Stop as soon as this many priority levels are decoded (`None`
    /// collects until complete or exhausted) — the early-stop behaviour
    /// progressive decoding enables.
    pub target_levels: Option<usize>,
}

/// The outcome of a collection run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionReport {
    /// Decoded-levels trajectory: entry `i` is the decoder state after
    /// `i + 1` collected blocks (the simulated decoding curve).
    pub levels_after_block: Vec<usize>,
    /// Coded blocks fed to the decoder.
    pub blocks_collected: usize,
    /// Caching nodes visited.
    pub nodes_queried: usize,
    /// Total routing hops spent on queries (one query per visited node,
    /// including retried transmissions and their backoff surcharge).
    pub query_hops: usize,
    /// Whether the target (or full decode) was reached.
    pub target_reached: bool,
    /// Query transmissions lost in transit or timed out.
    pub lost_messages: usize,
    /// Retransmissions spent recovering lost queries.
    pub retries: usize,
    /// Caching nodes skipped because no route exists to them (network
    /// partition) or they crashed mid-run — their blocks contribute
    /// nothing.
    pub unreachable_nodes: usize,
    /// Queries abandoned after exhausting the retry budget.
    pub gave_up: usize,
}

impl CollectionReport {
    /// The decoded-level count at the end of collection.
    pub fn final_levels(&self) -> usize {
        self.levels_after_block.last().copied().unwrap_or(0)
    }
}

/// Collects surviving blocks from `deployment` into `decoder`.
///
/// The collector is itself a node; query cost to each visited caching
/// node is the routing hop count from `collector` to that node's own
/// location (the response travels the same path back; one direction is
/// counted, keeping the metric comparable across network types).
///
/// Returns `None` if `collector` is dead.
pub fn collect<N, F, D, R>(
    net: &N,
    deployment: &Deployment<F>,
    decoder: &mut D,
    collector: NodeId,
    cfg: &CollectionConfig,
    rng: &mut R,
) -> Option<CollectionReport>
where
    N: NodeLocator,
    F: GfElem,
    D: PriorityDecoder<F>,
    R: Rng + ?Sized,
{
    let mut faults = FaultPlan::none().session(net.node_count());
    collect_with_faults(net, deployment, decoder, collector, cfg, &mut faults, rng)
}

/// [`collect`] over a faulty transport: each per-node query is subject
/// to the session's link model (loss, timeout) and retry budget, and
/// churn events fire between queries. A node whose query cannot be
/// delivered — unroutable, crashed mid-run, or retry budget exhausted —
/// is skipped and its blocks contribute nothing; the report accounts for
/// every lost transmission, retry and abandoned query instead of
/// pretending success. If the *collector* crashes mid-run, collection
/// stops with the partial report.
///
/// Under [`FaultPlan::none`] this is bit-identical to [`collect`].
///
/// Returns `None` if `collector` is dead or already crashed.
pub fn collect_with_faults<N, F, D, R>(
    net: &N,
    deployment: &Deployment<F>,
    decoder: &mut D,
    collector: NodeId,
    cfg: &CollectionConfig,
    faults: &mut FaultSession,
    rng: &mut R,
) -> Option<CollectionReport>
where
    N: NodeLocator,
    F: GfElem,
    D: PriorityDecoder<F>,
    R: Rng + ?Sized,
{
    let mut machine =
        crate::event::CollectMachine::new(net, deployment, decoder, collector, cfg, faults, rng)?;
    let start = machine.start_tick();
    crate::event::run_to_quiescence(&mut machine, start, crate::event::CollectEvent::Visit)
}

/// Per-session metric and trace emission shared by the synchronous
/// reference path and the event machine — one call site, so the two
/// paths' observability output is byte-identical by construction.
pub(crate) fn emit_collect_obs(
    report: &CollectionReport,
    decoded_levels: usize,
    span_start: u64,
    span_end: u64,
) {
    if prlc_obs::enabled() {
        // Per-session fault accounting, mirroring the report fields so a
        // metrics dump can be reconciled against the returned struct.
        prlc_obs::counter!("net.collect.sessions").incr();
        prlc_obs::counter!("net.collect.blocks").add(report.blocks_collected as u64);
        prlc_obs::counter!("net.collect.nodes_queried").add(report.nodes_queried as u64);
        prlc_obs::counter!("net.collect.lost_messages").add(report.lost_messages as u64);
        prlc_obs::counter!("net.collect.retries").add(report.retries as u64);
        prlc_obs::counter!("net.collect.gave_up").add(report.gave_up as u64);
        prlc_obs::counter!("net.collect.unreachable_nodes").add(report.unreachable_nodes as u64);
        prlc_obs::histogram!("net.collect.query_hops").observe(report.query_hops as u64);
    }
    if prlc_obs::trace::enabled() {
        // Causal span on the session's message-step clock.
        prlc_obs::trace_span!(
            "net.collect.session",
            span_start,
            span_end,
            blocks: report.blocks_collected as u64,
            nodes: report.nodes_queried as u64,
            levels: decoded_levels as u64,
        );
    }
}

/// The synchronous reference implementation of [`collect_with_faults`]:
/// the original monolithic loop, kept verbatim as the ground truth the
/// event-driven runtime is byte-diffed against (see
/// `tests/event_equivalence.rs`). Exported as
/// [`crate::sync::collect_with_faults`].
///
/// Returns `None` if `collector` is dead or already crashed.
pub fn collect_with_faults_sync<N, F, D, R>(
    net: &N,
    deployment: &Deployment<F>,
    decoder: &mut D,
    collector: NodeId,
    cfg: &CollectionConfig,
    faults: &mut FaultSession,
    rng: &mut R,
) -> Option<CollectionReport>
where
    N: NodeLocator,
    F: GfElem,
    D: PriorityDecoder<F>,
    R: Rng + ?Sized,
{
    if !net.is_alive(collector) || faults.is_down(collector) {
        return None;
    }
    let span_start = faults.steps() as u64;
    // Group surviving slots by caching node; visit nodes in random order.
    let surviving = deployment.surviving_slots(net);
    let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for idx in surviving {
        by_node
            .entry(deployment.slots()[idx].node)
            .or_default()
            .push(idx);
    }
    let mut nodes: Vec<NodeId> = by_node.keys().copied().collect();
    nodes.shuffle(rng);

    let target = cfg.target_levels;
    let mut report = CollectionReport::default();

    'outer: for node in nodes {
        if faults.is_down(collector) {
            // The collector itself departed: stop with what we have.
            break;
        }
        report.nodes_queried += 1;
        let Some(route) = net.route(collector, net.locate(node)) else {
            // Unroutable cache (partitioned plane, greedy local minimum):
            // its blocks never reach the collector.
            report.unreachable_nodes += 1;
            continue;
        };
        let delivery = faults.attempt(node, route.hops);
        report.query_hops += delivery.cost_hops;
        report.lost_messages += delivery.lost;
        report.retries += delivery.attempts.saturating_sub(1);
        match delivery.outcome {
            DeliveryOutcome::Delivered => {}
            DeliveryOutcome::Unreachable => {
                report.unreachable_nodes += 1;
                continue;
            }
            DeliveryOutcome::GaveUp => {
                report.gave_up += 1;
                continue;
            }
        }
        for &idx in &by_node[&node] {
            let slot = &deployment.slots()[idx];
            if slot.block.is_empty() {
                continue;
            }
            decoder.insert_block(&slot.block);
            report.blocks_collected += 1;
            report.levels_after_block.push(decoder.decoded_levels());
            let reached = match target {
                Some(t) => decoder.decoded_levels() >= t,
                None => decoder.is_complete(),
            };
            if reached {
                report.target_reached = true;
                break 'outer;
            }
        }
    }
    if target.is_none() && decoder.is_complete() {
        report.target_reached = true;
    }
    emit_collect_obs(
        &report,
        decoder.decoded_levels(),
        span_start,
        faults.steps() as u64,
    );
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlaneNetwork;
    use crate::protocol::{predistribute, ProtocolConfig, SourceFanout};
    use crate::ring::RingNetwork;
    use prlc_core::{
        CoeffRep, PlcDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
    };
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        seed: u64,
        scheme: Scheme,
        m: usize,
    ) -> (RingNetwork, Deployment<Gf256>, Vec<Vec<Gf256>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(60, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 5]).unwrap();
        let sources: Vec<Vec<Gf256>> = (0..10)
            .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let cfg = ProtocolConfig {
            scheme,
            profile,
            distribution: PriorityDistribution::uniform(3),
            locations: m,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        };
        let dep = predistribute(&net, &cfg, &sources, &mut rng).unwrap();
        (net, dep, sources, rng)
    }

    #[test]
    fn full_collection_recovers_everything() {
        let (net, dep, sources, mut rng) = setup(1, Scheme::Plc, 40);
        let mut dec = PlcDecoder::with_payloads(dep.profile().clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(report.target_reached, "collected {report:?}");
        assert_eq!(report.final_levels(), 3);
        for (i, s) in sources.iter().enumerate() {
            assert_eq!(dec.recovered(i).unwrap(), &s[..], "block {i}");
        }
        // Early stop: we should not have needed all 40 blocks.
        assert!(report.blocks_collected <= 40);
    }

    #[test]
    fn early_stop_at_target_level() {
        let (net, dep, _, mut rng) = setup(2, Scheme::Plc, 40);
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig {
                target_levels: Some(1),
            },
            &mut rng,
        )
        .unwrap();
        assert!(report.target_reached);
        assert!(dec.decoded_levels() >= 1);
        assert!(
            report.blocks_collected < 40,
            "early stop should save blocks: {report:?}"
        );
    }

    #[test]
    fn failures_degrade_gracefully_by_priority() {
        // After heavy failure, whatever decodes must be a prefix
        // (strict-priority semantics) — and with SLC the level-0 part
        // alone often still decodes.
        let (mut net, dep, _, mut rng) = setup(3, Scheme::Slc, 50);
        net.fail_uniform(0.5, &mut rng);
        let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(dep.profile().clone());
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        // The trajectory is monotone non-decreasing.
        for w in report.levels_after_block.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(report.nodes_queried <= net.alive_count());
    }

    #[test]
    fn dead_collector_returns_none() {
        let (mut net, dep, _, mut rng) = setup(4, Scheme::Plc, 20);
        let victim = crate::network::NodeId::new(0);
        while net.is_alive(victim) {
            net.fail_uniform(0.3, &mut rng);
        }
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        assert!(collect(
            &net,
            &dep,
            &mut dec,
            victim,
            &CollectionConfig::default(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn partitioned_plane_counts_unreachable_caches() {
        // Regression: collect() used to fall through when `net.route()`
        // returned None and feed the unreachable node's blocks to the
        // decoder anyway — "collecting" data across a partition. Now the
        // node is skipped and counted.
        let mut rng = StdRng::seed_from_u64(17);
        // Far below the connectivity radius: the field is a scatter of
        // small islands.
        let net = PlaneNetwork::new(50, 0.12, &mut rng);
        let profile = PriorityProfile::new(vec![2, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 6];
        let cfg = ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 30,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: false,
            node_capacity: None,
            shared_seed: 17,
        };
        let dep = predistribute(&net, &cfg, &sources, &mut rng).unwrap();
        let collector = net.random_alive_node(&mut rng).unwrap();
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();

        // Recompute reachability from the collector's side.
        let mut reachable_blocks = 0usize;
        let mut unreachable_caches = 0usize;
        let mut caches = std::collections::BTreeMap::new();
        for &idx in &dep.surviving_slots(&net) {
            let slot = &dep.slots()[idx];
            caches
                .entry(slot.node)
                .or_insert_with(Vec::new)
                .push(!slot.block.is_empty());
        }
        for (node, blocks) in caches {
            if net.route(collector, net.locate(node)).is_some() {
                reachable_blocks += blocks.iter().filter(|&&b| b).count();
            } else {
                unreachable_caches += 1;
            }
        }
        assert!(
            unreachable_caches > 0,
            "seed produced a connected plane; pick a sparser one"
        );
        assert_eq!(report.unreachable_nodes, unreachable_caches);
        assert_eq!(report.blocks_collected, reachable_blocks);
        assert_eq!(report.blocks_collected, report.levels_after_block.len());
        // A perfect transport loses nothing even across a partition.
        assert_eq!(report.lost_messages, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.gave_up, 0);
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_collect() {
        let (mut net, dep, _, _) = setup(7, Scheme::Plc, 40);
        let mut rng = StdRng::seed_from_u64(77);
        net.fail_uniform(0.3, &mut rng);
        let collector = net.random_alive_node(&mut rng).unwrap();

        let mut rng_a = StdRng::seed_from_u64(123);
        let mut dec_a: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        let report_a = collect(
            &net,
            &dep,
            &mut dec_a,
            collector,
            &CollectionConfig::default(),
            &mut rng_a,
        )
        .unwrap();

        let mut rng_b = StdRng::seed_from_u64(123);
        let mut dec_b: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        let mut faults = crate::fault::FaultPlan::none().session(net.node_count());
        let report_b = collect_with_faults(
            &net,
            &dep,
            &mut dec_b,
            collector,
            &CollectionConfig::default(),
            &mut faults,
            &mut rng_b,
        )
        .unwrap();

        assert_eq!(report_a, report_b);
        assert_eq!(dec_a.decoded_levels(), dec_b.decoded_levels());
        // And both rngs are left in the same state.
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn lossy_queries_degrade_and_account() {
        let (net, dep, _, mut rng) = setup(8, Scheme::Plc, 40);
        let collector = net.random_alive_node(&mut rng).unwrap();

        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        let mut faults = crate::fault::FaultPlan::lossy(0.7, crate::fault::RetryPolicy::none(), 99)
            .session(net.node_count());
        let mut rng_l = StdRng::seed_from_u64(5);
        let lossy = collect_with_faults(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut faults,
            &mut rng_l,
        )
        .unwrap();
        assert!(lossy.gave_up > 0, "{lossy:?}");
        assert_eq!(lossy.lost_messages, lossy.gave_up + lossy.retries);
        assert!(lossy.nodes_queried >= lossy.unreachable_nodes + lossy.gave_up);

        // Same loss with a retry budget recovers queries.
        let mut dec2: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(dep.profile().clone());
        let mut faults2 =
            crate::fault::FaultPlan::lossy(0.7, crate::fault::RetryPolicy::with_retries(6, 1), 99)
                .session(net.node_count());
        let mut rng_r = StdRng::seed_from_u64(5);
        let retried = collect_with_faults(
            &net,
            &dep,
            &mut dec2,
            collector,
            &CollectionConfig::default(),
            &mut faults2,
            &mut rng_r,
        )
        .unwrap();
        // (Not blocks_collected: a retried run can decode fully and
        // early-stop with *fewer* blocks than the starved lossy run.)
        assert!(retried.final_levels() >= lossy.final_levels());
        assert!(retried.gave_up < lossy.gave_up);
        assert!(retried.retries > 0);
        assert!(retried.target_reached, "{retried:?}");
    }

    #[test]
    fn collection_works_on_plane_networks() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = PlaneNetwork::with_connectivity_radius(120, &mut rng);
        let profile = PriorityProfile::new(vec![2, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = (0..6).map(|_| vec![Gf256::random(&mut rng)]).collect();
        let cfg = ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(2),
            locations: 24,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: false,
            node_capacity: None,
            shared_seed: 99,
        };
        let dep = predistribute(&net, &cfg, &sources, &mut rng).unwrap();
        let mut dec = PlcDecoder::with_payloads(profile);
        let collector = net.random_alive_node(&mut rng).unwrap();
        let report = collect(
            &net,
            &dep,
            &mut dec,
            collector,
            &CollectionConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(report.target_reached, "{report:?}");
        for (i, s) in sources.iter().enumerate() {
            assert_eq!(dec.recovered(i).unwrap(), &s[..]);
        }
    }
}
