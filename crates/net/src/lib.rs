//! Geometric network substrate and distributed encoding protocols for
//! priority random linear codes.
//!
//! Implements Sec. 2 (network model) and Sec. 4 (distributed encoding
//! algorithms) of *"Differentiated Data Persistence with Priority Random
//! Linear Codes"* (Lin, Li, Liang — ICDCS 2007):
//!
//! * [`RingNetwork`] — a Chord-like DHT ring (the P2P instantiation).
//! * [`PlaneNetwork`] — a unit-disk sensor field with GPSR-style greedy
//!   geographic routing (the sensor instantiation).
//! * [`protocol`] — the shared-seed pre-distribution protocol with
//!   power-of-two-choices load balancing and incremental in-network
//!   encoding `c ← c + β·x`.
//! * [`mod@collect`] — progressive data collection from surviving caches.
//! * Failure models: independent node failure ([`Network::fail_uniform`]),
//!   correlated regional failure ([`PlaneNetwork::fail_disk`],
//!   [`RingNetwork::fail_arc`]) and session churn ([`Churn`]).
//! * [`fault`] — seeded fault injection for the protocol runs
//!   themselves: lossy links, query timeouts, bounded retry with
//!   backoff, and churn events interleaved with protocol steps
//!   ([`FaultPlan`] / [`collect_with_faults`] /
//!   [`predistribute_with_faults`] / [`refresh_with_faults`]).
//! * [`adversary`] — structured fault adversaries on top of the fault
//!   layer: correlated regional outages, collector eclipse, an adaptive
//!   targeted cache killer, and slow compromise across epochs
//!   ([`Adversary`] / [`AdversaryPlan`]).
//! * [`event`] — the deterministic discrete-event runtime the faulty
//!   entry points run on: a `(tick, seq)`-ordered scheduler executing
//!   poll-based session state machines with lazily instantiated
//!   per-node state, scaling simulations to N=10⁵ and beyond. The
//!   original monolithic loops survive in [`sync`] as the byte-exact
//!   reference the runtime is diffed against.
//!
//! # Example: persist and recover through 40% node failure
//!
//! ```
//! use prlc_core::{CoeffRep, PlcDecoder, PriorityDecoder,
//!                 PriorityDistribution, PriorityProfile, Scheme};
//! use prlc_gf::{Gf256, GfElem};
//! use prlc_net::{collect, predistribute, CollectionConfig, Network,
//!                ProtocolConfig, RingNetwork, SourceFanout};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = RingNetwork::new(80, &mut rng);
//! let profile = PriorityProfile::new(vec![2, 6])?;
//! let sources: Vec<Vec<Gf256>> =
//!     (0..8).map(|_| vec![Gf256::random(&mut rng)]).collect();
//!
//! let dep = predistribute(&net, &ProtocolConfig {
//!     scheme: Scheme::Plc,
//!     profile: profile.clone(),
//!     distribution: PriorityDistribution::from_weights(vec![0.5, 0.5])?,
//!     locations: 40,
//!     fanout: SourceFanout::All,
//!     coeff_rep: CoeffRep::Dense,
//!     two_choices: true,
//!     node_capacity: None,
//!     shared_seed: 1,
//! }, &sources, &mut rng)?;
//!
//! net.fail_uniform(0.4, &mut rng);
//!
//! let mut decoder = PlcDecoder::with_payloads(profile);
//! let collector = net.random_alive_node(&mut rng).expect("survivors");
//! let report = collect(&net, &dep, &mut decoder, collector,
//!                      &CollectionConfig::default(), &mut rng).expect("alive");
//! // The high-priority level survives heavy failure.
//! assert!(decoder.decoded_levels() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod collect;
pub mod event;
pub mod fault;
pub mod network;
pub mod plane;
pub mod protocol;
pub mod refresh;
pub mod ring;
pub mod rounds;
pub mod sync;

pub use adversary::{
    observe_deployment, Adversary, AdversaryPlan, AdversaryStrategy, SlotObservation,
};
pub use collect::{collect, collect_with_faults, CollectionConfig, CollectionReport, NodeLocator};
pub use fault::{
    ChurnEvent, Delivery, DeliveryOutcome, FaultPlan, FaultSession, LinkModel, RetryPolicy,
};
pub use network::{Churn, Network, NodeId, Route};
pub use plane::{PlaneNetwork, PlanePoint};
pub use protocol::{
    predistribute, predistribute_with_faults, Deployment, DistributionMetrics, ProtocolConfig,
    ProtocolError, SourceFanout, StorageSlot,
};
pub use refresh::{refresh, refresh_with_faults, RefreshConfig, RefreshReport};
pub use ring::RingNetwork;
pub use rounds::{RoundId, RoundStore, RoundStoreConfig};

// Re-exported so protocol configuration is self-contained for callers
// that do not otherwise depend on prlc-core's coding types.
pub use prlc_core::CoeffRep;

#[cfg(test)]
mod proptests;
