//! Structured fault adversaries: seeded, deterministic attack strategies
//! that compose with [`FaultPlan`]/[`FaultSession`] and the event-driven
//! runtime.
//!
//! Every fault plan in the workspace so far is iid — per-message loss,
//! per-node churn — which is the friendliest failure model a persistence
//! layer can face. This module adds the structured failures the
//! robustness literature actually worries about (Singh et al., *Eclipse
//! Attacks on Overlay Networks*; Friedman et al., *On the data
//! persistency of replicated erasure codes*):
//!
//! * [`AdversaryStrategy::Region`] — correlated regional outage:
//!   contiguous ring segments crash together at a scheduled message
//!   step, modelling a data centre or AS failure taking out a whole arc
//!   of the ID space.
//! * [`AdversaryStrategy::Eclipse`] — collector eclipse: loss
//!   concentrated on traffic whose greedy first hop leaves through the
//!   collector's finger neighborhood, modelling an adversary that
//!   surrounds the victim's routing table.
//! * [`AdversaryStrategy::Targeted`] — an *adaptive* cache killer that
//!   observes slot placement metadata and preferentially crashes caches
//!   holding high-level (PLC suffix) blocks.
//! * [`AdversaryStrategy::Creep`] — slow compromise: monotone node
//!   corruption across refresh epochs. Compromised nodes stay alive in
//!   the overlay, so repair neither detects nor fixes their slots — and
//!   may even place fresh blocks onto them.
//!
//! # Observation interface
//!
//! The adaptive strategy is the first adversary that reads protocol
//! state, so what it may see is pinned down explicitly:
//! [`observe_deployment`] exposes *placement metadata only* — which node
//! caches a block of which level ([`SlotObservation`]). Payloads,
//! coefficient rows and the protocol RNG are never visible; an adversary
//! is armed from observations, not from [`Deployment`] internals.
//!
//! # Determinism
//!
//! All adversary randomness comes from a dedicated RNG stream seeded by
//! [`AdversaryPlan::seed`] under its own domain-separation tag
//! (`"PRLC:AD"`), so arming an adversary never perturbs the protocol or
//! fault streams: a run with an adversary of intensity zero is
//! bit-identical to a run without one.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use prlc_gf::GfElem;

use crate::fault::{FaultSession, StrikeKind};
use crate::network::{Network, NodeId};
use crate::protocol::Deployment;
use crate::ring::RingNetwork;

/// SplitMix64-style domain separation for the adversary seed — a third
/// stream alongside the protocol ("PRLC:LO") and fault ("PRLC:FA")
/// domains.
fn mix_adversary_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0x50524C_433A4144; // "PRLC:AD"
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One of the four structured attack strategies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryStrategy {
    /// Correlated regional outage: when the strike fires, every node
    /// still up anchors — with probability `fraction` — a crash of the
    /// `segment_len` contiguous ring positions starting at its own.
    /// Expected crash fraction is roughly `1 - (1 - fraction)^segment_len`;
    /// with `segment_len == 1` this is *exactly* iid churn.
    Region {
        /// Per-node anchor probability.
        fraction: f64,
        /// Contiguous ring positions crashed per anchor (>= 1).
        segment_len: usize,
    },
    /// Collector eclipse: transmissions whose greedy first hop leaves
    /// through the collector's finger neighborhood are lost with
    /// probability `loss` instead of the base link loss.
    Eclipse {
        /// Loss probability on eclipsed traffic.
        loss: f64,
    },
    /// Adaptive cache killer: crashes exactly `kills` caching nodes,
    /// chosen from slot observations. Each pick is, with probability
    /// `focus`, the remaining cache with the highest-level block
    /// (ties broken by smallest node index) and otherwise uniform among
    /// the remaining caches. `focus = 0` degenerates to a uniform
    /// fixed-kill-count model (hypergeometric survivors); `focus = 1`
    /// is fully greedy.
    Targeted {
        /// Exact number of caching nodes to crash (clamped to the
        /// number of observed caches).
        kills: usize,
        /// Probability each pick is greedy rather than uniform.
        focus: f64,
    },
    /// Slow compromise: at every epoch boundary each not-yet-corrupted
    /// node is silently compromised with probability `per_epoch`. The
    /// corrupted set is monotone non-decreasing across epochs.
    Creep {
        /// Per-epoch, per-node compromise probability.
        per_epoch: f64,
    },
}

/// A complete, seeded adversary plan for one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Which attack to mount.
    pub strategy: AdversaryStrategy,
    /// Message-step delay between arming and the strike firing (crash
    /// strategies only; eclipse bias and creep are not scheduled on the
    /// message clock).
    pub after_messages: usize,
    /// Seed of the adversary RNG stream (independent of both the
    /// protocol and fault streams).
    pub seed: u64,
}

impl AdversaryPlan {
    /// Panics unless every probability is in `[0, 1]` and region
    /// segments are non-empty — same contract style as
    /// [`crate::FaultPlan::session`].
    fn validate(&self) {
        match self.strategy {
            AdversaryStrategy::Region {
                fraction,
                segment_len,
            } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "region fraction must be in [0,1], got {fraction}"
                );
                assert!(segment_len >= 1, "region segment_len must be >= 1");
            }
            AdversaryStrategy::Eclipse { loss } => {
                assert!(
                    (0.0..=1.0).contains(&loss),
                    "eclipse loss must be in [0,1], got {loss}"
                );
            }
            AdversaryStrategy::Targeted { focus, .. } => {
                assert!(
                    (0.0..=1.0).contains(&focus),
                    "targeted focus must be in [0,1], got {focus}"
                );
            }
            AdversaryStrategy::Creep { per_epoch } => {
                assert!(
                    (0.0..=1.0).contains(&per_epoch),
                    "creep per_epoch must be in [0,1], got {per_epoch}"
                );
            }
        }
    }
}

/// What the adaptive adversary may see about one storage slot: placement
/// metadata only — never payloads, coefficients or RNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotObservation {
    /// The node caching the block.
    pub node: NodeId,
    /// The block's priority level (for PLC, how deep a prefix it
    /// combines — higher levels carry the lower-priority suffix).
    pub level: usize,
}

/// The adversary's view of a deployment: one observation per stored
/// slot. This is the *entire* observation interface — adversaries are
/// armed from this, not from [`Deployment`] internals.
pub fn observe_deployment<F: GfElem>(deployment: &Deployment<F>) -> Vec<SlotObservation> {
    deployment
        .slots()
        .iter()
        .map(|s| SlotObservation {
            node: s.node,
            level: s.level,
        })
        .collect()
}

/// A seeded adversary for one protocol run. Arm it against the topology
/// and (for the adaptive strategy) a set of slot observations, then let
/// the fault session fire its strikes at attempt boundaries.
#[derive(Debug, Clone)]
pub struct Adversary {
    plan: AdversaryPlan,
    rng: StdRng,
    /// Creep only: nodes this adversary has corrupted so far.
    corrupted: Vec<bool>,
}

impl Adversary {
    /// Creates an adversary over a network of `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if a plan probability is outside `[0, 1]` or a region
    /// segment length is zero.
    pub fn new(plan: AdversaryPlan, node_count: usize) -> Self {
        plan.validate();
        Adversary {
            plan,
            rng: StdRng::seed_from_u64(mix_adversary_seed(plan.seed)),
            corrupted: vec![false; node_count],
        }
    }

    /// The plan this adversary was built from.
    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    /// Arms the topology-driven strategies against `session`:
    ///
    /// * `Region` schedules its correlated-outage strike
    ///   `plan.after_messages` steps from now, over the ring order
    ///   observed *at arm time* (later churn does not re-shape the
    ///   segments).
    /// * `Eclipse` installs the per-destination loss bias: a node is
    ///   targeted iff the greedy route from `collector` toward its ID
    ///   leaves through the collector's finger neighborhood — which
    ///   every nonzero-hop route does, so only the collector itself
    ///   (and unroutable nodes) escape the bias.
    ///
    /// `Targeted` and `Creep` are armed elsewhere ([`Self::arm_observed`],
    /// [`Self::advance_epoch`]); for them this is a no-op.
    pub fn arm_topology(
        &mut self,
        net: &RingNetwork,
        collector: NodeId,
        session: &mut FaultSession,
    ) {
        match self.plan.strategy {
            AdversaryStrategy::Region {
                fraction,
                segment_len,
            } => {
                let order = net.ring_order();
                let mut pos = vec![0u32; order.len()];
                for (p, node) in order.iter().enumerate() {
                    pos[node.index()] = p as u32;
                }
                session.schedule_strike(
                    session.steps() + self.plan.after_messages,
                    StrikeKind::Region {
                        fraction,
                        segment_len,
                        order: order.iter().map(|n| n.index() as u32).collect(),
                        pos,
                    },
                );
            }
            AdversaryStrategy::Eclipse { loss } => {
                let fingers = net.finger_neighborhood(collector);
                let mut in_fingers = vec![false; net.node_count()];
                for f in &fingers {
                    in_fingers[f.index()] = true;
                }
                let mut targets = vec![false; net.node_count()];
                for (i, t) in targets.iter_mut().enumerate() {
                    let dest = NodeId::new(i);
                    if let Some(hop) = net.first_hop(collector, net.id_of(dest)) {
                        *t = in_fingers[hop.index()];
                    }
                }
                session.set_eclipse(targets, loss);
            }
            AdversaryStrategy::Targeted { .. } | AdversaryStrategy::Creep { .. } => {}
        }
    }

    /// Arms the adaptive `Targeted` strategy from slot observations:
    /// builds the kill list on the adversary's own RNG stream and
    /// schedules a directed strike `plan.after_messages` steps from now.
    /// Returns the chosen victims (in kill order).
    ///
    /// The list is built pick by pick, independent of the total kill
    /// count, so the `kills = a` list is a prefix of the `kills = b`
    /// list for `a <= b` under the same seed — the coupling the
    /// monotonicity proptests rely on.
    ///
    /// For the other strategies this is a no-op returning an empty list.
    pub fn arm_observed(
        &mut self,
        observations: &[SlotObservation],
        session: &mut FaultSession,
    ) -> Vec<NodeId> {
        let AdversaryStrategy::Targeted { kills, focus } = self.plan.strategy else {
            return Vec::new();
        };
        // Per-cache value: the highest block level it holds (BTreeMap so
        // the candidate list is ordered by node index).
        let mut value: BTreeMap<usize, usize> = BTreeMap::new();
        for obs in observations {
            let v = value.entry(obs.node.index()).or_insert(0);
            *v = (*v).max(obs.level);
        }
        let mut candidates: Vec<(usize, usize)> = value.into_iter().collect();
        let kills = kills.min(candidates.len());
        let mut chosen = Vec::with_capacity(kills);
        for _ in 0..kills {
            let pick = if self.rng.gen_bool(focus) {
                // Greedy: highest-value cache, smallest node index wins
                // ties (candidates stay sorted by node index).
                let mut best = 0;
                for (j, c) in candidates.iter().enumerate() {
                    if c.1 > candidates[best].1 {
                        best = j;
                    }
                }
                best
            } else {
                self.rng.gen_range(0..candidates.len())
            };
            let (node, _) = candidates.remove(pick);
            chosen.push(NodeId::new(node));
        }
        session.schedule_strike(
            session.steps() + self.plan.after_messages,
            StrikeKind::Directed {
                nodes: chosen.iter().map(|n| n.index() as u32).collect(),
            },
        );
        chosen
    }

    /// Advances the `Creep` strategy one epoch: every not-yet-corrupted
    /// node is compromised with probability `per_epoch`. Returns how
    /// many nodes were newly taken down. The corrupted set only grows —
    /// monotone across epochs by construction.
    ///
    /// For the other strategies this is a no-op returning zero.
    pub fn advance_epoch(&mut self, session: &mut FaultSession) -> usize {
        let AdversaryStrategy::Creep { per_epoch } = self.plan.strategy else {
            return 0;
        };
        if per_epoch <= 0.0 {
            return 0;
        }
        let mut newly = 0;
        for i in 0..self.corrupted.len() {
            if !self.corrupted[i] && self.rng.gen_bool(per_epoch) {
                self.corrupted[i] = true;
                if session.mark_compromised(i) {
                    newly += 1;
                }
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn ring(n: usize, seed: u64) -> RingNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        RingNetwork::new(n, &mut rng)
    }

    #[test]
    fn region_strike_crashes_contiguous_ring_segments() {
        let net = ring(64, 3);
        let plan = AdversaryPlan {
            strategy: AdversaryStrategy::Region {
                fraction: 0.1,
                segment_len: 4,
            },
            after_messages: 0,
            seed: 9,
        };
        let mut adv = Adversary::new(plan, 64);
        let mut session = FaultPlan::none().session(64);
        adv.arm_topology(&net, NodeId::new(0), &mut session);
        session.advance_steps(1);
        assert!(session.crashed_nodes() > 0);
        // Every crashed node belongs to a run of >= 1 crashed nodes whose
        // predecessor-run start anchors a full segment: check that the
        // crash set is a union of ring-contiguous segments by verifying
        // each crashed node has a crashed neighbor within segment_len on
        // the ring (trivially true for any segment of length >= 2).
        let order = net.ring_order();
        let down: Vec<bool> = (0..64).map(|i| session.is_down(NodeId::new(i))).collect();
        let crashed_positions: Vec<usize> = (0..64).filter(|&p| down[order[p].index()]).collect();
        for &p in &crashed_positions {
            let next = order[(p + 1) % 64].index();
            let prev = order[(p + 63) % 64].index();
            assert!(
                down[next] || down[prev],
                "crashed ring position {p} is isolated"
            );
        }
    }

    #[test]
    fn zero_intensity_adversary_is_inert() {
        let net = ring(32, 4);
        for strategy in [
            AdversaryStrategy::Region {
                fraction: 0.0,
                segment_len: 3,
            },
            AdversaryStrategy::Targeted {
                kills: 0,
                focus: 1.0,
            },
            AdversaryStrategy::Creep { per_epoch: 0.0 },
        ] {
            let plan = AdversaryPlan {
                strategy,
                after_messages: 0,
                seed: 1,
            };
            let mut adv = Adversary::new(plan, 32);
            let mut session = FaultPlan::none().session(32);
            adv.arm_topology(&net, NodeId::new(0), &mut session);
            adv.arm_observed(
                &[SlotObservation {
                    node: NodeId::new(1),
                    level: 2,
                }],
                &mut session,
            );
            adv.advance_epoch(&mut session);
            session.advance_steps(10);
            assert_eq!(session.crashed_nodes(), 0);
            assert_eq!(session.compromised_nodes(), 0);
        }
    }

    #[test]
    fn targeted_greedy_kills_highest_level_caches_first() {
        let obs: Vec<SlotObservation> = (0..10)
            .map(|i| SlotObservation {
                node: NodeId::new(i),
                level: i % 3 + 1,
            })
            .collect();
        let plan = AdversaryPlan {
            strategy: AdversaryStrategy::Targeted {
                kills: 3,
                focus: 1.0,
            },
            after_messages: 0,
            seed: 2,
        };
        let mut adv = Adversary::new(plan, 10);
        let mut session = FaultPlan::none().session(10);
        let chosen = adv.arm_observed(&obs, &mut session);
        // Level-3 caches are nodes 2, 5, 8 — greedy picks them in index
        // order.
        assert_eq!(chosen, vec![NodeId::new(2), NodeId::new(5), NodeId::new(8)]);
        session.advance_steps(1);
        assert_eq!(session.crashed_nodes(), 3);
        assert!(session.is_down(NodeId::new(2)));
        assert!(session.is_down(NodeId::new(5)));
        assert!(session.is_down(NodeId::new(8)));
    }

    #[test]
    fn targeted_kill_lists_are_prefix_consistent() {
        let obs: Vec<SlotObservation> = (0..20)
            .map(|i| SlotObservation {
                node: NodeId::new(i),
                level: (i * 7) % 5 + 1,
            })
            .collect();
        let lists: Vec<Vec<NodeId>> = [3usize, 8, 15]
            .iter()
            .map(|&k| {
                let plan = AdversaryPlan {
                    strategy: AdversaryStrategy::Targeted {
                        kills: k,
                        focus: 0.5,
                    },
                    after_messages: 0,
                    seed: 11,
                };
                let mut adv = Adversary::new(plan, 20);
                let mut session = FaultPlan::none().session(20);
                adv.arm_observed(&obs, &mut session)
            })
            .collect();
        assert_eq!(lists[0][..], lists[1][..3]);
        assert_eq!(lists[1][..], lists[2][..8]);
    }

    #[test]
    fn eclipse_targets_everything_but_the_collector() {
        let net = ring(48, 7);
        let collector = NodeId::new(5);
        let plan = AdversaryPlan {
            strategy: AdversaryStrategy::Eclipse { loss: 1.0 },
            after_messages: 0,
            seed: 3,
        };
        let mut adv = Adversary::new(plan, 48);
        let mut session = FaultPlan::none().session(48);
        adv.arm_topology(&net, collector, &mut session);
        // Eclipsed traffic at loss 1.0 always gives up; the collector's
        // own slot is reachable (zero-hop route is not eclipsed).
        let to_self = session.attempt(collector, 0);
        assert_eq!(to_self.outcome, crate::DeliveryOutcome::Delivered);
        let mut gave_up = 0;
        for i in 0..48 {
            if i == collector.index() {
                continue;
            }
            if session.attempt(NodeId::new(i), 2).outcome == crate::DeliveryOutcome::GaveUp {
                gave_up += 1;
            }
        }
        assert_eq!(gave_up, 47);
    }

    #[test]
    fn creep_compromise_is_monotone_and_invisible_to_the_overlay() {
        let plan = AdversaryPlan {
            strategy: AdversaryStrategy::Creep { per_epoch: 0.3 },
            after_messages: 0,
            seed: 5,
        };
        let mut adv = Adversary::new(plan, 100);
        let mut session = FaultPlan::none().session(100);
        let mut total = 0;
        let mut prev: Vec<bool> = vec![false; 100];
        for _ in 0..5 {
            total += adv.advance_epoch(&mut session);
            let now: Vec<bool> = (0..100).map(|i| session.is_down(NodeId::new(i))).collect();
            for i in 0..100 {
                assert!(!prev[i] || now[i], "compromise must be monotone");
            }
            prev = now;
        }
        assert_eq!(session.compromised_nodes(), total);
        assert_eq!(session.crashed_nodes(), 0);
        assert!(total > 0);
    }
}
