//! Multi-round measurement persistence with bounded storage.
//!
//! The paper's data model is *periodic*: "each node produces measurement
//! data over time … periodically measured data are generated on an
//! ongoing basis, which should be preserved for subsequent analysis at a
//! later time" (Sec. 1–2), under a cache budget of `d` blocks per node.
//! A [`RoundStore`] manages that lifecycle: each measurement round gets
//! its own deployment (with a per-round shared seed derived from the
//! base seed, so any node can still reconstruct every round's storage
//! locations), and when the aggregate cache budget would overflow, the
//! *oldest* rounds are evicted — a ring buffer of persisted history.

use std::collections::VecDeque;

use prlc_gf::GfElem;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fault::FaultSession;
use crate::network::Network;
use crate::protocol::{
    predistribute, predistribute_with_faults, Deployment, ProtocolConfig, ProtocolError,
};

/// Identifies one measurement round (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoundId(u64);

impl RoundId {
    /// The numeric round index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RoundId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round {}", self.0)
    }
}

/// Configuration of a [`RoundStore`].
#[derive(Debug, Clone)]
pub struct RoundStoreConfig {
    /// The per-round protocol template; `shared_seed` acts as the *base*
    /// seed from which each round's location seed is derived.
    pub protocol: ProtocolConfig,
    /// Maximum number of rounds retained; storing beyond this evicts the
    /// oldest round first.
    pub max_rounds: usize,
}

/// A rolling window of persisted measurement rounds.
#[derive(Debug, Clone)]
pub struct RoundStore<F: GfElem> {
    config: RoundStoreConfig,
    rounds: VecDeque<(RoundId, Deployment<F>)>,
    next_round: u64,
    evicted: u64,
}

impl<F: GfElem> RoundStore<F> {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn new(config: RoundStoreConfig) -> Self {
        assert!(config.max_rounds > 0, "max_rounds must be positive");
        RoundStore {
            config,
            rounds: VecDeque::new(),
            next_round: 0,
            evicted: 0,
        }
    }

    /// Persists one round of measurements into `net`, evicting the
    /// oldest round if the retention window is full. Returns the new
    /// round's id.
    ///
    /// The round's location seed is `base_seed + round_index` mixed
    /// through the protocol's domain separation, so every node derives
    /// the same per-round locations from the shared base seed alone.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from the pre-distribution run (the
    /// round is not stored and nothing is evicted).
    pub fn store_round<N: Network, R: Rng + ?Sized>(
        &mut self,
        net: &N,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> Result<RoundId, ProtocolError> {
        let id = RoundId(self.next_round);
        let mut cfg = self.config.protocol.clone();
        cfg.shared_seed = cfg.shared_seed.wrapping_add(id.0);
        let deployment = predistribute(net, &cfg, sources, rng)?;
        self.push_round(id, deployment);
        Ok(id)
    }

    /// [`Self::store_round`] over a faulty transport: the round's
    /// pre-distribution runs through `faults` (see
    /// [`predistribute_with_faults`]), so deliveries can be lost,
    /// retried, or abandoned, and churn events advance across rounds
    /// sharing one session. Under [`crate::FaultPlan::none`] this is
    /// bit-identical to [`Self::store_round`].
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from the pre-distribution run (the
    /// round is not stored and nothing is evicted).
    pub fn store_round_with_faults<N: Network, R: Rng + ?Sized>(
        &mut self,
        net: &N,
        sources: &[Vec<F>],
        faults: &mut FaultSession,
        rng: &mut R,
    ) -> Result<RoundId, ProtocolError> {
        let id = RoundId(self.next_round);
        let mut cfg = self.config.protocol.clone();
        cfg.shared_seed = cfg.shared_seed.wrapping_add(id.0);
        let deployment = predistribute_with_faults(net, &cfg, sources, faults, rng)?;
        self.push_round(id, deployment);
        Ok(id)
    }

    fn push_round(&mut self, id: RoundId, deployment: Deployment<F>) {
        self.next_round += 1;
        if self.rounds.len() == self.config.max_rounds {
            self.rounds.pop_front();
            self.evicted += 1;
        }
        self.rounds.push_back((id, deployment));
    }

    /// Number of rounds currently retained.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds are retained.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total rounds evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained round ids, oldest first.
    pub fn round_ids(&self) -> impl Iterator<Item = RoundId> + '_ {
        self.rounds.iter().map(|(id, _)| *id)
    }

    /// The deployment of a retained round.
    pub fn deployment(&self, id: RoundId) -> Option<&Deployment<F>> {
        self.rounds
            .iter()
            .find(|(rid, _)| *rid == id)
            .map(|(_, d)| d)
    }

    /// Mutable deployment access (e.g. for [`crate::refresh()`] passes).
    pub fn deployment_mut(&mut self, id: RoundId) -> Option<&mut Deployment<F>> {
        self.rounds
            .iter_mut()
            .find(|(rid, _)| *rid == id)
            .map(|(_, d)| d)
    }

    /// The most recent retained round.
    pub fn latest(&self) -> Option<(RoundId, &Deployment<F>)> {
        self.rounds.back().map(|(id, d)| (*id, d))
    }

    /// Total cache slots currently occupied across all retained rounds —
    /// the quantity bounded by the network budget `W·d`.
    pub fn total_slots(&self) -> usize {
        self.rounds.iter().map(|(_, d)| d.slots().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect, CollectionConfig};
    use crate::ring::RingNetwork;
    use prlc_core::{CoeffRep, PlcDecoder, PriorityDistribution, PriorityProfile, Scheme};
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::protocol::SourceFanout;

    fn store_config(locations: usize, max_rounds: usize) -> RoundStoreConfig {
        RoundStoreConfig {
            protocol: ProtocolConfig {
                scheme: Scheme::Plc,
                profile: PriorityProfile::new(vec![2, 4]).unwrap(),
                distribution: PriorityDistribution::uniform(2),
                locations,
                fanout: SourceFanout::All,
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: 42,
            },
            max_rounds,
        }
    }

    fn round_sources(rng: &mut StdRng, tag: u8) -> Vec<Vec<Gf256>> {
        use prlc_gf::GfElem;
        (0..6)
            .map(|i| {
                vec![
                    Gf256::from_index(((tag as usize) * 7 + i) % 256),
                    Gf256::random(rng),
                ]
            })
            .collect()
    }

    #[test]
    fn rounds_accumulate_until_window_then_evict() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = RingNetwork::new(50, &mut rng);
        let mut store: RoundStore<Gf256> = RoundStore::new(store_config(18, 3));
        assert!(store.is_empty());

        for r in 0..5u8 {
            let srcs = round_sources(&mut rng, r);
            store.store_round(&net, &srcs, &mut rng).unwrap();
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.evicted(), 2);
        let ids: Vec<u64> = store.round_ids().map(RoundId::index).collect();
        assert_eq!(ids, vec![2, 3, 4]); // oldest evicted first
        assert_eq!(store.total_slots(), 3 * 18);
        assert_eq!(store.latest().unwrap().0.index(), 4);
        assert!(store.deployment(RoundId(0)).is_none());
        assert!(store.deployment(RoundId(3)).is_some());
    }

    #[test]
    fn each_round_recovers_its_own_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = RingNetwork::new(60, &mut rng);
        let mut store: RoundStore<Gf256> = RoundStore::new(store_config(20, 4));
        let mut all_sources = Vec::new();
        for r in 0..3u8 {
            let srcs = round_sources(&mut rng, r);
            store.store_round(&net, &srcs, &mut rng).unwrap();
            all_sources.push(srcs);
        }
        let profile = PriorityProfile::new(vec![2, 4]).unwrap();
        for (r, srcs) in all_sources.iter().enumerate() {
            let dep = store.deployment(RoundId(r as u64)).unwrap();
            let mut dec = PlcDecoder::with_payloads(profile.clone());
            let collector = net.random_alive_node(&mut rng).unwrap();
            let report = collect(
                &net,
                dep,
                &mut dec,
                collector,
                &CollectionConfig::default(),
                &mut rng,
            )
            .unwrap();
            assert!(report.target_reached, "round {r}");
            for (i, s) in srcs.iter().enumerate() {
                assert_eq!(dec.recovered(i).unwrap(), &s[..], "round {r} block {i}");
            }
        }
    }

    #[test]
    fn rounds_use_distinct_locations() {
        // Different rounds must derive different location sets, or they
        // would overwrite each other's caches.
        let mut rng = StdRng::seed_from_u64(3);
        let net = RingNetwork::new(200, &mut rng);
        let mut store: RoundStore<Gf256> = RoundStore::new(store_config(10, 2));
        let s0 = round_sources(&mut rng, 0);
        let s1 = round_sources(&mut rng, 1);
        store.store_round(&net, &s0, &mut rng).unwrap();
        store.store_round(&net, &s1, &mut rng).unwrap();
        let a: Vec<_> = store
            .deployment(RoundId(0))
            .unwrap()
            .slots()
            .iter()
            .map(|s| s.node)
            .collect();
        let b: Vec<_> = store
            .deployment(RoundId(1))
            .unwrap()
            .slots()
            .iter()
            .map(|s| s.node)
            .collect();
        assert_ne!(a, b, "rounds landed on identical node sequences");
    }

    #[test]
    fn faulty_rounds_match_plain_rounds_under_none_plan() {
        use crate::fault::{FaultPlan, RetryPolicy};

        let mut rng = StdRng::seed_from_u64(9);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = round_sources(&mut rng, 3);

        let mut plain: RoundStore<Gf256> = RoundStore::new(store_config(14, 2));
        let mut rng_a = StdRng::seed_from_u64(21);
        plain.store_round(&net, &srcs, &mut rng_a).unwrap();

        let mut faulty: RoundStore<Gf256> = RoundStore::new(store_config(14, 2));
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut session = FaultPlan::none().session(net.node_count());
        let id = faulty
            .store_round_with_faults(&net, &srcs, &mut session, &mut rng_b)
            .unwrap();
        assert_eq!(
            format!("{:?}", plain.deployment(id).unwrap().slots()),
            format!("{:?}", faulty.deployment(id).unwrap().slots())
        );

        // A lossy session threads through and leaves its mark: rounds
        // still store, and the metrics show abandoned deliveries.
        let mut lossy = FaultPlan::lossy(0.8, RetryPolicy::none(), 4).session(net.node_count());
        let id2 = faulty
            .store_round_with_faults(&net, &srcs, &mut lossy, &mut rng_b)
            .unwrap();
        assert_eq!(faulty.len(), 2);
        let metrics = faulty.deployment(id2).unwrap().metrics();
        assert!(metrics.gave_up > 0, "{metrics:?}");
        assert_eq!(metrics.lost_messages, metrics.gave_up + metrics.retries);
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn zero_retention_panics() {
        let _: RoundStore<Gf256> = RoundStore::new(store_config(10, 0));
    }

    #[test]
    fn failed_round_changes_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = RingNetwork::new(30, &mut rng);
        let mut store: RoundStore<Gf256> = RoundStore::new(store_config(10, 2));
        // Wrong source count -> protocol error.
        let bad: Vec<Vec<Gf256>> = vec![Vec::new(); 3];
        assert!(store.store_round(&net, &bad, &mut rng).is_err());
        assert!(store.is_empty());
        assert_eq!(store.evicted(), 0);
        // Next good round still gets id 0? No: ids must stay unique even
        // after failures — but a failed round allocates no id.
        let good = round_sources(&mut rng, 9);
        let id = store.store_round(&net, &good, &mut rng).unwrap();
        assert_eq!(id.index(), 0);
    }
}
