//! Fault injection for the protocol layer: lossy links, query timeouts
//! and node churn interleaved with protocol steps.
//!
//! The paper's protocols are evaluated against a *failure event* — nodes
//! die, then collection happens over a perfect transport. A deployed
//! persistence layer faces the opposite regime (Friedman et al., *On the
//! data persistency of replicated erasure codes*; Dimakis et al.,
//! *Network Coding for Distributed Storage Systems*): messages are lost
//! and nodes depart *while* the protocol runs. This module injects those
//! faults deterministically so every protocol entry point can degrade
//! gracefully instead of simulating an infallible network:
//!
//! * [`LinkModel`] — per-message loss probability and a hop-count query
//!   timeout;
//! * [`ChurnEvent`] — nodes crashing after a scheduled number of
//!   protocol messages, interleaved with the run;
//! * [`RetryPolicy`] — a bounded retry budget with a per-retry hop
//!   surcharge (the hop-metric stand-in for backoff, since the
//!   simulation has no clock);
//! * [`FaultPlan`] — the seeded, deterministic bundle of all three;
//! * [`FaultSession`] — per-run state: the fault RNG stream, the set of
//!   crashed nodes and the message-step counter.
//!
//! The fault RNG is derived from the plan's own seed (domain-separated),
//! never from the caller's protocol RNG — so threading a
//! [`FaultPlan::none`] session through a protocol run consumes nothing
//! and the run is bit-identical to the fault-free code path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::network::NodeId;

/// Behaviour of an individual message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Probability that one transmission is lost in transit.
    pub loss: f64,
    /// Queries routed over more than this many hops time out (every
    /// attempt — the route does not shrink by retrying). `None` disables
    /// timeouts.
    pub timeout_hops: Option<usize>,
}

impl LinkModel {
    /// A perfect link: no loss, no timeout.
    pub fn perfect() -> Self {
        LinkModel {
            loss: 0.0,
            timeout_hops: None,
        }
    }

    /// Whether this link can never drop a message.
    pub fn is_perfect(&self) -> bool {
        self.loss <= 0.0 && self.timeout_hops.is_none()
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::perfect()
    }
}

/// A scheduled churn event: once the session has processed
/// `after_messages` transmission attempts, every node not yet crashed
/// goes down independently with probability `fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Message-step count at which the event fires.
    pub after_messages: usize,
    /// Independent per-node crash probability.
    pub fraction: f64,
}

/// Bounded retry with a hop-metric backoff surcharge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transmission attempts per message (>= 1; the first send
    /// plus `max_attempts - 1` retries).
    pub max_attempts: usize,
    /// Extra hops charged per retry — the cost model's stand-in for
    /// exponential backoff in a clockless simulation.
    pub backoff_hops: usize,
}

impl RetryPolicy {
    /// Send once, never retry.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_hops: 0,
        }
    }

    /// `retries` retries after the first attempt, each charged
    /// `backoff_hops` extra hops.
    pub fn with_retries(retries: usize, backoff_hops: usize) -> Self {
        RetryPolicy {
            max_attempts: retries + 1,
            backoff_hops,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A complete, seeded fault plan for one protocol run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link behaviour for every message.
    pub link: LinkModel,
    /// Retry budget applied to lossy/timed-out transmissions.
    pub retry: RetryPolicy,
    /// Churn events, fired in `after_messages` order.
    pub churn: Vec<ChurnEvent>,
    /// Seed of the fault RNG stream (independent of the protocol RNG).
    pub seed: u64,
}

impl FaultPlan {
    /// The no-fault plan: perfect links, no churn. Protocol runs under
    /// this plan are bit-identical to the fault-free entry points.
    pub fn none() -> Self {
        FaultPlan {
            link: LinkModel::perfect(),
            retry: RetryPolicy::none(),
            churn: Vec::new(),
            seed: 0,
        }
    }

    /// A plain lossy-link plan: every transmission is independently lost
    /// with probability `loss` (uniform across destinations — unless an
    /// adversary installs an eclipse bias on the session, which
    /// overrides the loss rate per destination), retried per `retry`.
    /// Churn and adversary strikes fire at *attempt boundaries*: see the
    /// ordering contract on [`FaultSession::attempt`] and DESIGN.md's
    /// fault-model section.
    pub fn lossy(loss: f64, retry: RetryPolicy, seed: u64) -> Self {
        FaultPlan {
            link: LinkModel {
                loss,
                timeout_hops: None,
            },
            retry,
            churn: Vec::new(),
            seed,
        }
    }

    /// Whether this plan can never perturb a run.
    pub fn is_none(&self) -> bool {
        self.link.is_perfect() && self.churn.iter().all(|e| e.fraction <= 0.0)
    }

    /// Starts a session over a network of `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `loss` or any churn fraction is outside `[0, 1]`, or if
    /// `max_attempts` is zero.
    pub fn session(&self, node_count: usize) -> FaultSession {
        assert!(
            (0.0..=1.0).contains(&self.link.loss),
            "loss must be in [0,1], got {}",
            self.link.loss
        );
        assert!(
            self.churn.iter().all(|e| (0.0..=1.0).contains(&e.fraction)),
            "churn fractions must be in [0,1]"
        );
        assert!(self.retry.max_attempts >= 1, "max_attempts must be >= 1");
        let mut churn = self.churn.clone();
        churn.sort_by_key(|e| e.after_messages);
        let events = churn
            .into_iter()
            .map(|e| ScheduledStrike {
                after_messages: e.after_messages,
                kind: StrikeKind::Churn {
                    fraction: e.fraction,
                },
            })
            .collect();
        FaultSession {
            link: self.link,
            retry: self.retry,
            events,
            next_event: 0,
            // Same SplitMix64-style separation as the protocol's location
            // seed, under a distinct tag: the fault stream must alias
            // neither the protocol RNG nor the location stream.
            rng: StdRng::seed_from_u64(mix_fault_seed(self.seed)),
            down: vec![false; node_count],
            eclipse: None,
            step: 0,
            crashed: 0,
            compromised: 0,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// SplitMix64-style domain separation for the fault seed.
fn mix_fault_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0x50524C_433A4641; // "PRLC:FA"
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How one message exchange ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The message got through (possibly after retries).
    Delivered,
    /// Every attempt was lost or timed out; the retry budget is spent.
    GaveUp,
    /// The destination is crashed; no transmission can succeed.
    Unreachable,
}

/// The accounting record of one message exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// How the exchange ended.
    pub outcome: DeliveryOutcome,
    /// Physical transmissions attempted (0 when the destination was
    /// already down).
    pub attempts: usize,
    /// Transmissions lost in transit (loss or timeout).
    pub lost: usize,
    /// Total hop cost incurred: route hops per attempt plus the backoff
    /// surcharge per retry.
    pub cost_hops: usize,
}

/// A strike pending on the session's message-step clock. `Churn` strikes
/// come from the plan's public [`ChurnEvent`] list; the structured kinds
/// are scheduled by [`crate::adversary::Adversary`]. All of them fire at
/// attempt boundaries through the same `fire_due_events` dispatch, so
/// the ordering contract on [`FaultSession::attempt`] covers every kind.
#[derive(Debug, Clone)]
pub(crate) struct ScheduledStrike {
    pub(crate) after_messages: usize,
    pub(crate) kind: StrikeKind,
}

/// What a strike does when it fires.
#[derive(Debug, Clone)]
pub(crate) enum StrikeKind {
    /// iid per-node crash with probability `fraction` — the public
    /// [`ChurnEvent`] model.
    Churn { fraction: f64 },
    /// Correlated regional outage: every node still up anchors, with
    /// probability `fraction`, a crash of the `segment_len` contiguous
    /// ring positions starting at its own. `order[p]` is the node at
    /// clockwise ring position `p`; `pos` is its inverse permutation.
    /// With `segment_len == 1` the anchor draws *and* the crash set are
    /// identical to a `Churn` strike of the same fraction.
    Region {
        fraction: f64,
        segment_len: usize,
        order: Vec<u32>,
        pos: Vec<u32>,
    },
    /// Crash exactly the listed nodes. Consumes no randomness — the
    /// adversary chose the victims at arm time on its own RNG stream.
    Directed { nodes: Vec<u32> },
}

/// Per-destination loss bias installed by a collector-eclipse adversary:
/// transmissions to a targeted destination are lost with probability
/// `loss` instead of the base link loss.
#[derive(Debug, Clone)]
pub(crate) struct EclipseBias {
    pub(crate) targets: Vec<bool>,
    pub(crate) loss: f64,
}

/// Per-run fault state: the crashed-node overlay, the fault RNG and the
/// message-step counter driving churn events and adversary strikes.
#[derive(Debug, Clone)]
pub struct FaultSession {
    link: LinkModel,
    retry: RetryPolicy,
    events: Vec<ScheduledStrike>,
    next_event: usize,
    rng: StdRng,
    down: Vec<bool>,
    eclipse: Option<EclipseBias>,
    step: usize,
    crashed: usize,
    compromised: usize,
}

impl FaultSession {
    /// Whether `node` has crashed during this session. Crashes overlay
    /// the network's own alive state: a node the substrate still routes
    /// to may have departed mid-run.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.get(node.index()).copied().unwrap_or(false)
    }

    /// Nodes crashed by churn events and adversary strikes so far
    /// (excluding silently compromised nodes).
    pub fn crashed_nodes(&self) -> usize {
        self.crashed
    }

    /// Nodes silently compromised by a slow-compromise adversary so far.
    pub fn compromised_nodes(&self) -> usize {
        self.compromised
    }

    /// Transmission attempts processed so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Advances the message-step clock by `n` without transmitting —
    /// equivalent to `n` idle attempt boundaries — and fires every
    /// strike that falls due. Simulations call this at epoch boundaries
    /// so strikes scheduled past the last transmission of an epoch still
    /// fire before the next one begins.
    pub fn advance_steps(&mut self, n: usize) {
        self.step += n;
        self.fire_due_events();
    }

    /// Inserts a strike into the pending schedule, keeping
    /// `after_messages` order with FIFO among ties: a strike scheduled
    /// later fires after already-pending strikes due at the same step.
    pub(crate) fn schedule_strike(&mut self, after_messages: usize, kind: StrikeKind) {
        let mut at = self.events.len();
        for j in self.next_event..self.events.len() {
            if self.events[j].after_messages > after_messages {
                at = j;
                break;
            }
        }
        self.events.insert(
            at,
            ScheduledStrike {
                after_messages,
                kind,
            },
        );
    }

    /// Installs (or replaces) an eclipse bias: transmissions to targeted
    /// destinations are lost with probability `loss` instead of the base
    /// link loss.
    pub(crate) fn set_eclipse(&mut self, targets: Vec<bool>, loss: f64) {
        self.eclipse = Some(EclipseBias { targets, loss });
    }

    /// Marks `node` as compromised: it is treated as down for every
    /// future delivery, but nothing else in the system is told — the
    /// overlay still routes to it, so repair neither detects nor fixes
    /// its slots. Returns whether the node was newly compromised.
    pub(crate) fn mark_compromised(&mut self, node: usize) -> bool {
        match self.down.get_mut(node) {
            Some(d) if !*d => {
                *d = true;
                self.compromised += 1;
                if prlc_obs::enabled() {
                    prlc_obs::counter!("net.adversary.compromised").incr();
                }
                if prlc_obs::trace::enabled() {
                    prlc_obs::trace_instant!(
                        "net.adversary.crash",
                        self.step as u64,
                        node: node as u64,
                    );
                }
                true
            }
            _ => false,
        }
    }

    /// Crashes `node` on behalf of an adversary strike, emitting the
    /// `net.adversary.*` observability keys. No-op if already down.
    fn crash_adversary(&mut self, node: usize) {
        if let Some(d) = self.down.get_mut(node) {
            if !*d {
                *d = true;
                self.crashed += 1;
                if prlc_obs::enabled() {
                    prlc_obs::counter!("net.adversary.crashed").incr();
                }
                if prlc_obs::trace::enabled() {
                    prlc_obs::trace_instant!(
                        "net.adversary.crash",
                        self.step as u64,
                        node: node as u64,
                    );
                }
            }
        }
    }

    /// Fires every strike scheduled at or before the current step.
    fn fire_due_events(&mut self) {
        while self.next_event < self.events.len()
            && self.events[self.next_event].after_messages <= self.step
        {
            let idx = self.next_event;
            self.next_event += 1;
            // Move the kind out so the borrow on `events` ends before the
            // dispatch mutates `down`/`rng`; the slot is spent anyway.
            let kind = std::mem::replace(
                &mut self.events[idx].kind,
                StrikeKind::Churn { fraction: 0.0 },
            );
            match kind {
                StrikeKind::Churn { fraction } => {
                    if fraction <= 0.0 {
                        continue;
                    }
                    for (i, d) in self.down.iter_mut().enumerate() {
                        if !*d && self.rng.gen_bool(fraction) {
                            *d = true;
                            self.crashed += 1;
                            if prlc_obs::enabled() {
                                prlc_obs::counter!("net.churn.crashed").incr();
                                // Domain-separated ID: node index within the
                                // session; the value is the (deterministic)
                                // message step the crash interleaved with.
                                prlc_obs::record_event(
                                    "net.churn",
                                    i as u64,
                                    "crash",
                                    self.step as u64,
                                );
                            }
                            if prlc_obs::trace::enabled() {
                                prlc_obs::trace_instant!(
                                    "net.fault.crash",
                                    self.step as u64,
                                    node: i as u64,
                                );
                            }
                        }
                    }
                }
                StrikeKind::Region {
                    fraction,
                    segment_len,
                    order,
                    pos,
                } => {
                    if fraction <= 0.0 || segment_len == 0 || order.is_empty() {
                        continue;
                    }
                    if prlc_obs::enabled() {
                        prlc_obs::counter!("net.adversary.strikes").incr();
                    }
                    // Anchor draws are snapshotted against the pre-strike
                    // down set, so the gen_bool stream is independent of
                    // the segment crashes this strike applies: with
                    // `segment_len == 1` the stream and crash set are
                    // byte-identical to a `Churn` strike, and across
                    // intensities the draw sequences stay aligned (the
                    // monotone-coupling argument the proptests rely on).
                    let mut anchors = Vec::new();
                    for i in 0..self.down.len() {
                        if !self.down[i] && self.rng.gen_bool(fraction) {
                            anchors.push(i);
                        }
                    }
                    let n = order.len();
                    for i in anchors {
                        let p = pos.get(i).map(|&p| p as usize).unwrap_or(0);
                        for t in 0..segment_len.min(n) {
                            self.crash_adversary(order[(p + t) % n] as usize);
                        }
                    }
                }
                StrikeKind::Directed { nodes } => {
                    if prlc_obs::enabled() {
                        prlc_obs::counter!("net.adversary.strikes").incr();
                    }
                    for n in nodes {
                        self.crash_adversary(n as usize);
                    }
                }
            }
        }
    }

    /// One request/response exchange with `dest` over a route of `hops`
    /// hops: attempts transmissions under the link model until one gets
    /// through or the retry budget is spent, advancing the churn
    /// schedule one step per attempt.
    ///
    /// Ordering contract (the adversary layer depends on this): strikes
    /// scheduled after `k` messages fire at the attempt boundary *before*
    /// transmission `k + 1`, i.e. after exactly `k` transmissions have
    /// completed — never retroactively. Within one boundary, pending
    /// strikes fire in `after_messages` order, FIFO among ties.
    ///
    /// This is the single choke point every protocol's messages flow
    /// through, so it also feeds the observability counters
    /// (`net.messages.*`, `net.retries`, `net.gave_up`,
    /// `net.unreachable`). Per physical transmission the identity
    /// `sent == delivered + lost` holds, and per exchange
    /// `retries <= lost <= retries + gave_up + unreachable`.
    pub fn attempt(&mut self, dest: NodeId, hops: usize) -> Delivery {
        let delivery = self.attempt_uncounted(dest, hops);
        if prlc_obs::enabled() {
            prlc_obs::counter!("net.messages.sent").add(delivery.attempts as u64);
            prlc_obs::counter!("net.messages.lost").add(delivery.lost as u64);
            prlc_obs::counter!("net.retries").add(delivery.attempts.saturating_sub(1) as u64);
            match delivery.outcome {
                DeliveryOutcome::Delivered => prlc_obs::counter!("net.messages.delivered").incr(),
                DeliveryOutcome::GaveUp => prlc_obs::counter!("net.gave_up").incr(),
                DeliveryOutcome::Unreachable => prlc_obs::counter!("net.unreachable").incr(),
            }
        }
        if delivery.attempts > 1 && prlc_obs::trace::enabled() {
            // The exchange needed retries: tick is the message-step clock
            // after the final attempt completed.
            prlc_obs::trace_instant!(
                "net.fault.retry",
                self.step as u64,
                dest: dest.index() as u64,
                retries: (delivery.attempts - 1) as u64,
                delivered: u64::from(delivery.outcome == DeliveryOutcome::Delivered),
            );
        }
        delivery
    }

    fn attempt_uncounted(&mut self, dest: NodeId, hops: usize) -> Delivery {
        let timed_out = self.link.timeout_hops.is_some_and(|t| hops > t);
        // Per-destination loss: an eclipse bias overrides the base link
        // loss for targeted destinations. With no eclipse armed this is
        // exactly the base loss and the RNG stream is unchanged.
        let (eclipsed, loss) = match &self.eclipse {
            Some(e) if e.targets.get(dest.index()).copied().unwrap_or(false) => (true, e.loss),
            _ => (false, self.link.loss),
        };
        let mut attempts = 0usize;
        let mut lost = 0usize;
        let mut cost_hops = 0usize;
        loop {
            if attempts == self.retry.max_attempts {
                return Delivery {
                    outcome: DeliveryOutcome::GaveUp,
                    attempts,
                    lost,
                    cost_hops,
                };
            }
            // Churn and adversary strikes fire at attempt boundaries,
            // driven by the count of *completed* transmissions — an event
            // scheduled after k messages never retroactively kills
            // message k itself.
            self.fire_due_events();
            if self.is_down(dest) {
                return Delivery {
                    outcome: DeliveryOutcome::Unreachable,
                    attempts,
                    lost,
                    cost_hops,
                };
            }
            self.step += 1;
            attempts += 1;
            cost_hops += hops;
            if attempts > 1 {
                cost_hops += self.retry.backoff_hops;
            }
            if eclipsed && prlc_obs::enabled() {
                prlc_obs::counter!("net.adversary.eclipse.messages").incr();
            }
            let dropped = timed_out || (loss > 0.0 && self.rng.gen_bool(loss));
            if !dropped {
                return Delivery {
                    outcome: DeliveryOutcome::Delivered,
                    attempts,
                    lost,
                    cost_hops,
                };
            }
            lost += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_always_delivers_at_route_cost() {
        let mut s = FaultPlan::none().session(10);
        for hops in [0usize, 1, 5, 100] {
            let d = s.attempt(NodeId::new(3), hops);
            assert_eq!(d.outcome, DeliveryOutcome::Delivered);
            assert_eq!(d.attempts, 1);
            assert_eq!(d.lost, 0);
            assert_eq!(d.cost_hops, hops);
        }
        assert_eq!(s.crashed_nodes(), 0);
    }

    #[test]
    fn total_loss_burns_the_retry_budget() {
        let plan = FaultPlan::lossy(1.0, RetryPolicy::with_retries(3, 2), 7);
        let mut s = plan.session(4);
        let d = s.attempt(NodeId::new(0), 5);
        assert_eq!(d.outcome, DeliveryOutcome::GaveUp);
        assert_eq!(d.attempts, 4);
        assert_eq!(d.lost, 4);
        // 4 traversals of 5 hops + 3 retries x 2 backoff hops.
        assert_eq!(d.cost_hops, 4 * 5 + 3 * 2);
    }

    #[test]
    fn retries_recover_lossy_links() {
        let mut delivered_none = 0;
        let mut delivered_retry = 0;
        for seed in 0..200u64 {
            let mut s = FaultPlan::lossy(0.5, RetryPolicy::none(), seed).session(2);
            if s.attempt(NodeId::new(1), 1).outcome == DeliveryOutcome::Delivered {
                delivered_none += 1;
            }
            let mut s = FaultPlan::lossy(0.5, RetryPolicy::with_retries(4, 0), seed).session(2);
            if s.attempt(NodeId::new(1), 1).outcome == DeliveryOutcome::Delivered {
                delivered_retry += 1;
            }
        }
        assert!(
            delivered_retry > delivered_none + 50,
            "retries {delivered_retry} vs none {delivered_none}"
        );
    }

    #[test]
    fn timeout_fails_long_routes_only() {
        let plan = FaultPlan {
            link: LinkModel {
                loss: 0.0,
                timeout_hops: Some(8),
            },
            retry: RetryPolicy::with_retries(1, 0),
            churn: Vec::new(),
            seed: 1,
        };
        let mut s = plan.session(4);
        assert_eq!(
            s.attempt(NodeId::new(0), 8).outcome,
            DeliveryOutcome::Delivered
        );
        let d = s.attempt(NodeId::new(0), 9);
        assert_eq!(d.outcome, DeliveryOutcome::GaveUp);
        assert_eq!(d.lost, 2);
    }

    #[test]
    fn churn_events_fire_in_step_order_and_are_deterministic() {
        let plan = FaultPlan {
            link: LinkModel::perfect(),
            retry: RetryPolicy::none(),
            churn: vec![ChurnEvent {
                after_messages: 3,
                fraction: 1.0,
            }],
            seed: 5,
        };
        let mut s = plan.session(6);
        // Steps 1..3: nothing down yet.
        for _ in 0..3 {
            assert_eq!(
                s.attempt(NodeId::new(2), 1).outcome,
                DeliveryOutcome::Delivered
            );
        }
        // Event fired at step 3: everyone is down now.
        let d = s.attempt(NodeId::new(2), 1);
        assert_eq!(d.outcome, DeliveryOutcome::Unreachable);
        assert_eq!(s.crashed_nodes(), 6);
        assert!(s.is_down(NodeId::new(0)));

        // Determinism: the same plan crashes the same nodes.
        let partial = FaultPlan {
            churn: vec![ChurnEvent {
                after_messages: 0,
                fraction: 0.5,
            }],
            ..plan
        };
        let mut a = partial.session(64);
        let mut b = partial.session(64);
        a.attempt(NodeId::new(0), 1);
        b.attempt(NodeId::new(0), 1);
        for i in 0..64 {
            assert_eq!(a.is_down(NodeId::new(i)), b.is_down(NodeId::new(i)));
        }
    }

    #[test]
    fn is_none_classifies_plans() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::lossy(0.1, RetryPolicy::none(), 0).is_none());
        let churny = FaultPlan {
            churn: vec![ChurnEvent {
                after_messages: 0,
                fraction: 0.2,
            }],
            ..FaultPlan::none()
        };
        assert!(!churny.is_none());
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn invalid_loss_rejected() {
        FaultPlan::lossy(1.5, RetryPolicy::none(), 0).session(1);
    }
}
