//! In-network repair: re-creating coded blocks lost to node failure from
//! surviving coded blocks.
//!
//! The paper persists data through *one* failure event; over longer
//! horizons redundancy erodes as nodes keep churning. Because the codes
//! are linear, a lost coded block can be replaced *without touching the
//! original sources*: a random linear combination of surviving coded
//! blocks is itself a valid coded block (functional repair, in the
//! spirit of Dimakis et al.'s network coding for distributed storage —
//! reference \[6\] of the paper). Scheme constraints carry over directly:
//!
//! * **SLC** — donors must come from the *same* level part (their
//!   supports are confined to that level);
//! * **PLC** — donors of level `≤ L` are valid for a level-`L` slot
//!   (their supports lie inside the level-`L` prefix);
//! * **RLC** — any donor works.
//!
//! Repair is an extension beyond the paper (documented in DESIGN.md);
//! the `ablation_refresh` benchmark measures how much persistence it
//! buys across repeated churn epochs.

use prlc_core::{CodedBlock, Scheme};
use prlc_gf::GfElem;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::collect::NodeLocator;
use crate::fault::{DeliveryOutcome, FaultPlan, FaultSession};
use crate::protocol::Deployment;

/// Configuration of one repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshConfig {
    /// Scheme the deployment was encoded with (constrains donor
    /// eligibility).
    pub scheme: Scheme,
    /// How many surviving donors are combined into each repaired block.
    /// More donors make the repaired block "more random" (closer to a
    /// fresh encoding) at proportional bandwidth cost.
    pub donors_per_slot: usize,
}

/// Outcome of a repair pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshReport {
    /// Slots whose block was re-created on a new alive node.
    pub repaired: usize,
    /// Slots with no eligible surviving donor (their data stays lost
    /// until sources are re-disseminated).
    pub unrepairable: usize,
    /// Donor-fetch messages sent.
    pub messages: usize,
    /// Total hops across donor fetches (including retried transmissions
    /// and their backoff surcharge).
    pub total_hops: usize,
    /// Donor-fetch transmissions lost in transit or timed out.
    pub lost_messages: usize,
    /// Retransmissions spent recovering lost fetches.
    pub retries: usize,
    /// Donor fetches skipped because the donor was unroutable or crashed
    /// mid-run (the repaired block misses that donor's contribution).
    pub unreachable_nodes: usize,
    /// Donor fetches abandoned after exhausting the retry budget.
    pub gave_up: usize,
}

/// Repairs every slot of `deployment` whose caching node has failed,
/// placing the re-created block on a live node chosen by the same
/// owner-of-a-random-point rule as the original protocol.
///
/// Returns `None` when the network has no alive nodes at all.
pub fn refresh<N, F, R>(
    net: &N,
    deployment: &mut Deployment<F>,
    cfg: &RefreshConfig,
    rng: &mut R,
) -> Option<RefreshReport>
where
    N: NodeLocator,
    F: GfElem,
    R: Rng + ?Sized,
{
    let mut faults = FaultPlan::none().session(net.node_count());
    refresh_with_faults(net, deployment, cfg, &mut faults, rng)
}

/// [`refresh`] over a faulty transport: each donor fetch is subject to
/// the session's link model and retry budget, and churn events fire
/// between fetches. A donor whose fetch fails — unroutable, crashed, or
/// retry budget spent — contributes nothing to the repaired block; a
/// slot for which *no* donor could be fetched stays unrepaired (counted
/// in `unrepairable`) instead of silently acquiring an empty block.
///
/// Under [`FaultPlan::none`] this is bit-identical to [`refresh`] on any
/// connected network.
///
/// Returns `None` when the network has no alive nodes at all.
pub fn refresh_with_faults<N, F, R>(
    net: &N,
    deployment: &mut Deployment<F>,
    cfg: &RefreshConfig,
    faults: &mut FaultSession,
    rng: &mut R,
) -> Option<RefreshReport>
where
    N: NodeLocator,
    F: GfElem,
    R: Rng + ?Sized,
{
    let mut machine = crate::event::RefreshMachine::new(net, deployment, cfg, faults, rng)?;
    let start = machine.start_tick();
    crate::event::run_to_quiescence(&mut machine, start, crate::event::RefreshEvent::Repair)
}

/// Per-session metric and trace emission shared by the synchronous
/// reference path and the event machine — one call site, so the two
/// paths' observability output is byte-identical by construction.
pub(crate) fn emit_refresh_obs(report: &RefreshReport, span_start: u64, span_end: u64) {
    if prlc_obs::enabled() {
        // Per-session fault accounting, mirroring the report fields.
        prlc_obs::counter!("net.refresh.sessions").incr();
        prlc_obs::counter!("net.refresh.repaired").add(report.repaired as u64);
        prlc_obs::counter!("net.refresh.unrepairable").add(report.unrepairable as u64);
        prlc_obs::counter!("net.refresh.messages").add(report.messages as u64);
        prlc_obs::counter!("net.refresh.lost_messages").add(report.lost_messages as u64);
        prlc_obs::counter!("net.refresh.retries").add(report.retries as u64);
        prlc_obs::counter!("net.refresh.gave_up").add(report.gave_up as u64);
        prlc_obs::counter!("net.refresh.unreachable_nodes").add(report.unreachable_nodes as u64);
    }
    if prlc_obs::trace::enabled() {
        // Causal span on the session's message-step clock.
        prlc_obs::trace_span!(
            "net.refresh.session",
            span_start,
            span_end,
            repaired: report.repaired as u64,
            unrepairable: report.unrepairable as u64,
        );
    }
}

/// The synchronous reference implementation of [`refresh_with_faults`]:
/// the original monolithic loop, kept verbatim as the ground truth the
/// event-driven runtime is byte-diffed against (see
/// `tests/event_equivalence.rs`). Exported as
/// [`crate::sync::refresh_with_faults`].
///
/// Returns `None` when the network has no alive nodes at all.
pub fn refresh_with_faults_sync<N, F, R>(
    net: &N,
    deployment: &mut Deployment<F>,
    cfg: &RefreshConfig,
    faults: &mut FaultSession,
    rng: &mut R,
) -> Option<RefreshReport>
where
    N: NodeLocator,
    F: GfElem,
    R: Rng + ?Sized,
{
    if net.alive_count() == 0 {
        return None;
    }
    let span_start = faults.steps() as u64;
    let mut report = RefreshReport::default();

    // Index surviving slots by level for donor lookup.
    let dead: Vec<usize> = (0..deployment.slots().len())
        .filter(|&i| !net.is_alive(deployment.slots()[i].node))
        .collect();
    let alive_slots: Vec<usize> = (0..deployment.slots().len())
        .filter(|&i| net.is_alive(deployment.slots()[i].node))
        .collect();

    for slot_idx in dead {
        let level = deployment.slots()[slot_idx].level;
        // Eligible donors under the scheme's support rules.
        let mut donors: Vec<usize> = alive_slots
            .iter()
            .copied()
            .filter(|&j| {
                let donor = &deployment.slots()[j];
                if donor.block.is_empty() {
                    return false;
                }
                match cfg.scheme {
                    Scheme::Slc => donor.level == level,
                    Scheme::Plc => donor.level <= level,
                    Scheme::Rlc => true,
                }
            })
            .collect();
        if donors.is_empty() {
            report.unrepairable += 1;
            continue;
        }
        donors.shuffle(rng);
        donors.truncate(cfg.donors_per_slot.max(1));

        // Place the repaired block at the owner of a fresh random point.
        let point = net.random_point(rng);
        let new_node = net.owner_of(point).expect("alive_count > 0");

        let width = deployment.profile().total_blocks();
        // The repaired block inherits the dead slot's coefficient
        // representation, so a sparse deployment stays sparse across
        // repair generations.
        let rep = deployment.slots()[slot_idx].block.coefficients.rep();
        let mut block: CodedBlock<F> = CodedBlock::empty_with(level, width, rep);
        let mut fetched = 0usize;
        for &j in &donors {
            let donor_slot = &deployment.slots()[j];
            // Fetch the donor block: route from the repairing node to the
            // donor's cache.
            let Some(route) = net.route(new_node, net.locate(donor_slot.node)) else {
                report.unreachable_nodes += 1;
                continue;
            };
            let delivery = faults.attempt(donor_slot.node, route.hops);
            report.lost_messages += delivery.lost;
            report.retries += delivery.attempts.saturating_sub(1);
            report.total_hops += delivery.cost_hops;
            match delivery.outcome {
                DeliveryOutcome::Delivered => {}
                DeliveryOutcome::Unreachable => {
                    report.unreachable_nodes += 1;
                    continue;
                }
                DeliveryOutcome::GaveUp => {
                    report.gave_up += 1;
                    continue;
                }
            }
            report.messages += 1;
            let beta = F::random_nonzero(rng);
            let donor_block = donor_slot.block.clone();
            block.combine(&donor_block, beta);
            fetched += 1;
        }

        if fetched == 0 {
            // Every donor fetch failed: the slot stays lost rather than
            // acquiring an empty block on a new node.
            report.unrepairable += 1;
            continue;
        }
        let slot = &mut deployment.slots_mut()[slot_idx];
        slot.node = new_node;
        slot.block = block;
        report.repaired += 1;
    }
    emit_refresh_obs(&report, span_start, faults.steps() as u64);
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::protocol::{predistribute, ProtocolConfig, SourceFanout};
    use crate::ring::RingNetwork;
    use prlc_core::{CoeffRep, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile};
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        seed: u64,
        scheme: Scheme,
    ) -> (RingNetwork, Deployment<Gf256>, Vec<Vec<Gf256>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(60, &mut rng);
        let profile = PriorityProfile::new(vec![3, 4, 5]).unwrap();
        let sources: Vec<Vec<Gf256>> = (0..12)
            .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let dep = predistribute(
            &net,
            &ProtocolConfig {
                scheme,
                profile,
                distribution: PriorityDistribution::uniform(3),
                locations: 48,
                fanout: SourceFanout::All,
                coeff_rep: CoeffRep::Dense,
                two_choices: true,
                node_capacity: None,
                shared_seed: seed,
            },
            &sources,
            &mut rng,
        )
        .unwrap();
        (net, dep, sources, rng)
    }

    #[test]
    fn refresh_moves_dead_slots_to_live_nodes() {
        let (mut net, mut dep, _, mut rng) = setup(1, Scheme::Plc);
        net.fail_uniform(0.4, &mut rng);
        let dead_before = dep.slots().iter().filter(|s| !net.is_alive(s.node)).count();
        assert!(dead_before > 0, "seed produced no failures");
        let report = refresh(
            &net,
            &mut dep,
            &RefreshConfig {
                scheme: Scheme::Plc,
                donors_per_slot: 3,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.repaired + report.unrepairable, dead_before);
        assert!(report.repaired > 0);
        // Every slot now lives on an alive node (unrepairable ones were
        // re-placed too? No: unrepairable slots keep their dead node).
        let still_dead = dep.slots().iter().filter(|s| !net.is_alive(s.node)).count();
        assert_eq!(still_dead, report.unrepairable);
    }

    #[test]
    fn repaired_blocks_respect_scheme_supports() {
        for scheme in [Scheme::Slc, Scheme::Plc] {
            let (mut net, mut dep, _, mut rng) = setup(2, scheme);
            net.fail_uniform(0.5, &mut rng);
            refresh(
                &net,
                &mut dep,
                &RefreshConfig {
                    scheme,
                    donors_per_slot: 2,
                },
                &mut rng,
            )
            .unwrap();
            let profile = dep.profile().clone();
            for slot in dep.slots() {
                for idx in slot.block.support() {
                    match scheme {
                        Scheme::Slc => assert_eq!(profile.level_of(idx), slot.level),
                        _ => assert!(profile.level_of(idx) <= slot.level),
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_restores_decodability_after_repeated_churn() {
        // Two churn epochs with repair in between: data stays decodable
        // far more often than without repair.
        let mut with_repair = 0usize;
        let mut without_repair = 0usize;
        for seed in 0..6u64 {
            for repair in [true, false] {
                let (mut net, mut dep, sources, mut rng) = setup(100 + seed, Scheme::Plc);
                for _ in 0..3 {
                    net.fail_uniform(0.25, &mut rng);
                    if net.alive_count() == 0 {
                        break;
                    }
                    if repair {
                        refresh(
                            &net,
                            &mut dep,
                            &RefreshConfig {
                                scheme: Scheme::Plc,
                                donors_per_slot: 4,
                            },
                            &mut rng,
                        );
                    }
                }
                let Some(collector) = net.random_alive_node(&mut rng) else {
                    continue;
                };
                let mut dec = PlcDecoder::with_payloads(dep.profile().clone());
                crate::collect::collect(
                    &net,
                    &dep,
                    &mut dec,
                    collector,
                    &crate::collect::CollectionConfig::default(),
                    &mut rng,
                );
                if dec.is_complete() {
                    // Verify payloads really survive repeated re-coding.
                    for (i, s) in sources.iter().enumerate() {
                        assert_eq!(dec.recovered(i).unwrap(), &s[..], "block {i}");
                    }
                    if repair {
                        with_repair += 1;
                    } else {
                        without_repair += 1;
                    }
                }
            }
        }
        assert!(
            with_repair >= without_repair,
            "repair should not hurt: {with_repair} vs {without_repair}"
        );
        assert!(
            with_repair >= 4,
            "repair preserved data only {with_repair}/6"
        );
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_refresh() {
        let (mut net, dep, _, mut rng) = setup(5, Scheme::Plc);
        net.fail_uniform(0.4, &mut rng);
        let cfg = RefreshConfig {
            scheme: Scheme::Plc,
            donors_per_slot: 3,
        };

        let mut dep_a = dep.clone();
        let mut rng_a = StdRng::seed_from_u64(55);
        let report_a = refresh(&net, &mut dep_a, &cfg, &mut rng_a).unwrap();

        let mut dep_b = dep;
        let mut rng_b = StdRng::seed_from_u64(55);
        let mut faults = FaultPlan::none().session(net.node_count());
        let report_b =
            refresh_with_faults(&net, &mut dep_b, &cfg, &mut faults, &mut rng_b).unwrap();

        assert_eq!(report_a, report_b);
        assert_eq!(
            format!("{:?}", dep_a.slots()),
            format!("{:?}", dep_b.slots())
        );
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn failed_donor_fetches_leave_slots_unrepaired() {
        use crate::fault::RetryPolicy;
        let (mut net, mut dep, _, mut rng) = setup(6, Scheme::Plc);
        net.fail_uniform(0.4, &mut rng);
        let dead = dep.slots().iter().filter(|s| !net.is_alive(s.node)).count();
        assert!(dead > 0);
        // Total loss, no retries: every donor fetch is abandoned, so
        // nothing is repaired — and no slot acquires an empty block.
        let mut faults = FaultPlan::lossy(1.0, RetryPolicy::none(), 3).session(net.node_count());
        let report = refresh_with_faults(
            &net,
            &mut dep,
            &RefreshConfig {
                scheme: Scheme::Plc,
                donors_per_slot: 3,
            },
            &mut faults,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.repaired, 0);
        assert_eq!(report.unrepairable, dead);
        assert_eq!(report.messages, 0);
        assert!(report.gave_up > 0);
        assert_eq!(report.lost_messages, report.gave_up + report.retries);
    }

    #[test]
    fn empty_network_returns_none() {
        let (mut net, mut dep, _, mut rng) = setup(3, Scheme::Plc);
        net.fail_arc(0, 1.0);
        assert!(refresh(
            &net,
            &mut dep,
            &RefreshConfig {
                scheme: Scheme::Plc,
                donors_per_slot: 2
            },
            &mut rng
        )
        .is_none());
    }
}
