//! Property tests for the network substrate and protocol invariants.

use proptest::prelude::*;

use prlc_core::{CoeffRep, PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::collect::{collect_with_faults, CollectionConfig};
use crate::fault::{ChurnEvent, FaultPlan, LinkModel, RetryPolicy};
use crate::network::{Network, NodeId};
use crate::plane::PlaneNetwork;
use crate::protocol::{predistribute, ProtocolConfig, SourceFanout};
use crate::ring::RingNetwork;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_routing_always_reaches_the_owner(
        nodes in 2usize..120,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(nodes, &mut rng);
        for _ in 0..10 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("healthy ring routes");
            prop_assert_eq!(Some(r.owner), net.owner_of(p));
            prop_assert!(r.hops <= 2 * 64);
        }
    }

    #[test]
    fn ring_survives_partial_failure(
        nodes in 10usize..100,
        seed in 0u64..500,
        fraction in 0.0f64..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = RingNetwork::new(nodes, &mut rng);
        let killed = net.fail_uniform(fraction, &mut rng);
        prop_assert_eq!(net.alive_count(), nodes - killed);
        if net.alive_count() > 0 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("ring with survivors routes");
            prop_assert!(net.is_alive(r.owner));
        }
    }

    #[test]
    fn plane_owner_is_nearest_alive(
        nodes in 5usize..80,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = PlaneNetwork::with_connectivity_radius(nodes, &mut rng);
        let p = net.random_point(&mut rng);
        let owner = net.owner_of(p).unwrap();
        let d = net.position(owner).distance(p);
        for i in 0..nodes {
            prop_assert!(net.position(NodeId::new(i)).distance(p) >= d - 1e-12);
        }
    }

    #[test]
    fn protocol_slot_supports_respect_scheme(
        seed in 0u64..300,
        scheme_idx in 0usize..3,
        m in 5usize..40,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(30, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let cfg = ProtocolConfig {
            scheme,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: m,
            fanout: SourceFanout::Log { factor: 1.5 },
            coeff_rep: CoeffRep::Dense,
            two_choices: seed % 2 == 0,
            node_capacity: None,
            shared_seed: seed,
        };
        let dep = predistribute(&net, &cfg, &sources, &mut rng).unwrap();
        prop_assert_eq!(dep.slots().len(), m);
        for slot in dep.slots() {
            for idx in slot.block.support() {
                let lvl = profile.level_of(idx);
                match scheme {
                    Scheme::Slc => prop_assert_eq!(lvl, slot.level),
                    Scheme::Plc => prop_assert!(lvl <= slot.level),
                    Scheme::Rlc => {} // anything goes
                }
            }
        }
        // Load accounting is consistent.
        let load = dep.load_per_node(net.node_count());
        prop_assert_eq!(load.iter().sum::<usize>(), m);
        prop_assert_eq!(
            load.iter().copied().max().unwrap_or(0),
            dep.metrics().max_node_load
        );
    }

    #[test]
    fn fault_accounting_is_internally_consistent(
        seed in 0u64..500,
        loss in 0.0f64..1.0,
        retries in 0usize..5,
        node_failure in 0.0f64..0.6,
        churn_after in 0usize..60,
        churn_fraction in 0.0f64..0.5,
    ) {
        use prlc_core::{PlcDecoder, PriorityDecoder};

        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = RingNetwork::new(40, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let dep = predistribute(&net, &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: 25,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        }, &sources, &mut rng).unwrap();
        net.fail_uniform(node_failure, &mut rng);
        // 40 nodes at <60% failure: survivors exist (p > 1 - 1e-8).
        prop_assume!(net.alive_count() > 0);
        let collector = net.random_alive_node(&mut rng).unwrap();

        let plan = FaultPlan {
            link: LinkModel { loss, timeout_hops: None },
            retry: RetryPolicy::with_retries(retries, 1),
            churn: vec![ChurnEvent { after_messages: churn_after, fraction: churn_fraction }],
            seed,
        };
        let mut faults = plan.session(net.node_count());
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
        let report = collect_with_faults(
            &net, &dep, &mut dec, collector, &CollectionConfig::default(),
            &mut faults, &mut rng,
        ).expect("collector is alive and a fresh session has no crashes");

        // Report accounting must be internally consistent under ANY
        // seeded fault plan.
        prop_assert_eq!(report.blocks_collected, report.levels_after_block.len());
        for w in report.levels_after_block.windows(2) {
            prop_assert!(w[1] >= w[0], "trajectory not monotone");
        }
        prop_assert!(report.nodes_queried <= net.alive_count());
        prop_assert!(report.unreachable_nodes + report.gave_up <= report.nodes_queried);
        // retries = attempts - 1 per query, at most `retries` each.
        prop_assert!(report.retries <= report.nodes_queried * retries);
        // Delivered queries lose exactly their retries; abandoned ones
        // one more; crashed-mid-query ones had every attempt lost.
        prop_assert!(report.retries <= report.lost_messages);
        prop_assert!(
            report.lost_messages
                <= report.retries + report.gave_up + report.unreachable_nodes,
            "lost {} vs retries {} gave_up {} unreachable {}",
            report.lost_messages, report.retries, report.gave_up,
            report.unreachable_nodes
        );
        prop_assert_eq!(report.final_levels(), dec.decoded_levels());
    }

    #[test]
    fn fanout_counts_are_within_bounds(
        factor in 0.1f64..5.0,
        eligible in 1usize..200,
        total in 2usize..2000,
    ) {
        let d = SourceFanout::Log { factor }.count_for_test(eligible, total);
        prop_assert!(d >= 1);
        prop_assert!(d <= eligible);
        let all = SourceFanout::All.count_for_test(eligible, total);
        prop_assert_eq!(all, eligible);
    }
}
