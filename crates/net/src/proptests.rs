//! Property tests for the network substrate and protocol invariants.

use proptest::prelude::*;

use prlc_core::{CoeffRep, PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::collect::{collect_with_faults, CollectionConfig};
use crate::fault::{ChurnEvent, FaultPlan, LinkModel, RetryPolicy};
use crate::network::{Network, NodeId};
use crate::plane::PlaneNetwork;
use crate::protocol::{predistribute, ProtocolConfig, SourceFanout};
use crate::ring::RingNetwork;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_routing_always_reaches_the_owner(
        nodes in 2usize..120,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(nodes, &mut rng);
        for _ in 0..10 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("healthy ring routes");
            prop_assert_eq!(Some(r.owner), net.owner_of(p));
            prop_assert!(r.hops <= 2 * 64);
        }
    }

    #[test]
    fn ring_survives_partial_failure(
        nodes in 10usize..100,
        seed in 0u64..500,
        fraction in 0.0f64..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = RingNetwork::new(nodes, &mut rng);
        let killed = net.fail_uniform(fraction, &mut rng);
        prop_assert_eq!(net.alive_count(), nodes - killed);
        if net.alive_count() > 0 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("ring with survivors routes");
            prop_assert!(net.is_alive(r.owner));
        }
    }

    #[test]
    fn plane_owner_is_nearest_alive(
        nodes in 5usize..80,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = PlaneNetwork::with_connectivity_radius(nodes, &mut rng);
        let p = net.random_point(&mut rng);
        let owner = net.owner_of(p).unwrap();
        let d = net.position(owner).distance(p);
        for i in 0..nodes {
            prop_assert!(net.position(NodeId::new(i)).distance(p) >= d - 1e-12);
        }
    }

    #[test]
    fn protocol_slot_supports_respect_scheme(
        seed in 0u64..300,
        scheme_idx in 0usize..3,
        m in 5usize..40,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(30, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let cfg = ProtocolConfig {
            scheme,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: m,
            fanout: SourceFanout::Log { factor: 1.5 },
            coeff_rep: CoeffRep::Dense,
            two_choices: seed % 2 == 0,
            node_capacity: None,
            shared_seed: seed,
        };
        let dep = predistribute(&net, &cfg, &sources, &mut rng).unwrap();
        prop_assert_eq!(dep.slots().len(), m);
        for slot in dep.slots() {
            for idx in slot.block.support() {
                let lvl = profile.level_of(idx);
                match scheme {
                    Scheme::Slc => prop_assert_eq!(lvl, slot.level),
                    Scheme::Plc => prop_assert!(lvl <= slot.level),
                    Scheme::Rlc => {} // anything goes
                }
            }
        }
        // Load accounting is consistent.
        let load = dep.load_per_node(net.node_count());
        prop_assert_eq!(load.iter().sum::<usize>(), m);
        prop_assert_eq!(
            load.iter().copied().max().unwrap_or(0),
            dep.metrics().max_node_load
        );
    }

    #[test]
    fn fault_accounting_is_internally_consistent(
        seed in 0u64..500,
        loss in 0.0f64..1.0,
        retries in 0usize..5,
        node_failure in 0.0f64..0.6,
        churn_after in 0usize..60,
        churn_fraction in 0.0f64..0.5,
    ) {
        use prlc_core::{PlcDecoder, PriorityDecoder};

        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = RingNetwork::new(40, &mut rng);
        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let dep = predistribute(&net, &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: 25,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        }, &sources, &mut rng).unwrap();
        net.fail_uniform(node_failure, &mut rng);
        // 40 nodes at <60% failure: survivors exist (p > 1 - 1e-8).
        prop_assume!(net.alive_count() > 0);
        let collector = net.random_alive_node(&mut rng).unwrap();

        let plan = FaultPlan {
            link: LinkModel { loss, timeout_hops: None },
            retry: RetryPolicy::with_retries(retries, 1),
            churn: vec![ChurnEvent { after_messages: churn_after, fraction: churn_fraction }],
            seed,
        };
        let mut faults = plan.session(net.node_count());
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
        let report = collect_with_faults(
            &net, &dep, &mut dec, collector, &CollectionConfig::default(),
            &mut faults, &mut rng,
        ).expect("collector is alive and a fresh session has no crashes");

        // Report accounting must be internally consistent under ANY
        // seeded fault plan.
        prop_assert_eq!(report.blocks_collected, report.levels_after_block.len());
        for w in report.levels_after_block.windows(2) {
            prop_assert!(w[1] >= w[0], "trajectory not monotone");
        }
        prop_assert!(report.nodes_queried <= net.alive_count());
        prop_assert!(report.unreachable_nodes + report.gave_up <= report.nodes_queried);
        // retries = attempts - 1 per query, at most `retries` each.
        prop_assert!(report.retries <= report.nodes_queried * retries);
        // Delivered queries lose exactly their retries; abandoned ones
        // one more; crashed-mid-query ones had every attempt lost.
        prop_assert!(report.retries <= report.lost_messages);
        prop_assert!(
            report.lost_messages
                <= report.retries + report.gave_up + report.unreachable_nodes,
            "lost {} vs retries {} gave_up {} unreachable {}",
            report.lost_messages, report.retries, report.gave_up,
            report.unreachable_nodes
        );
        prop_assert_eq!(report.final_levels(), dec.decoded_levels());
    }

    #[test]
    fn targeted_adversary_intensity_monotonically_degrades_decoding(
        seed in 0u64..300,
        kills in 1usize..12,
        extra in 1usize..8,
        focus in 0.0f64..1.0,
    ) {
        use prlc_core::{PlcDecoder, PriorityDecoder};

        use crate::adversary::{
            observe_deployment, Adversary, AdversaryPlan, AdversaryStrategy,
        };

        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(40, &mut rng);
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let dep = predistribute(&net, &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: 25,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        }, &sources, &mut rng).unwrap();
        let collector = net.random_alive_node(&mut rng).unwrap();

        // Same adversary seed at two kill budgets. Kill lists are built
        // pick-by-pick on the adversary RNG, so the smaller budget's
        // list is a prefix of the larger one's: crash sets are nested
        // and decoding can only get (weakly) worse per run — not just
        // on average.
        let run_with_kills = |k: usize| {
            let mut session = FaultPlan::none().session(net.node_count());
            let mut adv = Adversary::new(AdversaryPlan {
                strategy: AdversaryStrategy::Targeted { kills: k, focus },
                after_messages: 0,
                seed,
            }, net.node_count());
            let chosen = adv.arm_observed(&observe_deployment(&dep), &mut session);
            session.advance_steps(0);
            let mut dec: PlcDecoder<Gf256, ()> =
                PlcDecoder::coefficients_only(profile.clone());
            let mut crng = StdRng::seed_from_u64(seed ^ 0x0517);
            let _ = collect_with_faults(
                &net, &dep, &mut dec, collector,
                &CollectionConfig { target_levels: Some(4) },
                &mut session, &mut crng,
            );
            (chosen, dec.decoded_levels())
        };
        let (few_list, few_levels) = run_with_kills(kills);
        let (many_list, many_levels) = run_with_kills(kills + extra);
        prop_assert!(many_list.len() >= few_list.len());
        prop_assert_eq!(&many_list[..few_list.len()], &few_list[..]);
        prop_assert!(
            many_levels <= few_levels,
            "kills {} decoded {} but kills {} decoded {}",
            kills, few_levels, kills + extra, many_levels
        );
        // Level-index monotonicity of the reported survival indicators:
        // PLC decodes prefixes, so surviving level k+1 implies level k.
        let survival: Vec<bool> = (1..=3).map(|k| many_levels >= k).collect();
        for w in survival.windows(2) {
            prop_assert!(w[0] || !w[1]);
        }
    }

    #[test]
    fn region_adversary_fraction_coupling_is_monotone(
        seed in 0u64..300,
        frac_lo in 0.0f64..0.5,
        bump in 0.0f64..0.5,
        segment_len in 1usize..6,
    ) {
        use prlc_core::{PlcDecoder, PriorityDecoder};

        use crate::adversary::{Adversary, AdversaryPlan, AdversaryStrategy};
        use crate::fault::FaultSession;

        let profile = PriorityProfile::new(vec![2, 3, 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let net = RingNetwork::new(40, &mut rng);
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 9];
        let dep = predistribute(&net, &ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(3),
            locations: 25,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: seed,
        }, &sources, &mut rng).unwrap();
        let collector = net.random_alive_node(&mut rng).unwrap();

        // Same fault seed at two outage intensities. Anchor draws are
        // snapshotted against the pre-strike down set on the session
        // RNG, so gen_bool(lo) true implies gen_bool(hi) true on the
        // same draw: the lo crash set is a subset of the hi crash set.
        let run_with_fraction = |fraction: f64| {
            let mut session: FaultSession = FaultPlan::none().session(net.node_count());
            let mut adv = Adversary::new(AdversaryPlan {
                strategy: AdversaryStrategy::Region { fraction, segment_len },
                after_messages: 0,
                seed,
            }, net.node_count());
            adv.arm_topology(&net, collector, &mut session);
            session.advance_steps(0);
            let down: Vec<bool> =
                (0..net.node_count()).map(|i| session.is_down(NodeId::new(i))).collect();
            let mut dec: PlcDecoder<Gf256, ()> =
                PlcDecoder::coefficients_only(profile.clone());
            let mut crng = StdRng::seed_from_u64(seed ^ 0x0517);
            let _ = collect_with_faults(
                &net, &dep, &mut dec, collector,
                &CollectionConfig { target_levels: Some(4) },
                &mut session, &mut crng,
            );
            (down, dec.decoded_levels())
        };
        let (down_lo, levels_lo) = run_with_fraction(frac_lo);
        let (down_hi, levels_hi) = run_with_fraction((frac_lo + bump).min(1.0));
        for i in 0..down_lo.len() {
            prop_assert!(!down_lo[i] || down_hi[i], "crash sets not nested at node {}", i);
        }
        prop_assert!(
            levels_hi <= levels_lo,
            "fraction {} decoded {} but fraction {} decoded {}",
            frac_lo, levels_lo, (frac_lo + bump).min(1.0), levels_hi
        );
    }

    #[test]
    fn fanout_counts_are_within_bounds(
        factor in 0.1f64..5.0,
        eligible in 1usize..200,
        total in 2usize..2000,
    ) {
        let d = SourceFanout::Log { factor }.count_for_test(eligible, total);
        prop_assert!(d >= 1);
        prop_assert!(d <= eligible);
        let all = SourceFanout::All.count_for_test(eligible, total);
        prop_assert_eq!(all, eligible);
    }
}
