//! Synchronous reference implementations of the protocol sessions.
//!
//! The public entry points ([`crate::predistribute_with_faults`],
//! [`crate::collect_with_faults`], [`crate::refresh_with_faults`]) are
//! thin drivers over the event-driven runtime in [`crate::event`]. The
//! functions re-exported here are the original monolithic loops, kept
//! verbatim as ground truth: `tests/event_equivalence.rs` byte-diffs
//! reports, slots, metrics snapshots and trace dumps of the two paths
//! under pinned seeds. They are *not* deprecated — they are the
//! executable specification the scheduler is held to.

pub use crate::collect::collect_with_faults_sync as collect_with_faults;
pub use crate::protocol::predistribute_with_faults_sync as predistribute_with_faults;
pub use crate::refresh::refresh_with_faults_sync as refresh_with_faults;
