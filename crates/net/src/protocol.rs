//! The pre-distribution protocol (Sec. 4 of the paper).
//!
//! All nodes share a random seed, from which everyone derives the same
//! `M` random points of the geometric space; each point stores exactly
//! one coded block at the node owning it. The `M` locations are split
//! into `n` parts sized by the priority distribution (Fig. 3); a source
//! block of level `i` is geometrically routed only to the locations of:
//!
//! * part `i` (SLC — coded blocks of a level combine only that level), or
//! * parts `i..n` (PLC — a level-`k` coded block combines levels `1..=k`),
//!
//! where each receiving cache performs the incremental encoding step
//! `c ← c + β·x`. Load across nodes is balanced with "the power of two
//! choices" (Byers et al.): each slot derives *two* candidate points and
//! keeps the one whose owner currently holds fewer blocks.
//!
//! Bandwidth efficiency comes from the Dimakis et al. result the paper
//! invokes: `O(ln N)` nonzero coefficients per coded block suffice, so a
//! source block need only reach `Θ(ln N)` of its eligible locations
//! ([`SourceFanout::Log`]) instead of all of them.

use prlc_core::{CodedBlock, CoeffRep, PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::GfElem;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::event::NodeScratch;
use crate::fault::{DeliveryOutcome, FaultPlan, FaultSession};
use crate::network::{Network, NodeId};

/// How many of its eligible storage locations each source block visits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceFanout {
    /// Every eligible location (the dense construction).
    All,
    /// `ceil(factor · ln N)` locations chosen uniformly among the
    /// eligible ones (clamped to `[1, eligible]`) — the sparse protocol.
    Log {
        /// The constant `c` in `c · ln N`.
        factor: f64,
    },
}

impl SourceFanout {
    /// Test-only visibility shim for [`Self::count`].
    #[cfg(test)]
    pub(crate) fn count_for_test(self, eligible: usize, n_total: usize) -> usize {
        self.count(eligible, n_total)
    }

    pub(crate) fn count(self, eligible: usize, n_total: usize) -> usize {
        match self {
            SourceFanout::All => eligible,
            SourceFanout::Log { factor } => {
                let d = (factor * (n_total.max(2) as f64).ln()).ceil() as usize;
                d.clamp(1, eligible)
            }
        }
    }
}

/// Configuration of one pre-distribution run.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The coding scheme (SLC, PLC, or RLC as the non-priority baseline).
    pub scheme: Scheme,
    /// Level sizes of the source data.
    pub profile: PriorityProfile,
    /// The designed priority distribution sizing the location parts.
    pub distribution: PriorityDistribution,
    /// Total number of storage locations `M` (bounded by the network's
    /// aggregate cache budget `W · d`).
    pub locations: usize,
    /// Source dissemination fanout (dense or `Θ(ln N)`).
    pub fanout: SourceFanout,
    /// Coefficient-row storage for the cached coded blocks: dense
    /// vectors or sorted `(index, value)` pairs. Purely a physical
    /// representation choice — every decode result, report, metric and
    /// trace is identical either way (pinned by
    /// `tests/coeffrep_equivalence.rs`).
    pub coeff_rep: CoeffRep,
    /// Whether to balance node load with the power of two choices.
    pub two_choices: bool,
    /// Per-node cache capacity `d` (Sec. 4: "if there are W nodes in the
    /// network, and each node can store d coded blocks, M should be
    /// smaller than W·d"). `None` leaves capacity unbounded. A full node
    /// bounces the location to the next derived point.
    pub node_capacity: Option<usize>,
    /// The network-wide shared seed from which the storage locations are
    /// derived.
    pub shared_seed: u64,
}

/// Errors reported by the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The network has no alive nodes to store anything on.
    NetworkEmpty,
    /// The source count does not match the profile.
    SourceCountMismatch {
        /// Blocks implied by the profile.
        expected: usize,
        /// Blocks supplied.
        got: usize,
    },
    /// Profile and distribution disagree on the number of levels.
    LevelMismatch,
    /// The aggregate cache budget `W·d` cannot hold `M` coded blocks.
    InsufficientCapacity {
        /// Locations requested (`M`).
        needed: usize,
        /// Aggregate capacity of the alive nodes (`W·d`).
        available: usize,
    },
    /// The event scheduler drained without the session completing — an
    /// internal-invariant breach (a well-formed session machine yields
    /// or finishes on every poll), surfaced instead of panicking.
    Stalled,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NetworkEmpty => write!(f, "no alive nodes in the network"),
            ProtocolError::SourceCountMismatch { expected, got } => {
                write!(f, "expected {expected} source blocks, got {got}")
            }
            ProtocolError::LevelMismatch => {
                write!(f, "profile and priority distribution level counts differ")
            }
            ProtocolError::InsufficientCapacity { needed, available } => write!(
                f,
                "network cache capacity {available} cannot hold {needed} coded blocks"
            ),
            ProtocolError::Stalled => {
                write!(f, "event scheduler drained before the session completed")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// SplitMix64-style domain separation for the shared location seed.
pub(crate) fn mix_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0x50524C_433A4C4F; // "PRLC:LO"
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One storage location: a derived point, its owning node and the coded
/// block accumulated there.
#[derive(Debug, Clone)]
pub struct StorageSlot<F: GfElem> {
    /// The node caching this block.
    pub node: NodeId,
    /// The priority level of the coded block stored here (which part of
    /// the `M` locations this slot belongs to).
    pub level: usize,
    /// The incrementally accumulated coded block.
    pub block: CodedBlock<F>,
}

/// Cost and balance metrics of one pre-distribution run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DistributionMetrics {
    /// Messages sent (one per source-block delivery attempt that found a
    /// route).
    pub messages: usize,
    /// Total hops across all delivered messages.
    pub total_hops: usize,
    /// Deliveries that failed (no route to the location's owner, or the
    /// owner crashed mid-run).
    pub failed_deliveries: usize,
    /// Maximum number of coded blocks cached on any single node.
    pub max_node_load: usize,
    /// Transmissions lost in transit or timed out (fault injection).
    pub lost_messages: usize,
    /// Retransmissions spent recovering lost deliveries.
    pub retries: usize,
    /// Caching nodes found crashed by the fault plan when a delivery was
    /// attempted (a subset of `failed_deliveries`).
    pub unreachable_nodes: usize,
    /// Deliveries abandoned after exhausting the retry budget (their
    /// slot never folds the source block in).
    pub gave_up: usize,
}

impl DistributionMetrics {
    /// Mean hops per delivered message.
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }
}

/// The in-network state after pre-distribution: every storage slot with
/// its accumulated coded block, plus run metrics.
#[derive(Debug, Clone)]
pub struct Deployment<F: GfElem> {
    slots: Vec<StorageSlot<F>>,
    metrics: DistributionMetrics,
    profile: PriorityProfile,
}

impl<F: GfElem> Deployment<F> {
    /// Builds a deployment directly from hand-made storage slots, with
    /// empty run metrics.
    ///
    /// This bypasses the protocol entirely; it exists so tests and
    /// validation harnesses can place arbitrary coded blocks on
    /// arbitrary nodes (e.g. iid-sampled levels, which the real
    /// protocol's deterministic `allocate` split never produces) and
    /// then drive [`collect_with_faults`](crate::collect_with_faults)
    /// over them.
    pub fn from_slots(slots: Vec<StorageSlot<F>>, profile: PriorityProfile) -> Self {
        Deployment {
            slots,
            metrics: DistributionMetrics::default(),
            profile,
        }
    }

    /// Assembles a deployment from a completed session's parts (the
    /// event machine's finalize step).
    pub(crate) fn assemble(
        slots: Vec<StorageSlot<F>>,
        metrics: DistributionMetrics,
        profile: PriorityProfile,
    ) -> Self {
        Deployment {
            slots,
            metrics,
            profile,
        }
    }

    /// All storage slots (one per derived location).
    pub fn slots(&self) -> &[StorageSlot<F>] {
        &self.slots
    }

    /// Mutable slot access for the repair protocol.
    pub(crate) fn slots_mut(&mut self) -> &mut [StorageSlot<F>] {
        &mut self.slots
    }

    /// The profile the deployment was encoded for.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// Run metrics.
    pub fn metrics(&self) -> &DistributionMetrics {
        &self.metrics
    }

    /// Indices of slots whose caching node is still alive in `net`.
    pub fn surviving_slots<N: Network>(&self, net: &N) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| net.is_alive(s.node))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-node cached-block counts (index = dense node id).
    pub fn load_per_node(&self, node_count: usize) -> Vec<usize> {
        let mut load = vec![0usize; node_count];
        for s in &self.slots {
            load[s.node.index()] += 1;
        }
        load
    }
}

/// Runs the pre-distribution protocol over `net`.
///
/// `sources[j]` is the payload of source block `j` (levels are assigned
/// by `cfg.profile`; payloads may be empty for decodability-only runs).
/// Each source block originates at a uniformly random alive node, as in
/// the paper's model where "each node produces measurement data over
/// time".
///
/// # Errors
///
/// Returns a [`ProtocolError`] when the network is empty or the
/// configuration is inconsistent.
pub fn predistribute<N: Network, F: GfElem, R: Rng + ?Sized>(
    net: &N,
    cfg: &ProtocolConfig,
    sources: &[Vec<F>],
    rng: &mut R,
) -> Result<Deployment<F>, ProtocolError> {
    let mut faults = FaultPlan::none().session(net.node_count());
    predistribute_with_faults(net, cfg, sources, &mut faults, rng)
}

/// [`predistribute`] over a faulty transport: every source-block
/// delivery is subject to the session's link model and retry budget, and
/// churn events fire between deliveries. A delivery that is lost beyond
/// its retry budget leaves its slot without that source's contribution
/// (the coded block simply misses one term — still a valid, if thinner,
/// random combination); a delivery to a crashed owner fails outright.
/// The metrics account for every lost transmission, retry and abandoned
/// delivery.
///
/// Under [`FaultPlan::none`] this is bit-identical to [`predistribute`]:
/// the shared-seed location derivation is never subject to faults (it is
/// a local computation every node performs independently), and the fault
/// RNG stream is separate from `rng`.
///
/// # Errors
///
/// Returns a [`ProtocolError`] when the network is empty or the
/// configuration is inconsistent.
pub fn predistribute_with_faults<N: Network, F: GfElem, R: Rng + ?Sized>(
    net: &N,
    cfg: &ProtocolConfig,
    sources: &[Vec<F>],
    faults: &mut FaultSession,
    rng: &mut R,
) -> Result<Deployment<F>, ProtocolError> {
    let mut machine = crate::event::PredistributeMachine::new(net, cfg, sources, faults, rng)?;
    let start = machine.start_tick();
    match crate::event::run_to_quiescence(
        &mut machine,
        start,
        crate::event::ProtocolEvent::NextSource,
    ) {
        Some(result) => result,
        None => Err(ProtocolError::Stalled),
    }
}

/// Everything both dissemination paths derive *locally* before any
/// message is sent: validation, the shared-seed location derivation
/// (phase 1) and the per-level slot split (phase 2).
pub(crate) struct SessionSetup<P, F: GfElem> {
    /// Derived storage points, one per location.
    pub(crate) points: Vec<P>,
    /// Storage slots (owner, level, empty block), one per location.
    pub(crate) slots: Vec<StorageSlot<F>>,
    /// Part boundaries in slot index space (`counts` prefix sums).
    pub(crate) part_start: Vec<usize>,
    /// Lazily instantiated per-node load counters from phase 1.
    pub(crate) scratch: NodeScratch,
    /// The message-step tick the session starts at.
    pub(crate) span_start: u64,
}

/// Validates `cfg` and runs phases 1–2 of the protocol. Shared by the
/// synchronous reference path and the event machine so the two can
/// never drift on the local computation.
pub(crate) fn session_setup<N: Network, F: GfElem>(
    net: &N,
    cfg: &ProtocolConfig,
    source_count: usize,
    faults: &FaultSession,
) -> Result<SessionSetup<N::Point, F>, ProtocolError> {
    let n_blocks = cfg.profile.total_blocks();
    if source_count != n_blocks {
        return Err(ProtocolError::SourceCountMismatch {
            expected: n_blocks,
            got: source_count,
        });
    }
    if cfg.profile.num_levels() != cfg.distribution.num_levels() {
        return Err(ProtocolError::LevelMismatch);
    }
    if net.alive_count() == 0 {
        return Err(ProtocolError::NetworkEmpty);
    }
    let span_start = faults.steps() as u64;

    // Phase 1: derive the M storage locations from the shared seed.
    // Every node can reproduce this sequence, which is how the protocol
    // "memorizes the same set of caching nodes without actually storing
    // the addresses of all of them". The seed is domain-separated so the
    // location stream can never alias another StdRng stream a caller
    // happens to have seeded with the same integer (e.g. the RNG that
    // drew the ring's node IDs).
    let mut seed_rng = StdRng::seed_from_u64(mix_seed(cfg.shared_seed));
    if let Some(d) = cfg.node_capacity {
        if net.alive_count().saturating_mul(d) < cfg.locations {
            return Err(ProtocolError::InsufficientCapacity {
                needed: cfg.locations,
                available: net.alive_count().saturating_mul(d),
            });
        }
    }
    let capacity = cfg.node_capacity.unwrap_or(usize::MAX);
    // Per-node load is instantiated lazily on first touch: a session
    // placing M locations touches O(M) nodes, never the full table —
    // the dense `vec![0; node_count]` this replaces was the O(N) cost
    // that capped large-N runs. Reads of untouched nodes return 0,
    // exactly what the dense table held.
    let mut load = NodeScratch::new();
    let mut points: Vec<N::Point> = Vec::with_capacity(cfg.locations);
    let mut owners: Vec<NodeId> = Vec::with_capacity(cfg.locations);
    for _ in 0..cfg.locations {
        // Derive candidate points until one lands on a node with spare
        // capacity; with total capacity >= M this terminates (each draw
        // succeeds with probability >= 1 - (M-1)/(W·d) over the owner
        // distribution, and every node deriving the same seed walks the
        // identical rejection sequence).
        let (point, owner) = loop {
            let p1 = net.random_point(&mut seed_rng);
            let o1 = net.owner_of(p1).ok_or(ProtocolError::NetworkEmpty)?;
            if cfg.two_choices {
                let p2 = net.random_point(&mut seed_rng);
                let o2 = net.owner_of(p2).ok_or(ProtocolError::NetworkEmpty)?;
                let c1 = load.load(o1) < capacity;
                let c2 = load.load(o2) < capacity;
                match (c1, c2) {
                    (true, true) => {
                        if load.load(o2) < load.load(o1) {
                            break (p2, o2);
                        }
                        break (p1, o1);
                    }
                    (true, false) => break (p1, o1),
                    (false, true) => break (p2, o2),
                    (false, false) => continue,
                }
            }
            if load.load(o1) < capacity {
                break (p1, o1);
            }
        };
        load.bump(owner);
        points.push(point);
        owners.push(owner);
    }

    // Phase 2: split the locations into per-level parts (Fig. 3).
    let counts = cfg.distribution.allocate(cfg.locations);
    let mut slot_level = Vec::with_capacity(cfg.locations);
    for (level, &c) in counts.iter().enumerate() {
        slot_level.extend(std::iter::repeat_n(level, c));
    }
    let slots: Vec<StorageSlot<F>> = owners
        .iter()
        .zip(&slot_level)
        .map(|(&node, &level)| StorageSlot {
            node,
            level,
            block: CodedBlock::empty_with(level, n_blocks, cfg.coeff_rep),
        })
        .collect();

    // Part boundaries in slot index space.
    let mut part_start = vec![0usize; counts.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        part_start[i + 1] = part_start[i] + c;
    }

    Ok(SessionSetup {
        points,
        slots,
        part_start,
        scratch: load,
        span_start,
    })
}

/// Per-session metric and trace emission shared by the synchronous
/// reference path and the event machine — one call site, so the two
/// paths' observability output is byte-identical by construction.
pub(crate) fn emit_predistribute_obs(
    metrics: &DistributionMetrics,
    nodes_touched: usize,
    span_start: u64,
    span_end: u64,
) {
    if prlc_obs::enabled() {
        // Per-session fault accounting, mirroring the metrics struct.
        prlc_obs::counter!("net.predistribute.sessions").incr();
        prlc_obs::counter!("net.predistribute.messages").add(metrics.messages as u64);
        prlc_obs::counter!("net.predistribute.failed_deliveries")
            .add(metrics.failed_deliveries as u64);
        prlc_obs::counter!("net.predistribute.lost_messages").add(metrics.lost_messages as u64);
        prlc_obs::counter!("net.predistribute.retries").add(metrics.retries as u64);
        prlc_obs::counter!("net.predistribute.gave_up").add(metrics.gave_up as u64);
        prlc_obs::counter!("net.predistribute.unreachable_nodes")
            .add(metrics.unreachable_nodes as u64);
        prlc_obs::histogram!("net.predistribute.max_node_load")
            .observe(metrics.max_node_load as u64);
        // Lazily instantiated node entries this session — the memory
        // bound the event runtime guarantees (O(active), not O(N)).
        prlc_obs::counter!("net.event.nodes_touched").add(nodes_touched as u64);
    }
    if prlc_obs::trace::enabled() {
        // Causal span on the session's message-step clock.
        prlc_obs::trace_span!(
            "net.predistribute.session",
            span_start,
            span_end,
            messages: metrics.messages as u64,
            failed: metrics.failed_deliveries as u64,
        );
    }
}

/// The synchronous reference implementation of
/// [`predistribute_with_faults`]: the original monolithic call tree,
/// kept verbatim as the ground truth the event-driven runtime is
/// byte-diffed against (see `tests/event_equivalence.rs`). Exported as
/// [`crate::sync::predistribute_with_faults`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] when the network is empty or the
/// configuration is inconsistent.
pub fn predistribute_with_faults_sync<N: Network, F: GfElem, R: Rng + ?Sized>(
    net: &N,
    cfg: &ProtocolConfig,
    sources: &[Vec<F>],
    faults: &mut FaultSession,
    rng: &mut R,
) -> Result<Deployment<F>, ProtocolError> {
    let SessionSetup {
        points,
        mut slots,
        part_start,
        scratch,
        span_start,
    } = session_setup::<N, F>(net, cfg, sources.len(), faults)?;
    let n_blocks = cfg.profile.total_blocks();

    // Phase 3: disseminate each source block to its eligible locations;
    // each receiving cache folds it in with a fresh random coefficient.
    let mut metrics = DistributionMetrics::default();
    let n_levels = cfg.profile.num_levels();
    for (j, data) in sources.iter().enumerate() {
        let level = cfg.profile.level_of(j);
        let eligible: std::ops::Range<usize> = match cfg.scheme {
            // SLC: only part `level` may contain this block.
            Scheme::Slc => part_start[level]..part_start[level + 1],
            // PLC: parts `level..n` (Fig. 3(b)).
            Scheme::Plc => part_start[level]..part_start[n_levels],
            // RLC baseline: every coded block combines everything.
            Scheme::Rlc => 0..cfg.locations,
        };
        let eligible_len = eligible.len();
        if eligible_len == 0 {
            continue; // a zero-mass part: nothing stores this level
        }
        let origin = net
            .random_alive_node(rng)
            .ok_or(ProtocolError::NetworkEmpty)?;
        let fanout = cfg.fanout.count(eligible_len, n_blocks);
        for pick in sample(rng, eligible_len, fanout) {
            let slot_idx = eligible.start + pick;
            match net.route(origin, points[slot_idx]) {
                Some(route) => {
                    debug_assert_eq!(route.owner, slots[slot_idx].node);
                    let delivery = faults.attempt(slots[slot_idx].node, route.hops);
                    metrics.lost_messages += delivery.lost;
                    metrics.retries += delivery.attempts.saturating_sub(1);
                    match delivery.outcome {
                        DeliveryOutcome::Delivered => {
                            metrics.messages += 1;
                            metrics.total_hops += delivery.cost_hops;
                            let beta = F::random_nonzero(rng);
                            slots[slot_idx].block.accumulate(j, beta, data);
                        }
                        DeliveryOutcome::Unreachable => {
                            metrics.failed_deliveries += 1;
                            metrics.unreachable_nodes += 1;
                        }
                        DeliveryOutcome::GaveUp => {
                            metrics.failed_deliveries += 1;
                            metrics.gave_up += 1;
                        }
                    }
                }
                None => metrics.failed_deliveries += 1,
            }
        }
    }

    metrics.max_node_load = scratch.max_load();
    emit_predistribute_obs(
        &metrics,
        scratch.touched(),
        span_start,
        faults.steps() as u64,
    );

    Ok(Deployment {
        slots,
        metrics,
        profile: cfg.profile.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingNetwork;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(scheme: Scheme, m: usize) -> ProtocolConfig {
        ProtocolConfig {
            scheme,
            profile: PriorityProfile::new(vec![2, 3, 5]).unwrap(),
            distribution: PriorityDistribution::uniform(3),
            locations: m,
            fanout: SourceFanout::All,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 42,
        }
    }

    fn sources(rng: &mut StdRng) -> Vec<Vec<Gf256>> {
        (0..10)
            .map(|_| (0..2).map(|_| Gf256::random(rng)).collect())
            .collect()
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_predistribute() {
        use crate::fault::FaultPlan;
        for scheme in Scheme::ALL {
            let mut rng = StdRng::seed_from_u64(91);
            let net = RingNetwork::new(50, &mut rng);
            let srcs = sources(&mut rng);

            let mut rng_a = StdRng::seed_from_u64(7);
            let dep_a = predistribute(&net, &config(scheme, 30), &srcs, &mut rng_a).unwrap();

            let mut rng_b = StdRng::seed_from_u64(7);
            let mut faults = FaultPlan::none().session(net.node_count());
            let dep_b = predistribute_with_faults(
                &net,
                &config(scheme, 30),
                &srcs,
                &mut faults,
                &mut rng_b,
            )
            .unwrap();

            assert_eq!(dep_a.metrics(), dep_b.metrics(), "{scheme}");
            assert_eq!(
                format!("{:?}", dep_a.slots()),
                format!("{:?}", dep_b.slots()),
                "{scheme}: slot state diverged under the none plan"
            );
            use rand::Rng;
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "{scheme}");
        }
    }

    #[test]
    fn lossy_predistribution_accounts_for_failures() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let mut rng = StdRng::seed_from_u64(92);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = sources(&mut rng);

        let mut faults = FaultPlan::lossy(0.6, RetryPolicy::none(), 13).session(net.node_count());
        let mut rng_l = StdRng::seed_from_u64(8);
        let dep = predistribute_with_faults(
            &net,
            &config(Scheme::Plc, 30),
            &srcs,
            &mut faults,
            &mut rng_l,
        )
        .unwrap();
        let m = dep.metrics();
        assert!(m.gave_up > 0, "{m:?}");
        assert_eq!(m.lost_messages, m.gave_up + m.retries);
        assert_eq!(m.failed_deliveries, m.gave_up + m.unreachable_nodes);
        // Abandoned deliveries leave some slots thinner than the dense
        // fanout would: total accumulation messages dropped.
        let mut rng_c = StdRng::seed_from_u64(8);
        let clean = predistribute(&net, &config(Scheme::Plc, 30), &srcs, &mut rng_c).unwrap();
        assert!(m.messages < clean.metrics().messages);
    }

    #[test]
    fn slc_slots_only_hold_their_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = sources(&mut rng);
        let dep = predistribute(&net, &config(Scheme::Slc, 30), &srcs, &mut rng).unwrap();
        assert_eq!(dep.slots().len(), 30);
        let profile = dep.profile().clone();
        for slot in dep.slots() {
            for idx in slot.block.support() {
                assert_eq!(
                    profile.level_of(idx),
                    slot.level,
                    "SLC slot at level {} contains block {}",
                    slot.level,
                    idx
                );
            }
        }
    }

    #[test]
    fn plc_slots_hold_prefix_levels_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = sources(&mut rng);
        let dep = predistribute(&net, &config(Scheme::Plc, 30), &srcs, &mut rng).unwrap();
        let profile = dep.profile().clone();
        for slot in dep.slots() {
            for idx in slot.block.support() {
                assert!(
                    profile.level_of(idx) <= slot.level,
                    "PLC slot at level {} contains block {} of a lower level",
                    slot.level,
                    idx
                );
            }
        }
    }

    #[test]
    fn dense_fanout_fills_every_eligible_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = sources(&mut rng);
        let dep = predistribute(&net, &config(Scheme::Plc, 30), &srcs, &mut rng).unwrap();
        // On a healthy ring every delivery succeeds, so a PLC slot of
        // level l combines *all* blocks of levels 0..=l (coefficients can
        // cancel to zero only with probability 10/255 per entry; allow a
        // a little slack by checking total degree).
        assert_eq!(dep.metrics().failed_deliveries, 0);
        let profile = dep.profile().clone();
        let mut exact = 0;
        for slot in dep.slots() {
            let expect = profile.bound(slot.level + 1);
            if slot.block.degree() == expect {
                exact += 1;
            }
        }
        assert!(exact * 10 >= dep.slots().len() * 9, "{exact}/30 slots full");
    }

    #[test]
    fn payloads_are_consistent_linear_combinations() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = RingNetwork::new(40, &mut rng);
        let srcs = sources(&mut rng);
        let dep = predistribute(&net, &config(Scheme::Plc, 20), &srcs, &mut rng).unwrap();
        for slot in dep.slots() {
            if slot.block.is_empty() {
                continue;
            }
            let mut want = vec![Gf256::ZERO; 2];
            for (c, s) in slot.block.coefficients.to_dense_vec().iter().zip(&srcs) {
                Gf256::axpy(&mut want, *c, s);
            }
            assert_eq!(slot.block.payload, want);
        }
    }

    #[test]
    fn two_choices_reduces_max_load() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = RingNetwork::new(64, &mut rng);
        let srcs = sources(&mut rng);
        let mut one = config(Scheme::Slc, 256);
        one.two_choices = false;
        let mut two = config(Scheme::Slc, 256);
        two.two_choices = true;
        // Average over several seeds to keep the comparison stable.
        let mut sum_one = 0usize;
        let mut sum_two = 0usize;
        for seed in 0..5u64 {
            one.shared_seed = seed;
            two.shared_seed = seed;
            let d1 = predistribute(&net, &one, &srcs, &mut rng).unwrap();
            let d2 = predistribute(&net, &two, &srcs, &mut rng).unwrap();
            sum_one += d1.metrics().max_node_load;
            sum_two += d2.metrics().max_node_load;
        }
        assert!(
            sum_two < sum_one,
            "two choices {sum_two} not better than one {sum_one}"
        );
    }

    #[test]
    fn sparse_fanout_sends_fewer_messages() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = RingNetwork::new(50, &mut rng);
        let srcs = sources(&mut rng);
        let dense = predistribute(&net, &config(Scheme::Plc, 40), &srcs, &mut rng).unwrap();
        let mut sparse_cfg = config(Scheme::Plc, 40);
        sparse_cfg.fanout = SourceFanout::Log { factor: 1.0 };
        let sparse = predistribute(&net, &sparse_cfg, &srcs, &mut rng).unwrap();
        assert!(
            sparse.metrics().messages < dense.metrics().messages,
            "sparse {} >= dense {}",
            sparse.metrics().messages,
            dense.metrics().messages
        );
    }

    #[test]
    fn config_errors_are_reported() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = RingNetwork::new(10, &mut rng);
        let srcs = sources(&mut rng);

        let bad_sources: Vec<Vec<Gf256>> = srcs[..5].to_vec();
        assert_eq!(
            predistribute(&net, &config(Scheme::Slc, 10), &bad_sources, &mut rng).unwrap_err(),
            ProtocolError::SourceCountMismatch {
                expected: 10,
                got: 5
            }
        );

        let mut bad = config(Scheme::Slc, 10);
        bad.distribution = PriorityDistribution::uniform(2);
        assert_eq!(
            predistribute(&net, &bad, &srcs, &mut rng).unwrap_err(),
            ProtocolError::LevelMismatch
        );

        let mut dead = RingNetwork::new(4, &mut rng);
        dead.fail_arc(0, 1.0);
        assert_eq!(
            predistribute(&dead, &config(Scheme::Slc, 10), &srcs, &mut rng).unwrap_err(),
            ProtocolError::NetworkEmpty
        );
    }

    #[test]
    fn surviving_slots_track_failures() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = RingNetwork::new(30, &mut rng);
        let srcs = sources(&mut rng);
        let dep = predistribute(&net, &config(Scheme::Plc, 25), &srcs, &mut rng).unwrap();
        assert_eq!(dep.surviving_slots(&net).len(), 25);
        net.fail_uniform(0.5, &mut rng);
        let surviving = dep.surviving_slots(&net);
        assert!(surviving.len() < 25);
        for &i in &surviving {
            assert!(net.is_alive(dep.slots()[i].node));
        }
    }

    #[test]
    fn capacity_limits_are_enforced() {
        let mut rng = StdRng::seed_from_u64(10);
        let net = RingNetwork::new(16, &mut rng);
        let srcs = sources(&mut rng);

        // Budget too small: W*d = 16 < 30 locations.
        let mut cfg = config(Scheme::Plc, 30);
        cfg.node_capacity = Some(1);
        assert_eq!(
            predistribute(&net, &cfg, &srcs, &mut rng).unwrap_err(),
            ProtocolError::InsufficientCapacity {
                needed: 30,
                available: 16
            }
        );

        // Exactly enough: every node ends at its cap.
        let mut cfg = config(Scheme::Plc, 16);
        cfg.node_capacity = Some(1);
        let dep = predistribute(&net, &cfg, &srcs, &mut rng).unwrap();
        let load = dep.load_per_node(net.node_count());
        assert!(load.iter().all(|&l| l <= 1), "{load:?}");
        assert_eq!(dep.metrics().max_node_load, 1);

        // Loose cap: respected but not binding.
        let mut cfg = config(Scheme::Plc, 20);
        cfg.node_capacity = Some(3);
        cfg.two_choices = false;
        let dep = predistribute(&net, &cfg, &srcs, &mut rng).unwrap();
        assert!(dep.metrics().max_node_load <= 3);
        assert_eq!(dep.slots().len(), 20);
    }

    #[test]
    fn deployment_is_reproducible_from_shared_seed() {
        // Same shared seed + same network -> identical location/owner
        // assignment (the protocol's core trick). Source-side randomness
        // differs, so compare slot owners and levels only.
        let mut rng1 = StdRng::seed_from_u64(9);
        let net = RingNetwork::new(30, &mut rng1);
        let srcs = sources(&mut rng1);
        let cfg = config(Scheme::Slc, 20);
        let mut rng_a = StdRng::seed_from_u64(100);
        let mut rng_b = StdRng::seed_from_u64(200);
        let a = predistribute(&net, &cfg, &srcs, &mut rng_a).unwrap();
        let b = predistribute(&net, &cfg, &srcs, &mut rng_b).unwrap();
        for (sa, sb) in a.slots().iter().zip(b.slots()) {
            assert_eq!(sa.node, sb.node);
            assert_eq!(sa.level, sb.level);
        }
    }
}
