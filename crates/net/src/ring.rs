//! A Chord-like ring DHT (Stoica et al., SIGCOMM 2001) — the P2P
//! instantiation of the paper's geometric network.
//!
//! Nodes hold random 64-bit IDs on a ring; the owner of a point is its
//! *successor* (first node ID at or clockwise-after the point). Routing
//! takes the classic `O(log W)` greedy finger steps — `finger[k]` =
//! successor of `id + 2^k` — but fingers are computed *on demand* from
//! the sorted alive-ID array (a binary search per finger) instead of
//! being materialised per node. That keeps stabilisation O(N log N) and
//! memory O(N) rather than O(N·64), which is what lets event-driven
//! simulations run at N=10⁵–10⁶. After failures the structure
//! re-stabilises (the successor array is rebuilt over the surviving
//! nodes), modelling Chord's stabilisation protocol having converged
//! before the next operation.

use rand::Rng;

use crate::network::{Network, NodeId, Route};

const ID_BITS: usize = 64;
/// Safety bound on lookup path length (Chord takes `O(log W)` hops; this
/// only trips on internal inconsistencies).
const MAX_HOPS: usize = 4 * ID_BITS;

/// A simulated Chord-like ring overlay.
#[derive(Debug, Clone)]
pub struct RingNetwork {
    /// Node IDs on the ring, indexed by dense `NodeId`.
    ids: Vec<u64>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Alive nodes sorted by ring ID: `(id, dense index)`.
    sorted: Vec<(u64, usize)>,
}

impl RingNetwork {
    /// Creates a ring of `nodes` peers with distinct random IDs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new<R: Rng + ?Sized>(nodes: usize, rng: &mut R) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        let mut ids = Vec::with_capacity(nodes);
        let mut seen = std::collections::BTreeMap::new();
        while ids.len() < nodes {
            let id: u64 = rng.gen();
            if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(id) {
                e.insert(ids.len());
                ids.push(id);
            }
        }
        let mut net = RingNetwork {
            ids,
            alive: vec![true; nodes],
            alive_count: nodes,
            sorted: Vec::new(),
        };
        net.stabilize();
        net
    }

    /// The ring ID of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn id_of(&self, node: NodeId) -> u64 {
        self.ids[node.index()]
    }

    /// Rebuilds the successor structure over the alive nodes (Chord
    /// stabilisation, assumed converged). Fingers are derived from it on
    /// demand during routing, so this is the whole rebuild: one filter
    /// and one sort, O(N log N).
    pub fn stabilize(&mut self) {
        self.sorted = self
            .ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[i])
            .map(|(i, &id)| (id, i))
            .collect();
        self.sorted.sort_unstable_by_key(|&(id, _)| id);
    }

    /// Dense index of the alive successor of `point` (first alive ID at
    /// or after `point`, wrapping). Binary search over the sorted
    /// alive-ID array.
    ///
    /// # Panics
    ///
    /// Panics if no node is alive.
    fn successor(&self, point: u64) -> usize {
        assert!(!self.sorted.is_empty(), "no alive nodes");
        let i = self.sorted.partition_point(|&(id, _)| id < point);
        let i = if i == self.sorted.len() { 0 } else { i };
        self.sorted[i].1
    }

    /// Clockwise distance from `a` to `b` on the ring.
    fn clockwise(a: u64, b: u64) -> u64 {
        b.wrapping_sub(a)
    }

    /// One greedy Chord step from `current` toward `point`: the finger
    /// that makes the most clockwise progress without overshooting the
    /// point, falling back to `owner` (the direct successor) when no
    /// finger precedes the target. `finger[k] = successor(id + 2^k)`,
    /// computed by binary search instead of a materialised table.
    fn greedy_next(&self, current: usize, point: u64, owner: usize) -> usize {
        let cur_id = self.ids[current];
        let dist = Self::clockwise(cur_id, point);
        let mut best = None;
        let mut best_remaining = dist;
        for k in 0..ID_BITS {
            let f = self.successor(cur_id.wrapping_add(1u64 << k));
            if f == current {
                continue;
            }
            let fid = self.ids[f];
            let advance = Self::clockwise(cur_id, fid);
            // The finger must not pass the target point.
            if advance > 0 && advance <= dist {
                let remaining = Self::clockwise(fid, point);
                if remaining < best_remaining {
                    best_remaining = remaining;
                    best = Some(f);
                }
            }
        }
        best.unwrap_or(owner)
    }

    /// Every node index (alive or crashed) in clockwise ring-ID order:
    /// entry `p` is the node at ring position `p`. This is the adjacency
    /// a correlated regional outage crashes contiguous segments of.
    pub fn ring_order(&self) -> Vec<NodeId> {
        let mut order: Vec<usize> = (0..self.ids.len()).collect();
        order.sort_unstable_by_key(|&i| self.ids[i]);
        order.into_iter().map(NodeId::new).collect()
    }

    /// The distinct alive fingers of `node` — `successor(id + 2^k)` for
    /// `k` in `0..64`, deduplicated, excluding `node` itself. Every
    /// nonzero-hop greedy route from `node` leaves through this set
    /// (including the direct-successor fallback, which is `finger[0]`),
    /// making it the choke point a collector-eclipse adversary
    /// concentrates loss on.
    pub fn finger_neighborhood(&self, node: NodeId) -> Vec<NodeId> {
        let mut fingers = Vec::new();
        if self.sorted.is_empty() {
            return fingers;
        }
        let cur_id = self.ids[node.index()];
        for k in 0..ID_BITS {
            let f = self.successor(cur_id.wrapping_add(1u64 << k));
            if f != node.index() && !fingers.contains(&NodeId::new(f)) {
                fingers.push(NodeId::new(f));
            }
        }
        fingers
    }

    /// First hop of the greedy route from `from` toward `point`: `None`
    /// when `from` owns the point (zero-hop route) or cannot route. The
    /// hop is always a member of `from`'s [finger
    /// neighborhood](Self::finger_neighborhood).
    pub fn first_hop(&self, from: NodeId, point: u64) -> Option<NodeId> {
        if !self.alive[from.index()] || self.sorted.is_empty() {
            return None;
        }
        let owner = self.successor(point);
        if owner == from.index() {
            return None;
        }
        Some(NodeId::new(self.greedy_next(from.index(), point, owner)))
    }

    /// Fails every alive node whose ID falls in the clockwise arc of
    /// `fraction` of the ring starting at `start` — a correlated-failure
    /// model (e.g. a region of the ID space assigned to one data centre
    /// going down). Returns the number killed.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn fail_arc(&mut self, start: u64, fraction: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0,1], got {fraction}"
        );
        let span = (fraction * u64::MAX as f64) as u64;
        let mut killed = 0;
        for i in 0..self.ids.len() {
            if self.alive[i] && Self::clockwise(start, self.ids[i]) <= span {
                self.alive[i] = false;
                self.alive_count -= 1;
                killed += 1;
            }
        }
        self.stabilize();
        killed
    }
}

impl Network for RingNetwork {
    type Point = u64;

    fn node_count(&self) -> usize {
        self.ids.len()
    }

    fn alive_count(&self) -> usize {
        self.alive_count
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen()
    }

    fn owner_of(&self, point: u64) -> Option<NodeId> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(NodeId::new(self.successor(point)))
    }

    fn route(&self, from: NodeId, point: u64) -> Option<Route> {
        if !self.alive[from.index()] || self.sorted.is_empty() {
            return None;
        }
        let owner = self.successor(point);
        let mut current = from.index();
        let mut hops = 0usize;
        while current != owner {
            if hops > MAX_HOPS {
                return None; // inconsistent routing state
            }
            current = self.greedy_next(current, point, owner);
            hops += 1;
        }
        Some(Route {
            owner: NodeId::new(owner),
            hops,
        })
    }

    fn fail_uniform<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0,1], got {fraction}"
        );
        let mut killed = 0;
        for i in 0..self.ids.len() {
            if self.alive[i] && rng.gen_bool(fraction) {
                self.alive[i] = false;
                self.alive_count -= 1;
                killed += 1;
            }
        }
        self.stabilize();
        killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> RingNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        RingNetwork::new(n, &mut rng)
    }

    #[test]
    fn construction_basics() {
        let net = ring(50, 1);
        assert_eq!(net.node_count(), 50);
        assert_eq!(net.alive_count(), 50);
        assert!(net.is_alive(NodeId::new(0)));
    }

    #[test]
    fn owner_is_successor() {
        let net = ring(20, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = net.random_point(&mut rng);
            let owner = net.owner_of(p).unwrap();
            let oid = net.id_of(owner);
            // No alive node lies strictly between p and owner clockwise.
            for i in 0..20 {
                let nid = net.id_of(NodeId::new(i));
                if nid != oid {
                    assert!(
                        RingNetwork::clockwise(p, nid) > RingNetwork::clockwise(p, oid),
                        "node {nid:x} is a closer successor than {oid:x} for {p:x}"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_reaches_owner_with_log_hops() {
        let net = ring(500, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let from = net.random_alive_node(&mut rng).unwrap();
            let p = net.random_point(&mut rng);
            let r = net.route(from, p).expect("route must succeed");
            assert_eq!(Some(r.owner), net.owner_of(p));
            // O(log W): 2*log2(500) ~ 18; allow slack.
            assert!(r.hops <= 30, "hops = {}", r.hops);
        }
    }

    #[test]
    fn routing_to_own_point_is_zero_hops() {
        let net = ring(10, 6);
        let n = NodeId::new(3);
        let r = net.route(n, net.id_of(n)).unwrap();
        assert_eq!(r.owner, n);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn uniform_failure_kills_about_the_right_fraction() {
        let mut net = ring(1000, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let killed = net.fail_uniform(0.3, &mut rng);
        assert_eq!(net.alive_count(), 1000 - killed);
        assert!((200..400).contains(&killed), "killed {killed}");
        // Routing still works among the survivors.
        let from = net.random_alive_node(&mut rng).unwrap();
        let p = net.random_point(&mut rng);
        let r = net.route(from, p).unwrap();
        assert!(net.is_alive(r.owner));
    }

    #[test]
    fn fail_arc_kills_contiguous_ids() {
        let mut net = ring(400, 9);
        let killed = net.fail_arc(0, 0.25);
        // Random u64 ids: ~25% fall in the arc.
        assert!((60..140).contains(&killed), "killed {killed}");
        // All dead nodes are within the arc.
        for i in 0..400 {
            let id = net.id_of(NodeId::new(i));
            let in_arc = id <= (0.25 * u64::MAX as f64) as u64;
            assert_eq!(!net.is_alive(NodeId::new(i)), in_arc, "node {i}");
        }
    }

    #[test]
    fn total_failure_leaves_no_owner() {
        let mut net = ring(5, 10);
        net.fail_arc(0, 1.0);
        assert_eq!(net.alive_count(), 0);
        assert_eq!(net.owner_of(123), None);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(net.random_alive_node(&mut rng), None);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let net = ring(1, 11);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let p = net.random_point(&mut rng);
            assert_eq!(net.owner_of(p), Some(NodeId::new(0)));
            let r = net.route(NodeId::new(0), p).unwrap();
            assert_eq!(r.hops, 0);
        }
    }

    #[test]
    fn dead_origin_cannot_route() {
        let mut net = ring(10, 12);
        let mut rng = StdRng::seed_from_u64(3);
        // Kill one specific node by failing until it dies.
        while net.is_alive(NodeId::new(0)) {
            net.fail_uniform(0.2, &mut rng);
        }
        assert_eq!(net.route(NodeId::new(0), 55), None);
    }
}
