//! The abstract geometric network (Sec. 2 of the paper).
//!
//! "Our protocol uses the characteristic of *geometric networks*, where
//! each node is identified with a point in a geometric space" — a 1D DHT
//! ID ring for P2P overlays, a 2D plane for sensor deployments. The
//! protocol only needs three capabilities from the substrate, captured by
//! [`Network`]: derive random points, find the node responsible for a
//! point, and route to it counting hops.

use rand::Rng;
use std::fmt;

/// Identifies a node within one network instance (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a dense node index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The outcome of routing a message to the node owning a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// The node responsible for the destination point.
    pub owner: NodeId,
    /// Number of overlay/radio hops taken.
    pub hops: usize,
}

/// A geometric network substrate.
///
/// Implementations: [`crate::RingNetwork`] (Chord-like DHT) and
/// [`crate::PlaneNetwork`] (unit-disk sensor field).
pub trait Network {
    /// A point of the geometric space nodes live in.
    type Point: Copy + fmt::Debug + Send + Sync;

    /// Total nodes ever created (alive + failed).
    fn node_count(&self) -> usize;

    /// Nodes currently alive.
    fn alive_count(&self) -> usize;

    /// Whether `node` is alive.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn is_alive(&self, node: NodeId) -> bool;

    /// A uniformly random point of the space (used with the shared seed
    /// to derive storage locations).
    fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Point;

    /// The alive node responsible for `point` (ring: successor; plane:
    /// nearest), or `None` if no node is alive.
    fn owner_of(&self, point: Self::Point) -> Option<NodeId>;

    /// Routes from `from` to the owner of `point`, counting hops.
    /// Returns `None` when delivery is impossible (dead origin, empty
    /// network, or a partitioned plane).
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    fn route(&self, from: NodeId, point: Self::Point) -> Option<Route>;

    /// A uniformly random *alive* node, or `None` if all failed.
    fn random_alive_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        let alive = self.alive_count();
        if alive == 0 {
            return None;
        }
        let target = rng.gen_range(0..alive);
        let mut seen = 0;
        for i in 0..self.node_count() {
            let id = NodeId::new(i);
            if self.is_alive(id) {
                if seen == target {
                    return Some(id);
                }
                seen += 1;
            }
        }
        None
    }

    /// Fails each alive node independently with probability `fraction`.
    /// Returns the number of nodes killed. Implementations refresh any
    /// routing state (successor lists, neighbor tables) afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    fn fail_uniform<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> usize;
}

/// A session-churn model for P2P networks: node lifetimes are
/// exponential with the given mean; after `horizon` time units a node has
/// departed with probability `1 − exp(−horizon/mean)`.
///
/// The resulting death fraction plugs into
/// [`Network::fail_uniform`] — under memoryless lifetimes, churn over a
/// horizon is exactly an independent per-node coin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Mean node lifetime (any time unit).
    pub mean_lifetime: f64,
    /// How long the data must persist before collection.
    pub horizon: f64,
}

impl Churn {
    /// The per-node departure probability over the horizon.
    ///
    /// # Panics
    ///
    /// Panics if either field is non-positive.
    pub fn death_fraction(&self) -> f64 {
        assert!(
            self.mean_lifetime > 0.0 && self.horizon >= 0.0,
            "churn parameters must be positive"
        );
        1.0 - (-self.horizon / self.mean_lifetime).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn churn_death_fraction() {
        let c = Churn {
            mean_lifetime: 10.0,
            horizon: 0.0,
        };
        assert_eq!(c.death_fraction(), 0.0);
        let c = Churn {
            mean_lifetime: 10.0,
            horizon: 10.0,
        };
        assert!((c.death_fraction() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Long horizon: nearly everyone leaves.
        let c = Churn {
            mean_lifetime: 1.0,
            horizon: 100.0,
        };
        assert!(c.death_fraction() > 0.9999);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn churn_rejects_nonpositive_lifetime() {
        Churn {
            mean_lifetime: 0.0,
            horizon: 1.0,
        }
        .death_fraction();
    }
}
