//! The typed session state-machine trait and its driver loop.
//!
//! A protocol session — pre-distribution, collection, repair — is a
//! [`SessionMachine`]: a bundle of session state whose `poll` consumes
//! one event and either yields the next event at a logical time or
//! completes with the session's output. [`run_to_quiescence`] wires a
//! machine to a [`Scheduler`](super::Scheduler) and drives it until it
//! finishes or the queue drains.
//!
//! Machines advance their own clocks: after performing the work an
//! event represents (typically one message exchange through
//! [`FaultSession::attempt`](crate::FaultSession::attempt)), a machine
//! reads the session's message-step counter and yields its next event
//! at that tick. The driver clamps yields to `max(now, at)` so a buggy
//! machine can never schedule into the past and break the queue's
//! monotone pop order.

use super::queue::Scheduler;

/// What a machine does with the event it was polled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition<E, O> {
    /// The session continues: fire `event` at logical time `at`.
    Yield {
        /// Logical (message-step) time of the next event.
        at: u64,
        /// The next event payload.
        event: E,
    },
    /// The session is finished with this output.
    Done(O),
}

/// A poll-based protocol session.
pub trait SessionMachine {
    /// The event alphabet driving this session.
    type Event;
    /// What the session produces when it completes.
    type Output;

    /// Consumes one event at logical time `now` and transitions.
    fn poll(&mut self, now: u64, event: Self::Event) -> Transition<Self::Event, Self::Output>;
}

/// Drives `machine` on a fresh [`Scheduler`] seeded with `initial` at
/// `start_tick`, until the machine completes or the queue drains.
///
/// Returns `None` only if the queue drains without the machine ever
/// reporting [`Transition::Done`] — a malformed machine; every machine
/// in this crate yields or finishes on every poll, so their drivers
/// treat `None` as an internal-invariant breach rather than a
/// recoverable state.
pub fn run_to_quiescence<M: SessionMachine>(
    machine: &mut M,
    start_tick: u64,
    initial: M::Event,
) -> Option<M::Output> {
    let mut queue = Scheduler::new();
    queue.schedule(start_tick, initial);
    while let Some((key, event)) = queue.pop() {
        match machine.poll(key.tick, event) {
            Transition::Yield { at, event } => {
                // Clamp to now: logical time never runs backwards.
                queue.schedule(at.max(key.tick), event);
            }
            Transition::Done(output) => return Some(output),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down from `n`, advancing its clock by `step` per event.
    struct Countdown {
        n: u64,
        step: u64,
        ticks_seen: Vec<u64>,
    }

    impl SessionMachine for Countdown {
        type Event = ();
        type Output = Vec<u64>;

        fn poll(&mut self, now: u64, _event: ()) -> Transition<(), Vec<u64>> {
            self.ticks_seen.push(now);
            if self.n == 0 {
                return Transition::Done(std::mem::take(&mut self.ticks_seen));
            }
            self.n -= 1;
            Transition::Yield {
                at: now + self.step,
                event: (),
            }
        }
    }

    #[test]
    fn drives_to_completion_on_the_logical_clock() {
        let mut m = Countdown {
            n: 3,
            step: 2,
            ticks_seen: Vec::new(),
        };
        let ticks = run_to_quiescence(&mut m, 10, ()).expect("countdown finishes");
        assert_eq!(ticks, [10, 12, 14, 16]);
    }

    /// A machine that tries to schedule into the past is clamped to the
    /// current tick instead of corrupting pop order.
    struct PastScheduler {
        polls: u64,
    }

    impl SessionMachine for PastScheduler {
        type Event = ();
        type Output = u64;

        fn poll(&mut self, now: u64, _event: ()) -> Transition<(), u64> {
            self.polls += 1;
            if self.polls == 3 {
                return Transition::Done(now);
            }
            Transition::Yield {
                at: now.saturating_sub(100),
                event: (),
            }
        }
    }

    #[test]
    fn yields_into_the_past_are_clamped() {
        let mut m = PastScheduler { polls: 0 };
        let final_tick = run_to_quiescence(&mut m, 50, ()).expect("finishes");
        assert_eq!(final_tick, 50);
    }
}
