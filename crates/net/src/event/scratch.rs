//! Lazily instantiated per-node session state.
//!
//! The synchronous protocol used to allocate a dense
//! `vec![0; node_count]` load table per session — O(N) memory and
//! initialisation even when a session only ever touches a handful of
//! nodes, which is what capped simulations near N=10³. [`NodeScratch`]
//! keeps the same per-node counters in a `BTreeMap` instantiated on
//! first touch, so session memory is O(active nodes): reads of
//! untouched nodes return the zero a fresh dense table would have held
//! (no entry is created), and only [`bump`](NodeScratch::bump)
//! instantiates. The number of instantiated entries is reported as the
//! `net.event.nodes_touched` counter, which the memory-bound test
//! asserts stays O(active) at N=10⁵.

use std::collections::BTreeMap;

use crate::network::NodeId;

/// Per-node load counters, instantiated on first write.
#[derive(Debug, Clone, Default)]
pub struct NodeScratch {
    load: BTreeMap<usize, usize>,
}

impl NodeScratch {
    /// An empty scratch: no node state instantiated yet.
    pub fn new() -> Self {
        NodeScratch {
            load: BTreeMap::new(),
        }
    }

    /// The load of `node` — zero for untouched nodes, without
    /// instantiating an entry (reads must stay O(active)).
    pub fn load(&self, node: NodeId) -> usize {
        self.load.get(&node.index()).copied().unwrap_or(0)
    }

    /// Increments the load of `node`, instantiating its entry on first
    /// touch.
    pub fn bump(&mut self, node: NodeId) {
        *self.load.entry(node.index()).or_insert(0) += 1;
    }

    /// Nodes whose state has been instantiated this session.
    pub fn touched(&self) -> usize {
        self.load.len()
    }

    /// The maximum per-node load — equal to `max` over the dense table
    /// the synchronous path used to allocate (untouched nodes hold 0).
    pub fn max_load(&self) -> usize {
        self.load.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_do_not_instantiate() {
        let s = NodeScratch::new();
        assert_eq!(s.load(NodeId::new(123_456)), 0);
        assert_eq!(s.touched(), 0);
        assert_eq!(s.max_load(), 0);
    }

    #[test]
    fn bumps_instantiate_and_count() {
        let mut s = NodeScratch::new();
        s.bump(NodeId::new(3));
        s.bump(NodeId::new(3));
        s.bump(NodeId::new(9));
        assert_eq!(s.load(NodeId::new(3)), 2);
        assert_eq!(s.load(NodeId::new(9)), 1);
        assert_eq!(s.load(NodeId::new(4)), 0);
        assert_eq!(s.touched(), 2);
        assert_eq!(s.max_load(), 2);
    }
}
