//! Event-driven protocol runtime: a deterministic discrete-event
//! scheduler executing poll-based session state machines.
//!
//! The synchronous protocol entry points used to run as monolithic call
//! trees over fully materialized node tables, capping simulations near
//! N=10³. This module splits each session into a typed state machine
//! ([`SessionMachine`]) driven by a [`Scheduler`] — a `BinaryHeap`
//! event queue ordered by `(logical_time, tie_break_seq)` whose ticks
//! are the message-step clocks of [`crate::fault::FaultSession`] — with
//! per-node session state lazily instantiated on first event touch
//! ([`NodeScratch`]), so memory is O(active nodes) and N=10⁵ timelines
//! run in seconds.
//!
//! Three invariants make runs bit-identical to the synchronous
//! reference paths (kept in [`crate::sync`]) under pinned seeds:
//!
//! 1. **Same RNG order** — machines consume the caller's RNG and the
//!    fault stream in exactly the synchronous operation order (origin
//!    before fanout picks, β only on delivery, one shuffle per
//!    session).
//! 2. **Deterministic queue order** — events pop by `(tick, seq)`;
//!    sequence numbers are assigned at `schedule()` time, so same-tick
//!    events are FIFO and pop order never depends on heap internals.
//! 3. **Logical clocks only** — ticks are message steps, never
//!    wall-clock, so replay across hosts, thread counts and kernel
//!    backends is exact.

pub mod machine;
pub mod queue;
pub mod scratch;

mod collect;
mod predistribute;
mod refresh;

pub use collect::{CollectEvent, CollectMachine};
pub use machine::{run_to_quiescence, SessionMachine, Transition};
pub use predistribute::{PredistributeMachine, ProtocolEvent};
pub use queue::{EventKey, Scheduler};
pub use refresh::{RefreshEvent, RefreshMachine};
pub use scratch::NodeScratch;
