//! The collection session as a poll-based state machine.
//!
//! Construction performs the collector-liveness guard and the local
//! ordering work (grouping surviving slots by caching node, shuffling
//! the visit order with the caller's RNG — the only RNG use of the
//! whole session, consumed in the synchronous order). Each
//! [`CollectEvent::Visit`] then queries one caching node through the
//! fault session and feeds its blocks to the decoder, early-stopping
//! the moment the target level count is reached.

use std::collections::BTreeMap;

use prlc_core::PriorityDecoder;
use prlc_gf::GfElem;
use rand::seq::SliceRandom;
use rand::Rng;

use super::machine::{SessionMachine, Transition};
use crate::collect::{emit_collect_obs, CollectionConfig, CollectionReport, NodeLocator};
use crate::fault::{DeliveryOutcome, FaultSession};
use crate::network::NodeId;
use crate::protocol::Deployment;

/// Events driving a [`CollectMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectEvent {
    /// Query the next caching node in the shuffled visit order.
    Visit,
}

/// The collection session state machine.
///
/// Executed by [`run_to_quiescence`](super::run_to_quiescence); the
/// public [`collect_with_faults`](crate::collect_with_faults) driver is
/// bit-identical to the synchronous reference path
/// ([`crate::sync::collect_with_faults`]) under pinned seeds.
pub struct CollectMachine<'a, N: NodeLocator, F: GfElem, D: PriorityDecoder<F>> {
    net: &'a N,
    deployment: &'a Deployment<F>,
    decoder: &'a mut D,
    collector: NodeId,
    target: Option<usize>,
    faults: &'a mut FaultSession,
    by_node: BTreeMap<NodeId, Vec<usize>>,
    nodes: Vec<NodeId>,
    next_node: usize,
    report: CollectionReport,
    span_start: u64,
}

impl<'a, N: NodeLocator, F: GfElem, D: PriorityDecoder<F>> CollectMachine<'a, N, F, D> {
    /// Guards the collector and prepares the shuffled visit order.
    /// Returns `None` if `collector` is dead or already crashed —
    /// exactly the synchronous precondition.
    pub fn new<R: Rng + ?Sized>(
        net: &'a N,
        deployment: &'a Deployment<F>,
        decoder: &'a mut D,
        collector: NodeId,
        cfg: &CollectionConfig,
        faults: &'a mut FaultSession,
        rng: &mut R,
    ) -> Option<Self> {
        if !net.is_alive(collector) || faults.is_down(collector) {
            return None;
        }
        let span_start = faults.steps() as u64;
        // Group surviving slots by caching node; visit in random order.
        let surviving = deployment.surviving_slots(net);
        let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for idx in surviving {
            by_node
                .entry(deployment.slots()[idx].node)
                .or_default()
                .push(idx);
        }
        let mut nodes: Vec<NodeId> = by_node.keys().copied().collect();
        nodes.shuffle(rng);
        Some(CollectMachine {
            net,
            deployment,
            decoder,
            collector,
            target: cfg.target_levels,
            faults,
            by_node,
            nodes,
            next_node: 0,
            report: CollectionReport::default(),
            span_start,
        })
    }

    /// The message-step tick the session starts at.
    pub fn start_tick(&self) -> u64 {
        self.span_start
    }

    fn visit_next(&mut self) -> Transition<CollectEvent, CollectionReport> {
        if self.next_node >= self.nodes.len() || self.faults.is_down(self.collector) {
            // Visit order exhausted, or the collector itself departed:
            // finish with what we have.
            return self.finalize();
        }
        let node = self.nodes[self.next_node];
        self.next_node += 1;
        self.report.nodes_queried += 1;
        let Some(route) = self.net.route(self.collector, self.net.locate(node)) else {
            // Unroutable cache (partitioned plane, greedy local
            // minimum): its blocks never reach the collector.
            self.report.unreachable_nodes += 1;
            return Transition::Yield {
                at: self.faults.steps() as u64,
                event: CollectEvent::Visit,
            };
        };
        let delivery = self.faults.attempt(node, route.hops);
        self.report.query_hops += delivery.cost_hops;
        self.report.lost_messages += delivery.lost;
        self.report.retries += delivery.attempts.saturating_sub(1);
        let at = self.faults.steps() as u64;
        match delivery.outcome {
            DeliveryOutcome::Delivered => {}
            DeliveryOutcome::Unreachable => {
                self.report.unreachable_nodes += 1;
                return Transition::Yield {
                    at,
                    event: CollectEvent::Visit,
                };
            }
            DeliveryOutcome::GaveUp => {
                self.report.gave_up += 1;
                return Transition::Yield {
                    at,
                    event: CollectEvent::Visit,
                };
            }
        }
        for &idx in &self.by_node[&node] {
            let slot = &self.deployment.slots()[idx];
            if slot.block.is_empty() {
                continue;
            }
            self.decoder.insert_block(&slot.block);
            self.report.blocks_collected += 1;
            self.report
                .levels_after_block
                .push(self.decoder.decoded_levels());
            let reached = match self.target {
                Some(t) => self.decoder.decoded_levels() >= t,
                None => self.decoder.is_complete(),
            };
            if reached {
                self.report.target_reached = true;
                return self.finalize();
            }
        }
        Transition::Yield {
            at,
            event: CollectEvent::Visit,
        }
    }

    fn finalize(&mut self) -> Transition<CollectEvent, CollectionReport> {
        if self.target.is_none() && self.decoder.is_complete() {
            self.report.target_reached = true;
        }
        emit_collect_obs(
            &self.report,
            self.decoder.decoded_levels(),
            self.span_start,
            self.faults.steps() as u64,
        );
        Transition::Done(std::mem::take(&mut self.report))
    }
}

impl<N: NodeLocator, F: GfElem, D: PriorityDecoder<F>> SessionMachine
    for CollectMachine<'_, N, F, D>
{
    type Event = CollectEvent;
    type Output = CollectionReport;

    fn poll(&mut self, _now: u64, event: CollectEvent) -> Transition<CollectEvent, Self::Output> {
        match event {
            CollectEvent::Visit => self.visit_next(),
        }
    }
}
