//! The pre-distribution session as a poll-based state machine.
//!
//! Construction runs the *local* phases of the protocol — validation,
//! the shared-seed location derivation and the per-level slot split —
//! which every node computes independently without sending a message
//! (see [`session_setup`]). The event loop then covers the only phase
//! that actually touches the network: source dissemination.
//! [`ProtocolEvent::NextSource`] opens one source block (drawing its
//! origin node and fanout picks, in exactly the synchronous RNG order);
//! [`ProtocolEvent::Deliver`] performs one delivery attempt through the
//! fault session. Each yield is stamped with the session's message-step
//! clock, so the scheduler's logical time is the same clock the causal
//! tracer records.

use std::collections::VecDeque;

use prlc_core::Scheme;
use prlc_gf::GfElem;
use rand::seq::index::sample;
use rand::Rng;

use super::machine::{SessionMachine, Transition};
use super::scratch::NodeScratch;
use crate::fault::{DeliveryOutcome, FaultSession};
use crate::network::{Network, NodeId};
use crate::protocol::{
    emit_predistribute_obs, session_setup, Deployment, DistributionMetrics, ProtocolConfig,
    ProtocolError, StorageSlot,
};

/// Events driving a [`PredistributeMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// Open the next source block: derive its eligible part, draw its
    /// origin node and fanout picks, queue the deliveries.
    NextSource,
    /// Perform the next queued delivery attempt for the open source.
    Deliver,
}

/// The pre-distribution session state machine.
///
/// Executed by [`run_to_quiescence`](super::run_to_quiescence); the
/// public [`predistribute_with_faults`](crate::predistribute_with_faults)
/// driver is bit-identical to the synchronous reference path
/// ([`crate::sync::predistribute_with_faults`]) under pinned seeds.
pub struct PredistributeMachine<'a, N: Network, F: GfElem, R: Rng + ?Sized> {
    net: &'a N,
    cfg: &'a ProtocolConfig,
    sources: &'a [Vec<F>],
    faults: &'a mut FaultSession,
    rng: &'a mut R,
    points: Vec<N::Point>,
    slots: Vec<StorageSlot<F>>,
    part_start: Vec<usize>,
    scratch: NodeScratch,
    span_start: u64,
    metrics: DistributionMetrics,
    next_source: usize,
    origin: NodeId,
    pending: VecDeque<usize>,
}

impl<'a, N: Network, F: GfElem, R: Rng + ?Sized> PredistributeMachine<'a, N, F, R> {
    /// Validates the configuration and runs the local phases (location
    /// derivation, slot split) — no events, no messages.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] when the network is empty or the
    /// configuration is inconsistent, exactly as the synchronous path.
    pub fn new(
        net: &'a N,
        cfg: &'a ProtocolConfig,
        sources: &'a [Vec<F>],
        faults: &'a mut FaultSession,
        rng: &'a mut R,
    ) -> Result<Self, ProtocolError> {
        let setup = session_setup::<N, F>(net, cfg, sources.len(), faults)?;
        Ok(PredistributeMachine {
            net,
            cfg,
            sources,
            faults,
            rng,
            points: setup.points,
            slots: setup.slots,
            part_start: setup.part_start,
            scratch: setup.scratch,
            span_start: setup.span_start,
            metrics: DistributionMetrics::default(),
            next_source: 0,
            origin: NodeId::new(0),
            pending: VecDeque::new(),
        })
    }

    /// The message-step tick the session starts at (seed the scheduler
    /// with the initial [`ProtocolEvent::NextSource`] here).
    pub fn start_tick(&self) -> u64 {
        self.span_start
    }

    fn open_next_source(
        &mut self,
        now: u64,
    ) -> Transition<ProtocolEvent, Result<Deployment<F>, ProtocolError>> {
        let j = self.next_source;
        if j == self.sources.len() {
            return self.finalize();
        }
        let level = self.cfg.profile.level_of(j);
        let n_levels = self.cfg.profile.num_levels();
        let eligible: std::ops::Range<usize> = match self.cfg.scheme {
            Scheme::Slc => self.part_start[level]..self.part_start[level + 1],
            Scheme::Plc => self.part_start[level]..self.part_start[n_levels],
            Scheme::Rlc => 0..self.cfg.locations,
        };
        let eligible_len = eligible.len();
        if eligible_len == 0 {
            // A zero-mass part: nothing stores this level. No RNG draw,
            // no message — same tick.
            self.next_source += 1;
            return Transition::Yield {
                at: now,
                event: ProtocolEvent::NextSource,
            };
        }
        let Some(origin) = self.net.random_alive_node(&mut *self.rng) else {
            // alive_count > 0 was validated at construction and the
            // substrate is immutable during the session; surface a
            // stall instead of panicking if the invariant ever breaks.
            return Transition::Done(Err(ProtocolError::Stalled));
        };
        self.origin = origin;
        let fanout = self
            .cfg
            .fanout
            .count(eligible_len, self.cfg.profile.total_blocks());
        for pick in sample(&mut *self.rng, eligible_len, fanout) {
            self.pending.push_back(eligible.start + pick);
        }
        if self.pending.is_empty() {
            self.next_source += 1;
            return Transition::Yield {
                at: now,
                event: ProtocolEvent::NextSource,
            };
        }
        Transition::Yield {
            at: self.faults.steps() as u64,
            event: ProtocolEvent::Deliver,
        }
    }

    fn deliver_one(&mut self) -> Transition<ProtocolEvent, Result<Deployment<F>, ProtocolError>> {
        let j = self.next_source;
        let Some(slot_idx) = self.pending.pop_front() else {
            // Deliver is only ever yielded with a non-empty queue; fall
            // through to the next source rather than stalling.
            self.next_source += 1;
            return Transition::Yield {
                at: self.faults.steps() as u64,
                event: ProtocolEvent::NextSource,
            };
        };
        match self.net.route(self.origin, self.points[slot_idx]) {
            Some(route) => {
                debug_assert_eq!(route.owner, self.slots[slot_idx].node);
                let delivery = self.faults.attempt(self.slots[slot_idx].node, route.hops);
                self.metrics.lost_messages += delivery.lost;
                self.metrics.retries += delivery.attempts.saturating_sub(1);
                match delivery.outcome {
                    DeliveryOutcome::Delivered => {
                        self.metrics.messages += 1;
                        self.metrics.total_hops += delivery.cost_hops;
                        let beta = F::random_nonzero(&mut *self.rng);
                        self.slots[slot_idx]
                            .block
                            .accumulate(j, beta, &self.sources[j]);
                    }
                    DeliveryOutcome::Unreachable => {
                        self.metrics.failed_deliveries += 1;
                        self.metrics.unreachable_nodes += 1;
                    }
                    DeliveryOutcome::GaveUp => {
                        self.metrics.failed_deliveries += 1;
                        self.metrics.gave_up += 1;
                    }
                }
            }
            None => self.metrics.failed_deliveries += 1,
        }
        let at = self.faults.steps() as u64;
        if self.pending.is_empty() {
            self.next_source += 1;
            Transition::Yield {
                at,
                event: ProtocolEvent::NextSource,
            }
        } else {
            Transition::Yield {
                at,
                event: ProtocolEvent::Deliver,
            }
        }
    }

    fn finalize(&mut self) -> Transition<ProtocolEvent, Result<Deployment<F>, ProtocolError>> {
        self.metrics.max_node_load = self.scratch.max_load();
        emit_predistribute_obs(
            &self.metrics,
            self.scratch.touched(),
            self.span_start,
            self.faults.steps() as u64,
        );
        Transition::Done(Ok(Deployment::assemble(
            std::mem::take(&mut self.slots),
            self.metrics.clone(),
            self.cfg.profile.clone(),
        )))
    }
}

impl<N: Network, F: GfElem, R: Rng + ?Sized> SessionMachine for PredistributeMachine<'_, N, F, R> {
    type Event = ProtocolEvent;
    type Output = Result<Deployment<F>, ProtocolError>;

    fn poll(&mut self, now: u64, event: ProtocolEvent) -> Transition<ProtocolEvent, Self::Output> {
        match event {
            ProtocolEvent::NextSource => self.open_next_source(now),
            ProtocolEvent::Deliver => self.deliver_one(),
        }
    }
}
