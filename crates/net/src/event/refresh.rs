//! The repair session as a poll-based state machine.
//!
//! Construction performs the alive-network guard and indexes dead and
//! surviving slots (local work). Each [`RefreshEvent::Repair`] then
//! repairs one dead slot: donor selection, the donor fetches through
//! the fault session, and the re-placement of the repaired block —
//! consuming the caller's RNG in exactly the synchronous order.

use prlc_core::{CodedBlock, Scheme};
use prlc_gf::GfElem;
use rand::seq::SliceRandom;
use rand::Rng;

use super::machine::{SessionMachine, Transition};
use crate::collect::NodeLocator;
use crate::fault::{DeliveryOutcome, FaultSession};
use crate::protocol::Deployment;
use crate::refresh::{emit_refresh_obs, RefreshConfig, RefreshReport};

/// Events driving a [`RefreshMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshEvent {
    /// Repair the next dead slot (donor fetches plus re-placement).
    Repair,
}

/// The repair session state machine.
///
/// Executed by [`run_to_quiescence`](super::run_to_quiescence); the
/// public [`refresh_with_faults`](crate::refresh_with_faults) driver is
/// bit-identical to the synchronous reference path
/// ([`crate::sync::refresh_with_faults`]) under pinned seeds.
pub struct RefreshMachine<'a, N: NodeLocator, F: GfElem, R: Rng + ?Sized> {
    net: &'a N,
    deployment: &'a mut Deployment<F>,
    cfg: &'a RefreshConfig,
    faults: &'a mut FaultSession,
    rng: &'a mut R,
    dead: Vec<usize>,
    alive_slots: Vec<usize>,
    next_dead: usize,
    report: RefreshReport,
    span_start: u64,
}

impl<'a, N: NodeLocator, F: GfElem, R: Rng + ?Sized> RefreshMachine<'a, N, F, R> {
    /// Guards the network and indexes dead/surviving slots. Returns
    /// `None` when no node is alive — exactly the synchronous
    /// precondition.
    pub fn new(
        net: &'a N,
        deployment: &'a mut Deployment<F>,
        cfg: &'a RefreshConfig,
        faults: &'a mut FaultSession,
        rng: &'a mut R,
    ) -> Option<Self> {
        if net.alive_count() == 0 {
            return None;
        }
        let span_start = faults.steps() as u64;
        let dead: Vec<usize> = (0..deployment.slots().len())
            .filter(|&i| !net.is_alive(deployment.slots()[i].node))
            .collect();
        let alive_slots: Vec<usize> = (0..deployment.slots().len())
            .filter(|&i| net.is_alive(deployment.slots()[i].node))
            .collect();
        Some(RefreshMachine {
            net,
            deployment,
            cfg,
            faults,
            rng,
            dead,
            alive_slots,
            next_dead: 0,
            report: RefreshReport::default(),
            span_start,
        })
    }

    /// The message-step tick the session starts at.
    pub fn start_tick(&self) -> u64 {
        self.span_start
    }

    fn repair_next(&mut self, now: u64) -> Transition<RefreshEvent, RefreshReport> {
        if self.next_dead >= self.dead.len() {
            return self.finalize();
        }
        let slot_idx = self.dead[self.next_dead];
        self.next_dead += 1;
        let level = self.deployment.slots()[slot_idx].level;
        // Eligible donors under the scheme's support rules.
        let mut donors: Vec<usize> = self
            .alive_slots
            .iter()
            .copied()
            .filter(|&j| {
                let donor = &self.deployment.slots()[j];
                if donor.block.is_empty() {
                    return false;
                }
                match self.cfg.scheme {
                    Scheme::Slc => donor.level == level,
                    Scheme::Plc => donor.level <= level,
                    Scheme::Rlc => true,
                }
            })
            .collect();
        if donors.is_empty() {
            // No RNG draw, no message — same tick.
            self.report.unrepairable += 1;
            return Transition::Yield {
                at: now,
                event: RefreshEvent::Repair,
            };
        }
        donors.shuffle(&mut *self.rng);
        donors.truncate(self.cfg.donors_per_slot.max(1));

        // Place the repaired block at the owner of a fresh random point.
        let point = self.net.random_point(&mut *self.rng);
        let Some(new_node) = self.net.owner_of(point) else {
            // alive_count > 0 was validated at construction and the
            // substrate is immutable during the session; count the slot
            // unrepairable instead of panicking if that ever breaks.
            self.report.unrepairable += 1;
            return Transition::Yield {
                at: self.faults.steps() as u64,
                event: RefreshEvent::Repair,
            };
        };

        let width = self.deployment.profile().total_blocks();
        // The repaired block inherits the dead slot's coefficient
        // representation, so a sparse deployment stays sparse across
        // repair generations.
        let rep = self.deployment.slots()[slot_idx].block.coefficients.rep();
        let mut block: CodedBlock<F> = CodedBlock::empty_with(level, width, rep);
        let mut fetched = 0usize;
        for &j in &donors {
            let donor_slot = &self.deployment.slots()[j];
            // Fetch the donor block: route from the repairing node to
            // the donor's cache.
            let Some(route) = self.net.route(new_node, self.net.locate(donor_slot.node)) else {
                self.report.unreachable_nodes += 1;
                continue;
            };
            let delivery = self.faults.attempt(donor_slot.node, route.hops);
            self.report.lost_messages += delivery.lost;
            self.report.retries += delivery.attempts.saturating_sub(1);
            self.report.total_hops += delivery.cost_hops;
            match delivery.outcome {
                DeliveryOutcome::Delivered => {}
                DeliveryOutcome::Unreachable => {
                    self.report.unreachable_nodes += 1;
                    continue;
                }
                DeliveryOutcome::GaveUp => {
                    self.report.gave_up += 1;
                    continue;
                }
            }
            self.report.messages += 1;
            let beta = F::random_nonzero(&mut *self.rng);
            let donor_block = donor_slot.block.clone();
            block.combine(&donor_block, beta);
            fetched += 1;
        }

        let at = self.faults.steps() as u64;
        if fetched == 0 {
            // Every donor fetch failed: the slot stays lost rather than
            // acquiring an empty block on a new node.
            self.report.unrepairable += 1;
            return Transition::Yield {
                at,
                event: RefreshEvent::Repair,
            };
        }
        let slot = &mut self.deployment.slots_mut()[slot_idx];
        slot.node = new_node;
        slot.block = block;
        self.report.repaired += 1;
        Transition::Yield {
            at,
            event: RefreshEvent::Repair,
        }
    }

    fn finalize(&mut self) -> Transition<RefreshEvent, RefreshReport> {
        emit_refresh_obs(&self.report, self.span_start, self.faults.steps() as u64);
        Transition::Done(std::mem::take(&mut self.report))
    }
}

impl<N: NodeLocator, F: GfElem, R: Rng + ?Sized> SessionMachine for RefreshMachine<'_, N, F, R> {
    type Event = RefreshEvent;
    type Output = RefreshReport;

    fn poll(&mut self, now: u64, event: RefreshEvent) -> Transition<RefreshEvent, Self::Output> {
        match event {
            RefreshEvent::Repair => self.repair_next(now),
        }
    }
}
