//! The deterministic discrete-event queue.
//!
//! A [`Scheduler`] is a `BinaryHeap` min-queue of events ordered by
//! `(logical_time, tie_break_seq)`. The logical time is a *message-step
//! clock* — the same [`FaultSession::steps`](crate::FaultSession::steps)
//! counter the causal tracer stamps — never wall-clock: a wall-clock
//! tick would make pop order depend on host load and destroy the
//! bit-identical replay guarantee every other layer is built on. The
//! tie-break sequence is a monotone counter assigned at `schedule()`
//! time, so events scheduled for the same tick pop in FIFO order and
//! the queue's total order is independent of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The total order of the event queue: logical tick first, insertion
/// sequence second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Logical time (message-step clock) the event fires at.
    pub tick: u64,
    /// Insertion sequence number breaking ties within a tick.
    pub seq: u64,
}

/// Heap entry; the `Ord` impl is *reversed* on the key (and blind to
/// the payload) so `BinaryHeap`'s max-heap pops the smallest key first.
struct Entry<E> {
    key: EventKey,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// A deterministic discrete-event queue over event payloads of type `E`.
#[derive(Default)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Scheduler<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at logical time `tick`, returning the
    /// key it was filed under. Keys are unique (the sequence component
    /// never repeats), so pop order is a strict total order.
    pub fn schedule(&mut self, tick: u64, event: E) -> EventKey {
        let key = EventKey {
            tick,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Entry { key, event });
        key
    }

    /// Removes and returns the earliest event, or `None` when drained.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop().map(|e| (e.key, e.event))
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order() {
        let mut q = Scheduler::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(3, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut q = Scheduler::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ticks_and_sequences() {
        let mut q = Scheduler::new();
        q.schedule(2, "t2-first");
        q.schedule(0, "t0");
        q.schedule(2, "t2-second");
        let (k0, e0) = q.pop().expect("three queued");
        assert_eq!((k0.tick, e0), (0, "t0"));
        let (k1, e1) = q.pop().expect("two left");
        let (k2, e2) = q.pop().expect("one left");
        assert_eq!((e1, e2), ("t2-first", "t2-second"));
        assert!(k1 < k2);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
