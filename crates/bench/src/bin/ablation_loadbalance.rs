//! Ablation A4 — power-of-two-choices load balance (DESIGN.md).
//!
//! Sec. 4 of the paper: "We can utilize 'the power of two choices' to
//! balance the load on nodes [Byers et al.], where the maximal load on
//! all nodes is Θ(ln ln M / ln 2)." This ablation places `M` storage
//! locations on ring and plane networks with one vs two choices and
//! reports the maximum node load next to the `ln M / ln ln M` (one
//! choice) and `ln ln M / ln 2` (two choices) growth predictions.

use prlc_bench::RunOpts;
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_net::{
    predistribute, CoeffRep, Network, PlaneNetwork, ProtocolConfig, RingNetwork, SourceFanout,
};
use prlc_sim::{fmt_f, run_parallel, summarize, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn max_load<N: Network, B: Fn(&mut StdRng) -> N + Sync>(
    build: B,
    m: usize,
    two_choices: bool,
    runs: usize,
    seed: u64,
) -> f64 {
    let profile = PriorityProfile::flat(4).expect("valid");
    let samples = run_parallel(runs, seed, |s| {
        let mut rng = StdRng::seed_from_u64(s);
        let net = build(&mut rng);
        let cfg = ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(1),
            locations: m,
            fanout: SourceFanout::Log { factor: 1.0 },
            coeff_rep: CoeffRep::Dense,
            two_choices,
            node_capacity: None,
            shared_seed: s,
        };
        let sources: Vec<Vec<Gf256>> = vec![Vec::new(); 4];
        let dep = predistribute(&net, &cfg, &sources, &mut rng).expect("protocol runs");
        dep.metrics().max_node_load as f64
    });
    summarize(&samples).mean
}

fn main() {
    let opts = RunOpts::from_args();
    // M locations over W = M nodes: the classic balls-into-bins regime.
    let ms: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[128, 512, 2048]
    };

    let mut table = Table::new([
        "network",
        "M (= W)",
        "max load, 1 choice",
        "max load, 2 choices",
        "ln M/ln ln M",
        "ln ln M/ln 2",
    ]);
    for &m in ms {
        eprintln!("[ablation_loadbalance] M = {m} ...");
        let one_ring = max_load(
            |rng| RingNetwork::new(m, rng),
            m,
            false,
            opts.runs,
            opts.seed,
        );
        let two_ring = max_load(
            |rng| RingNetwork::new(m, rng),
            m,
            true,
            opts.runs,
            opts.seed,
        );
        let one_plane = max_load(
            |rng| PlaneNetwork::with_connectivity_radius(m, rng),
            m,
            false,
            opts.runs,
            opts.seed,
        );
        let two_plane = max_load(
            |rng| PlaneNetwork::with_connectivity_radius(m, rng),
            m,
            true,
            opts.runs,
            opts.seed,
        );
        let lm = (m as f64).ln();
        let pred_one = lm / lm.ln();
        let pred_two = lm.ln() / 2f64.ln();
        table.push_row([
            "ring".to_string(),
            m.to_string(),
            fmt_f(one_ring, 2),
            fmt_f(two_ring, 2),
            fmt_f(pred_one, 2),
            fmt_f(pred_two, 2),
        ]);
        table.push_row([
            "plane".to_string(),
            m.to_string(),
            fmt_f(one_plane, 2),
            fmt_f(two_plane, 2),
            fmt_f(pred_one, 2),
            fmt_f(pred_two, 2),
        ]);
    }
    opts.emit(
        "ablation_loadbalance",
        "Ablation A4: max node load, one vs two choices",
        &table,
    );
}
