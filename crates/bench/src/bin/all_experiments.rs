//! Runs every figure, table and ablation binary's logic in sequence by
//! spawning the sibling binaries with shared flags — the one-command
//! regeneration entry point:
//!
//! ```text
//! cargo run --release -p prlc-bench --bin all_experiments -- --runs=40
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe has a parent dir");

    let binaries = [
        "fig4",
        "fig5",
        "fig6",
        "table1",
        "fig7",
        "ablation_sparsity",
        "ablation_failure",
        "ablation_field",
        "ablation_loadbalance",
        "ablation_bandwidth",
        "ablation_refresh",
        "ablation_overhead",
    ];
    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n########## {bin} ##########");
        let path = dir.join(bin);
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to spawn {}: {e}", path.display());
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
