//! Figures 1 and 2 — the paper's worked examples, executed live.
//!
//! Fig. 1 shows the coefficient-matrix shapes of RLC, SLC and PLC for
//! three source blocks in two levels ({x1} critical, {x2, x3} bulk).
//! Fig. 2 shows partial decoding via Gauss–Jordan elimination: five
//! coded blocks over six unknowns whose RREF pins down exactly the first
//! three. This binary regenerates both with real arithmetic over
//! GF(2⁸) and prints the matrices.

use prlc_core::{Encoder, PriorityProfile, Scheme};
use prlc_gf::{Gf256, GfElem};
use prlc_linalg::{rref, Matrix, ProgressiveRref};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1907); // ICDCS 2007 vintage

    // ---- Fig. 1: coefficient shapes --------------------------------
    println!("== Fig. 1: coefficient matrices (3 blocks, levels {{x1}} | {{x2,x3}}) ==");
    let profile = PriorityProfile::new(vec![1, 2]).expect("valid profile");
    for scheme in [Scheme::Rlc, Scheme::Slc, Scheme::Plc] {
        let enc = Encoder::new(scheme, profile.clone());
        // One coded block per level (RLC: both rows full-support).
        let rows: Vec<Vec<Gf256>> = match scheme {
            Scheme::Rlc => (0..3)
                .map(|_| enc.encode_coefficients(0, &mut rng).to_dense_vec())
                .collect(),
            _ => vec![
                enc.encode_coefficients(0, &mut rng).to_dense_vec(),
                enc.encode_coefficients(1, &mut rng).to_dense_vec(),
                enc.encode_coefficients(1, &mut rng).to_dense_vec(),
            ],
        };
        let m = Matrix::from_rows(rows);
        println!("\n({scheme})\n{m:?}");
    }

    // ---- Fig. 2: partial decoding via RREF -------------------------
    println!("\n== Fig. 2: Gauss-Jordan partial decoding (5 rows, 6 unknowns) ==");
    // Rows shaped like the figure: one touching x1 only, two touching
    // x1..x3, two touching everything.
    let shapes: [&[usize]; 5] = [
        &[1, 0, 0, 0, 0, 0],
        &[1, 1, 1, 0, 0, 0],
        &[1, 1, 1, 0, 0, 0],
        &[1, 1, 1, 1, 1, 1],
        &[1, 1, 1, 1, 1, 1],
    ];
    let rows: Vec<Vec<Gf256>> = shapes
        .iter()
        .map(|shape| {
            shape
                .iter()
                .map(|&on| {
                    if on == 1 {
                        Gf256::random_nonzero(&mut rng)
                    } else {
                        Gf256::ZERO
                    }
                })
                .collect()
        })
        .collect();
    let decoding_matrix = Matrix::from_rows(rows.clone());
    println!("\n(a) decoding matrix\n{decoding_matrix:?}");

    let reduced = rref(&decoding_matrix);
    println!("\n(c) RREF (rank {})\n{:?}", reduced.rank, reduced.matrix);

    // The progressive decoder reaches the same conclusion block by block.
    let mut dec: ProgressiveRref<Gf256> = ProgressiveRref::new(6);
    for (i, row) in rows.into_iter().enumerate() {
        dec.insert(row, ());
        println!(
            "after block {}: decoded prefix = {} unknown(s)",
            i + 1,
            dec.decoded_prefix()
        );
    }
    assert_eq!(dec.decoded_prefix(), 3, "Fig. 2 decodes exactly x1..x3");
    println!(
        "\n=> exactly the first {} unknowns decode from 5 of 6 equations, \
         as in the paper.",
        dec.decoded_prefix()
    );
}
