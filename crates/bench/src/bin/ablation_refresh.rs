//! Ablation A6 — in-network repair over repeated churn epochs
//! (DESIGN.md extension).
//!
//! The paper persists data through one failure event; under continuous
//! churn stored redundancy decays. This ablation runs the persistence
//! timeline with no repair vs functional repair (2 and 4 donors per
//! repaired block) and reports decodable levels after each epoch.

use prlc_bench::RunOpts;
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_net::{CoeffRep, FaultPlan, SourceFanout};
use prlc_sim::{fmt_f, simulate_persistence_timeline, Table, TimelineConfig};

fn main() {
    let opts = RunOpts::from_args();
    let (profile, nodes, locations, epochs) = if opts.quick {
        (
            PriorityProfile::new(vec![2, 3, 5]).expect("valid"),
            40,
            25,
            4,
        )
    } else {
        (
            PriorityProfile::new(vec![10, 20, 40]).expect("valid"),
            200,
            180,
            8,
        )
    };

    let base = TimelineConfig {
        scheme: Scheme::Plc,
        profile: profile.clone(),
        distribution: PriorityDistribution::uniform(3),
        nodes,
        locations,
        churn_per_epoch: 0.15,
        epochs,
        repair_donors: None,
        faults: FaultPlan::none(),
        fanout: SourceFanout::All,
        coeff_rep: CoeffRep::Dense,
        runs: opts.runs,
        seed: opts.seed.wrapping_add(99),
    };

    let variants: [(&str, Option<usize>); 3] = [
        ("no repair", None),
        ("repair r=2", Some(2)),
        ("repair r=4", Some(4)),
    ];
    let mut results = Vec::new();
    for (name, donors) in variants {
        eprintln!("[ablation_refresh] {name} ...");
        let mut cfg = base.clone();
        cfg.repair_donors = donors;
        results.push(simulate_persistence_timeline::<Gf256>(&cfg).expect("timeline simulation"));
    }

    let mut table = Table::new(["epoch", "no repair", "repair r=2", "repair r=4"]);
    for e in 0..=epochs {
        table.push_row([
            e.to_string(),
            fmt_f(results[0][e].mean, 3),
            fmt_f(results[1][e].mean, 3),
            fmt_f(results[2][e].mean, 3),
        ]);
    }
    opts.emit(
        "ablation_refresh",
        &format!(
            "Ablation A6: decodable levels over churn epochs (PLC, {nodes} nodes, \
             15% churn/epoch, M={locations})"
        ),
        &table,
    );
}
