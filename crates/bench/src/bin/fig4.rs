//! Figure 4 — "Analysis vs. simulations for PLC" (Sec. 5.1).
//!
//! Settings from the paper: 1000 source blocks, uniform priority
//! distribution; (a) 5 levels × 200 blocks, (b) 50 levels × 20 blocks.
//! Each series is the expected number of decoded priority levels against
//! the number of processed coded blocks, with the simulation averaged
//! over independent runs (95% CI).

use prlc_analysis::{curves, AnalysisOptions};
use prlc_bench::{sample_points, RunOpts};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_sim::{fmt_f, simulate_decoding_curve, CurveConfig, Persistence, Table};

fn main() {
    let opts = RunOpts::from_args();
    let configs: &[(&str, usize, usize, usize, usize)] = if opts.quick {
        // name, levels, per-level, max blocks, step
        &[
            ("fig4a-quick", 5, 20, 200, 20),
            ("fig4b-quick", 20, 5, 200, 20),
        ]
    } else {
        &[("fig4a", 5, 200, 1500, 50), ("fig4b", 50, 20, 1500, 50)]
    };

    for &(name, levels, per_level, max_blocks, step) in configs {
        let profile = PriorityProfile::uniform(levels, per_level).expect("valid profile");
        let dist = PriorityDistribution::uniform(levels);
        let n = profile.total_blocks();

        eprintln!(
            "[{name}] PLC, N={n}, {levels} levels x {per_level}, runs={} ...",
            opts.runs
        );
        let sim = simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: Persistence::Coding(Scheme::Plc),
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks,
            runs: opts.runs,
            seed: opts.seed,
        });

        let ms = sample_points(max_blocks, step);
        let ana = AnalysisOptions::sharp();
        let mut table = Table::new(["M", "analysis E(X)", "sim mean", "sim ci95"]);
        for &m in &ms {
            let a = curves::expected_levels(Scheme::Plc, &profile, &dist, m, &ana);
            let s = sim.summaries[m];
            table.push_row([
                m.to_string(),
                fmt_f(a, 4),
                fmt_f(s.mean, 4),
                fmt_f(s.ci95, 4),
            ]);
        }
        opts.emit(
            name,
            &format!("Fig. 4 ({name}): PLC analysis vs simulation — {levels} levels"),
            &table,
        );
    }
}
