//! Ablation A3 — field-size sensitivity (DESIGN.md).
//!
//! The paper assumes "a sufficiently large Galois field such as GF(2^8)"
//! (footnote 1). Smaller fields make random rows collide (linearly
//! dependent) more often, inflating the number of coded blocks needed.
//! This ablation measures the decoding overhead — blocks processed until
//! completion, divided by `N` — for GF(2⁴), GF(2⁸) and GF(2¹⁶), against
//! the analytical redundancy bound `1/∏(1 − q^{-i})`.

use prlc_bench::RunOpts;
use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme,
};
use prlc_gf::{Gf16, Gf256, Gf64k, GfElem};
use prlc_sim::{fmt_f, run_parallel, summarize, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn overhead<F: GfElem>(profile: &PriorityProfile, runs: usize, seed: u64) -> (f64, f64) {
    let n = profile.total_blocks();
    let dist = PriorityDistribution::uniform(profile.num_levels());
    let samples = run_parallel(runs, seed, |s| {
        let mut rng = StdRng::seed_from_u64(s);
        let enc = Encoder::new(Scheme::Plc, profile.clone());
        let mut dec: PlcDecoder<F, ()> = PlcDecoder::coefficients_only(profile.clone());
        let mut processed = 0usize;
        while !dec.is_complete() {
            let level = dist.sample_level(&mut rng);
            dec.insert_block(&enc.encode_unpayloaded::<F, _>(level, &mut rng));
            processed += 1;
            assert!(processed < 100 * n, "decode failed to converge");
        }
        processed as f64 / n as f64
    });
    let s = summarize(&samples);
    (s.mean, s.ci95)
}

fn main() {
    let opts = RunOpts::from_args();
    let profile = if opts.quick {
        PriorityProfile::flat(20).expect("valid")
    } else {
        PriorityProfile::flat(200).expect("valid")
    };
    let n = profile.total_blocks();

    let mut table = Table::new([
        "field",
        "measured overhead M*/N",
        "ci95",
        "analytic E[M*]/N (uniform rows)",
    ]);
    // Analytic column: collecting uniformly random q-ary rows, the
    // expected draws to reach rank N are
    //   E[M*] = sum_{r=0}^{N-1} 1 / (1 - q^{r-N})
    //         = N + sum_{k=1}^{N} q^{-k} / (1 - q^{-k}),
    // an upper bound here because SLC/PLC coefficients are nonzero
    // within their support, which only helps.
    let expected_overhead = |q: f64| -> f64 {
        let extra: f64 = (1..=n)
            .map(|k| {
                let qk = q.powi(-(k as i32));
                qk / (1.0 - qk)
            })
            .sum();
        (n as f64 + extra) / n as f64
    };
    let rows: [(&str, f64, fn(&PriorityProfile, usize, u64) -> (f64, f64)); 3] = [
        ("GF(2^4)", 16.0, overhead::<Gf16>),
        ("GF(2^8)", 256.0, overhead::<Gf256>),
        ("GF(2^16)", 65536.0, overhead::<Gf64k>),
    ];
    for (name, q, f) in rows {
        eprintln!("[ablation_field] {name} ...");
        let (mean, ci) = f(&profile, opts.runs, opts.seed);
        table.push_row([
            name.to_string(),
            fmt_f(mean, 5),
            fmt_f(ci, 5),
            fmt_f(expected_overhead(q), 5),
        ]);
    }
    opts.emit(
        "ablation_field",
        &format!("Ablation A3: decoding overhead vs field size (N={n}, RLC-shaped PLC)"),
        &table,
    );
}
