//! Ablation A2 — survivability sweep (DESIGN.md).
//!
//! The paper's motivating claim: "important data can be recovered with
//! much fewer coded blocks compared with random linear codes, hence they
//! are more likely to survive under severe network instability."
//! This sweep stores `2N` blocks with each scheme, destroys an
//! increasing fraction of them, and reports the decoded levels —
//! including the related-work baselines (priority-blind Growth Codes and
//! plain replication).

use prlc_analysis::{loss, AnalysisOptions};
use prlc_bench::RunOpts;
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_sim::{fmt_f, simulate_survivability, Persistence, SurvivabilityConfig, Table};

fn main() {
    let opts = RunOpts::from_args();
    let profile = if opts.quick {
        PriorityProfile::new(vec![2, 4, 10]).expect("valid profile")
    } else {
        PriorityProfile::new(vec![20, 60, 120]).expect("valid profile")
    };
    let n = profile.total_blocks();
    let dist = PriorityDistribution::from_weights(vec![0.3, 0.3, 0.4]).expect("valid");
    let stored = 2 * n;
    let fractions: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();

    let schemes = [
        Persistence::Coding(Scheme::Plc),
        Persistence::Coding(Scheme::Slc),
        Persistence::Coding(Scheme::Rlc),
        Persistence::Replication,
        Persistence::Growth,
    ];

    let mut table = Table::new([
        "loss fraction",
        "PLC",
        "PLC analysis",
        "SLC",
        "SLC analysis",
        "RLC",
        "Replication",
        "GrowthCodes",
    ]);
    let mut results = Vec::new();
    for p in schemes {
        eprintln!("[ablation_failure] {p}: storing {stored} blocks, sweeping loss ...");
        results.push(simulate_survivability::<Gf256>(
            &SurvivabilityConfig {
                persistence: p,
                profile: profile.clone(),
                distribution: dist.clone(),
                stored_blocks: stored,
                runs: opts.runs,
                seed: opts.seed.wrapping_add(21),
            },
            &fractions,
        ));
    }
    let ana = AnalysisOptions::sharp();
    for (i, &f) in fractions.iter().enumerate() {
        let plc_ana =
            loss::expected_levels_after_loss(Scheme::Plc, &profile, &dist, stored, f, &ana);
        let slc_ana =
            loss::expected_levels_after_loss(Scheme::Slc, &profile, &dist, stored, f, &ana);
        table.push_row([
            fmt_f(f, 1),
            fmt_f(results[0][i].mean, 3),
            fmt_f(plc_ana, 3),
            fmt_f(results[1][i].mean, 3),
            fmt_f(slc_ana, 3),
            fmt_f(results[2][i].mean, 3),
            fmt_f(results[3][i].mean, 3),
            fmt_f(results[4][i].mean, 3),
        ]);
    }
    opts.emit(
        "ablation_failure",
        &format!("Ablation A2: decoded levels vs block-loss fraction (N={n}, {stored} stored)"),
        &table,
    );
}
