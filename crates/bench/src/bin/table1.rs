//! Table 1 — "The priority distribution solved from the optimization
//! problem" (Sec. 5.3).
//!
//! Settings from the paper: 500 source blocks in three levels of 50, 100
//! and 350; feasibility constraints per case:
//!
//! * Case 1: (130, 1), (950, 2)
//! * Case 2: (265, 1), (287, 2)
//! * Case 3: (240, 1), (450, 2)
//!
//! plus the full-recovery constraint with α = 2, ε = 0.01 and the
//! simplex constraints. The paper's MATLAB search returns *the first
//! feasible point it finds*, so solutions are not unique — our solver's
//! distributions need not match the paper digit-for-digit; the table
//! verifies our solutions satisfy the same constraints, and prints the
//! paper's distributions alongside with *their* constraint evaluations
//! under our analysis.

use prlc_analysis::{
    curves, solve_feasibility, AnalysisOptions, FeasibilityProblem, FullRecoveryConstraint,
    SolverOptions,
};
use prlc_bench::RunOpts;
use prlc_core::{DecodingConstraint, PriorityDistribution, PriorityProfile, Scheme};
use prlc_sim::{fmt_f, Table};

/// The paper's published Table 1 rows, for side-by-side validation.
const PAPER_ROWS: [[f64; 3]; 3] = [
    [0.5138, 0.0768, 0.4094],
    [0.0, 0.6149, 0.3851],
    [0.2894, 0.3246, 0.3860],
];

fn main() {
    let opts = RunOpts::from_args();
    let profile = if opts.quick {
        PriorityProfile::new(vec![5, 10, 35]).expect("valid profile")
    } else {
        PriorityProfile::new(vec![50, 100, 350]).expect("valid profile")
    };
    let scale = profile.total_blocks() as f64 / 500.0;
    let scaled = |m: usize| -> usize { (m as f64 * scale).round() as usize };

    let cases: [(&str, [(usize, f64); 2]); 3] = [
        ("Case 1", [(scaled(130), 1.0), (scaled(950), 2.0)]),
        ("Case 2", [(scaled(265), 1.0), (scaled(287), 2.0)]),
        ("Case 3", [(scaled(240), 1.0), (scaled(450), 2.0)]),
    ];

    let ana = AnalysisOptions::sharp();
    let mut table = Table::new([
        "case",
        "constraints",
        "p1",
        "p2",
        "p3",
        "feasible",
        "paper p (for reference)",
        "paper p feasible under our analysis",
    ]);

    for (i, (name, constraints)) in cases.iter().enumerate() {
        let problem = FeasibilityProblem {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            constraints: constraints
                .iter()
                .map(|&(m, k)| DecodingConstraint::new(m, k))
                .collect(),
            full_recovery: Some(FullRecoveryConstraint::paper_default()),
            options: ana,
            // The paper's MATLAB evaluated feasibility under the technical
            // report's *approximate* analysis; its published rows sit a
            // hair outside our exact feasible region. 5e-3 of slack
            // reproduces the paper's accept/reject behaviour.
            tolerance: 5e-3,
        };
        eprintln!("[table1] solving {name} ...");
        let sol = solve_feasibility(
            &problem,
            &SolverOptions {
                max_evaluations: if opts.quick { 400 } else { 3000 },
                restarts: 10,
                seed: opts.seed,
            },
        );
        let paper = PriorityDistribution::from_weights(PAPER_ROWS[i].to_vec())
            .or_else(|_| {
                // Case 2 has p1 = 0; from_weights accepts zeros as long as
                // the total is positive, so this fallback never fires.
                PriorityDistribution::from_weights(vec![1.0; 3])
            })
            .expect("paper row is a valid distribution");
        let paper_feasible = problem.is_feasible(&paper);

        let cons_str = constraints
            .iter()
            .map(|&(m, k)| format!("({m}, {k})"))
            .collect::<Vec<_>>()
            .join(" ");
        table.push_row([
            name.to_string(),
            cons_str,
            fmt_f(sol.distribution.p(0), 4),
            fmt_f(sol.distribution.p(1), 4),
            fmt_f(sol.distribution.p(2), 4),
            format!("{} (penalty {:.2e})", sol.feasible, sol.penalty),
            format!(
                "[{:.4}, {:.4}, {:.4}]",
                PAPER_ROWS[i][0], PAPER_ROWS[i][1], PAPER_ROWS[i][2]
            ),
            paper_feasible.to_string(),
        ]);

        // Detailed constraint evaluation for the solved distribution.
        eprintln!("  solved p = {:?}", sol.distribution.as_slice());
        for check in problem.check(&sol.distribution) {
            eprintln!(
                "    {}: achieved {:.4}, required {:.4} -> {}",
                check.description, check.achieved, check.required, check.satisfied
            );
        }
        // And show E(X) at the constraint points for the paper's row.
        for &(m, _) in constraints {
            let e = curves::expected_levels(Scheme::Plc, &profile, &paper, m, &ana);
            eprintln!("    paper row: E(X_{{{m}}}) = {e:.4}");
        }
    }

    opts.emit(
        "table1",
        "Table 1: priority distributions solved from the feasibility problem",
        &table,
    );
}
