//! Ablation A1 — sparsity sweep (DESIGN.md).
//!
//! The pre-distribution protocol leans on Dimakis et al.'s result that
//! `O(ln N)` nonzero coefficients per coded block suffice for decoding
//! with high probability (Sec. 4 of the paper: "This reduces the number
//! of source blocks need to be disseminated from N locations to O(ln N)
//! locations. Clearly, SLC enjoys such results ... it is easy to see PLC
//! also benefits"). This sweep varies the density constant `c` in
//! `c · ln N` and measures the completion probability from `1.2 N`
//! coded blocks for RLC, SLC and PLC.

use prlc_bench::RunOpts;
use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
};
use prlc_gf::{Gf256, GfElem};
use prlc_sim::{fmt_f, run_parallel, summarize, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn completion_rate(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    factor: f64,
    blocks: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let outcomes = run_parallel(runs, seed, |s| {
        let mut rng = StdRng::seed_from_u64(s);
        let enc = Encoder::sparse(scheme, profile.clone(), factor);
        let complete = match scheme {
            Scheme::Slc => {
                let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(profile.clone());
                for _ in 0..blocks {
                    let level = dist.sample_level(&mut rng);
                    dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
                }
                dec.is_complete()
            }
            _ => {
                let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
                for _ in 0..blocks {
                    let level = dist.sample_level(&mut rng);
                    dec.insert_block(&enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
                }
                dec.is_complete()
            }
        };
        if complete {
            1.0
        } else {
            0.0
        }
    });
    summarize(&outcomes).mean
}

/// Completion rate under the *protocol's* sparsification: each source
/// block is folded into `ceil(c ln N)` random eligible coded blocks
/// (Sec. 4's per-source fanout, after Dimakis et al.), so every unknown
/// is covered by ~`c ln N` rows regardless of scheme — unlike row-wise
/// sparsity, where PLC's tail unknowns are only touched by last-level
/// rows.
fn completion_rate_source_fanout(
    scheme: Scheme,
    profile: &PriorityProfile,
    dist: &PriorityDistribution,
    factor: f64,
    blocks: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    use prlc_core::CodedBlock;
    use rand::seq::index::sample;
    let outcomes = run_parallel(runs, seed, |s| {
        let mut rng = StdRng::seed_from_u64(s);
        let n = profile.total_blocks();
        let levels = profile.num_levels();
        // Assign block levels by the distribution, grouped into parts.
        let counts = dist.allocate(blocks);
        let mut part_start = vec![0usize; levels + 1];
        for (i, &c) in counts.iter().enumerate() {
            part_start[i + 1] = part_start[i] + c;
        }
        let mut coded: Vec<CodedBlock<Gf256>> = counts
            .iter()
            .enumerate()
            .flat_map(|(lvl, &c)| (0..c).map(move |_| (lvl, ())))
            .map(|(lvl, ())| CodedBlock::empty(lvl, n))
            .collect();
        let d = ((factor * (n.max(2) as f64).ln()).ceil() as usize).max(1);
        for j in 0..n {
            let level = profile.level_of(j);
            let eligible = match scheme {
                Scheme::Slc => part_start[level]..part_start[level + 1],
                Scheme::Plc => part_start[level]..part_start[levels],
                Scheme::Rlc => 0..blocks,
            };
            let len = eligible.len();
            if len == 0 {
                continue;
            }
            for pick in sample(&mut rng, len, d.min(len)) {
                let beta = Gf256::random_nonzero(&mut rng);
                coded[eligible.start + pick].accumulate(j, beta, &[]);
            }
        }
        let complete = match scheme {
            Scheme::Slc => {
                let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(profile.clone());
                for b in &coded {
                    if !b.is_empty() {
                        dec.insert_block(b);
                    }
                }
                dec.is_complete()
            }
            _ => {
                let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
                for b in &coded {
                    if !b.is_empty() {
                        dec.insert_block(b);
                    }
                }
                dec.is_complete()
            }
        };
        if complete {
            1.0
        } else {
            0.0
        }
    });
    summarize(&outcomes).mean
}

fn main() {
    let opts = RunOpts::from_args();
    let (profile, blocks) = if opts.quick {
        (PriorityProfile::uniform(2, 10).expect("valid"), 30)
    } else {
        (PriorityProfile::uniform(5, 40).expect("valid"), 240)
    };
    let n = profile.total_blocks();
    let dist = PriorityDistribution::uniform(profile.num_levels());
    let factors = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0];

    let mut table = Table::new([
        "density factor c",
        "degree (~c ln N)",
        "RLC row-sparse",
        "SLC row-sparse",
        "PLC row-sparse",
        "SLC src-fanout",
        "PLC src-fanout",
    ]);
    for &c in &factors {
        eprintln!("[ablation_sparsity] c = {c} ...");
        let degree = (c * (n as f64).ln()).ceil() as usize;
        let mut row = vec![fmt_f(c, 2), degree.to_string()];
        for scheme in [Scheme::Rlc, Scheme::Slc, Scheme::Plc] {
            row.push(fmt_f(
                completion_rate(scheme, &profile, &dist, c, blocks, opts.runs, opts.seed),
                3,
            ));
        }
        for scheme in [Scheme::Slc, Scheme::Plc] {
            row.push(fmt_f(
                completion_rate_source_fanout(
                    scheme, &profile, &dist, c, blocks, opts.runs, opts.seed,
                ),
                3,
            ));
        }
        table.push_row(row);
    }
    opts.emit(
        "ablation_sparsity",
        &format!(
            "Ablation A1: completion probability vs sparsity (N={n}, M={blocks} blocks); \
             row-sparse = c·lnN nonzeros per coded block, src-fanout = each source \
             reaches c·lnN eligible blocks (the Sec. 4 protocol)"
        ),
        &table,
    );
}
