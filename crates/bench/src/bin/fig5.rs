//! Figure 5 — "Analysis vs. simulations for SLC" (Sec. 5.1).
//!
//! Same settings as Fig. 4 (1000 source blocks, uniform distribution,
//! 5 × 200 and 50 × 20 levels) with the stacked code. The paper notes
//! "the analysis agrees with experiments very well for SLC" — the SLC
//! analysis involves no approximation.

use prlc_analysis::{curves, AnalysisOptions};
use prlc_bench::{sample_points, RunOpts};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_sim::{fmt_f, simulate_decoding_curve, CurveConfig, Persistence, Table};

fn main() {
    let opts = RunOpts::from_args();
    let configs: &[(&str, usize, usize, usize, usize)] = if opts.quick {
        &[
            ("fig5a-quick", 5, 20, 300, 25),
            ("fig5b-quick", 20, 5, 300, 25),
        ]
    } else {
        // SLC needs more blocks than PLC to saturate (per-level coupon
        // effects), so extend the x-axis past Fig. 4's.
        &[("fig5a", 5, 200, 2000, 50), ("fig5b", 50, 20, 3000, 100)]
    };

    for &(name, levels, per_level, max_blocks, step) in configs {
        let profile = PriorityProfile::uniform(levels, per_level).expect("valid profile");
        let dist = PriorityDistribution::uniform(levels);

        eprintln!(
            "[{name}] SLC, N={}, {levels} levels x {per_level}, runs={} ...",
            profile.total_blocks(),
            opts.runs
        );
        let sim = simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: Persistence::Coding(Scheme::Slc),
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks,
            runs: opts.runs,
            seed: opts.seed.wrapping_add(5),
        });

        let ms = sample_points(max_blocks, step);
        let ana = AnalysisOptions::sharp();
        let mut table = Table::new(["M", "analysis E(X)", "sim mean", "sim ci95"]);
        for &m in &ms {
            let a = curves::expected_levels(Scheme::Slc, &profile, &dist, m, &ana);
            let s = sim.summaries[m];
            table.push_row([
                m.to_string(),
                fmt_f(a, 4),
                fmt_f(s.mean, 4),
                fmt_f(s.ci95, 4),
            ]);
        }
        opts.emit(
            name,
            &format!("Fig. 5 ({name}): SLC analysis vs simulation — {levels} levels"),
            &table,
        );
    }
}
