//! Ablation A5 — protocol bandwidth (DESIGN.md).
//!
//! Sec. 4 claims the pre-distribution protocol is bandwidth-efficient:
//! "The ideal protocol will disseminate a source block to a node only if
//! the source block will be encoded with the coded blocks on that node",
//! and sparsity cuts per-source fanout from all eligible locations to
//! `Θ(ln N)`. This ablation measures messages and hops for dense vs
//! sparse fanout under SLC and PLC on a ring DHT, against the naive
//! flooding cost (`N` sources × `W` nodes).

use prlc_bench::RunOpts;
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_net::{predistribute, CoeffRep, ProtocolConfig, RingNetwork, SourceFanout};
use prlc_sim::{fmt_f, run_parallel, summarize, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = RunOpts::from_args();
    let (w, profile, m) = if opts.quick {
        (40, PriorityProfile::new(vec![4, 6]).expect("valid"), 30)
    } else {
        (
            400,
            PriorityProfile::new(vec![40, 60, 100]).expect("valid"),
            400,
        )
    };
    let n = profile.total_blocks();
    let dist = PriorityDistribution::uniform(profile.num_levels());

    let mut table = Table::new([
        "scheme",
        "fanout",
        "messages",
        "mean hops",
        "total hop-msgs",
        "failed",
    ]);
    for scheme in [Scheme::Slc, Scheme::Plc] {
        for (fanout_name, fanout) in [
            ("dense (all eligible)", SourceFanout::All),
            ("sparse (1.5 ln N)", SourceFanout::Log { factor: 1.5 }),
        ] {
            eprintln!("[ablation_bandwidth] {scheme} / {fanout_name} ...");
            let profile2 = profile.clone();
            let dist2 = dist.clone();
            let samples = run_parallel(opts.runs.min(20), opts.seed, |s| {
                let mut rng = StdRng::seed_from_u64(s);
                let net = RingNetwork::new(w, &mut rng);
                let cfg = ProtocolConfig {
                    scheme,
                    profile: profile2.clone(),
                    distribution: dist2.clone(),
                    locations: m,
                    fanout,
                    coeff_rep: CoeffRep::Dense,
                    two_choices: true,
                    node_capacity: None,
                    shared_seed: s,
                };
                let sources: Vec<Vec<Gf256>> = vec![Vec::new(); profile2.total_blocks()];
                let dep = predistribute(&net, &cfg, &sources, &mut rng).expect("runs");
                let metr = dep.metrics();
                vec![
                    metr.messages as f64,
                    metr.mean_hops(),
                    metr.total_hops as f64,
                    metr.failed_deliveries as f64,
                ]
            });
            let col = |i: usize| -> f64 {
                summarize(&samples.iter().map(|r| r[i]).collect::<Vec<_>>()).mean
            };
            table.push_row([
                scheme.to_string(),
                fanout_name.to_string(),
                fmt_f(col(0), 1),
                fmt_f(col(1), 2),
                fmt_f(col(2), 1),
                fmt_f(col(3), 1),
            ]);
        }
    }
    table.push_row([
        "flooding".to_string(),
        "every node".to_string(),
        fmt_f((n * w) as f64, 1),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
    ]);
    opts.emit(
        "ablation_bandwidth",
        &format!("Ablation A5: dissemination cost on a {w}-node ring (N={n}, M={m} locations)"),
        &table,
    );
}
