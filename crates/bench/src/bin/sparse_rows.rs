//! Sparse coefficient rows — per-block coefficient memory vs `N`.
//!
//! The paper leans on Dimakis et al.: `O(ln N)` nonzero coefficients per
//! coded block suffice, so neither the encoder nor the caches should pay
//! `O(N)` per block. This benchmark measures what the code actually
//! stores, at `N ∈ {10^3, 10^4, 10^5}`:
//!
//! * the encoder path — `Encoder::sparse(·, 2.0)` rows in both
//!   representations (mean nonzeros and heap bytes per row), and
//! * the protocol path — cached slot blocks after a sparse-fanout
//!   predistribution (dense rows cost `N` bytes each regardless of how
//!   few sources reached the slot; sparse rows cost `5 · nnz`).
//!
//! Dense per-row bytes grow linearly with `N`; sparse per-row bytes must
//! track `ln N` times a constant — the committed CSV is the evidence.

use prlc_bench::RunOpts;
use prlc_core::{Encoder, PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_linalg::CoeffRep;
use prlc_net::{predistribute, ProtocolConfig, RingNetwork, SourceFanout};
use prlc_sim::{fmt_f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FACTOR: f64 = 2.0;

/// Mean (nnz, storage bytes) over `rows` encoder rows at size `n`.
fn encoder_row_cost(n: usize, rep: CoeffRep, rows: usize, seed: u64) -> (f64, f64) {
    let profile = PriorityProfile::flat(n).expect("valid profile");
    let enc = Encoder::sparse(Scheme::Rlc, profile, FACTOR).with_coeff_rep(rep);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nnz = 0usize;
    let mut bytes = 0usize;
    for _ in 0..rows {
        let row = enc.encode_coefficients::<Gf256, _>(0, &mut rng);
        nnz += row.nnz();
        bytes += row.storage_bytes();
    }
    (nnz as f64 / rows as f64, bytes as f64 / rows as f64)
}

/// Mean (nnz, storage bytes) over the non-empty slot blocks of one
/// sparse-fanout predistribution at size `n`.
fn slot_row_cost(n: usize, rep: CoeffRep, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = PriorityProfile::flat(n).expect("valid profile");
    let nodes = (n / 2).max(50);
    let net = RingNetwork::new(nodes, &mut rng);
    let cfg = ProtocolConfig {
        scheme: Scheme::Rlc,
        profile: profile.clone(),
        distribution: PriorityDistribution::uniform(1),
        locations: (n / 4).max(10),
        fanout: SourceFanout::Log { factor: FACTOR },
        coeff_rep: rep,
        two_choices: true,
        node_capacity: None,
        shared_seed: seed,
    };
    let sources: Vec<Vec<Gf256>> = vec![Vec::new(); n];
    let dep = predistribute(&net, &cfg, &sources, &mut rng).expect("fresh network");
    let mut nnz = 0usize;
    let mut bytes = 0usize;
    let mut count = 0usize;
    for slot in dep.slots() {
        if slot.block.is_empty() {
            continue;
        }
        nnz += slot.block.coefficients.nnz();
        bytes += slot.block.coefficients.storage_bytes();
        count += 1;
    }
    (nnz as f64 / count as f64, bytes as f64 / count as f64)
}

fn main() {
    let opts = RunOpts::from_args();
    let sizes: &[usize] = if opts.quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let mut table = Table::new([
        "N",
        "path",
        "rep",
        "nnz/row",
        "bytes/row",
        "ln N",
        "bytes / ln N",
    ]);
    for &n in sizes {
        let ln_n = (n as f64).ln();
        for (path, cost) in [
            (
                "encoder",
                Box::new(|rep| encoder_row_cost(n, rep, 50, opts.seed))
                    as Box<dyn Fn(CoeffRep) -> (f64, f64)>,
            ),
            ("protocol", Box::new(|rep| slot_row_cost(n, rep, opts.seed))),
        ] {
            for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
                eprintln!("[sparse_rows] N={n} / {path} / {rep:?} ...");
                let (nnz, bytes) = cost(rep);
                table.push_row([
                    n.to_string(),
                    path.to_string(),
                    format!("{rep:?}").to_lowercase(),
                    fmt_f(nnz, 1),
                    fmt_f(bytes, 1),
                    fmt_f(ln_n, 2),
                    fmt_f(bytes / ln_n, 1),
                ]);
            }
        }
    }
    opts.emit(
        "sparse_rows",
        &format!(
            "Sparse rows: per-block coefficient memory, factor {FACTOR} \
             (dense grows with N; sparse tracks ln N)"
        ),
        &table,
    );
}
