//! Figure 6 — "SLC vs. PLC" (Sec. 5.2).
//!
//! Settings from the paper: 1000 source blocks; (a) 10 levels × 100
//! blocks, (b) 50 levels × 20 blocks; uniform priority distribution.
//! Expected observations: the gap is modest at 10 levels and significant
//! at 50; the level count barely affects PLC but strongly degrades SLC
//! (coupon-collector effect as levels shrink).

use prlc_bench::{sample_points, RunOpts};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_sim::{fmt_f, simulate_decoding_curve, CurveConfig, Persistence, Table};

fn main() {
    let opts = RunOpts::from_args();
    let configs: &[(&str, usize, usize, usize, usize)] = if opts.quick {
        &[
            ("fig6a-quick", 5, 20, 300, 25),
            ("fig6b-quick", 20, 5, 300, 25),
        ]
    } else {
        &[("fig6a", 10, 100, 2500, 100), ("fig6b", 50, 20, 2500, 100)]
    };

    for &(name, levels, per_level, max_blocks, step) in configs {
        let profile = PriorityProfile::uniform(levels, per_level).expect("valid profile");
        let dist = PriorityDistribution::uniform(levels);

        eprintln!(
            "[{name}] SLC vs PLC, {levels} levels x {per_level}, runs={} ...",
            opts.runs
        );
        let mut curves = Vec::new();
        for scheme in [Scheme::Slc, Scheme::Plc] {
            curves.push(simulate_decoding_curve::<Gf256>(&CurveConfig {
                persistence: Persistence::Coding(scheme),
                profile: profile.clone(),
                distribution: dist.clone(),
                max_blocks,
                runs: opts.runs,
                seed: opts.seed.wrapping_add(6),
            }));
        }

        let ms = sample_points(max_blocks, step);
        let mut table = Table::new(["M", "SLC mean", "SLC ci95", "PLC mean", "PLC ci95"]);
        for &m in &ms {
            let slc = curves[0].summaries[m];
            let plc = curves[1].summaries[m];
            table.push_row([
                m.to_string(),
                fmt_f(slc.mean, 4),
                fmt_f(slc.ci95, 4),
                fmt_f(plc.mean, 4),
                fmt_f(plc.ci95, 4),
            ]);
        }
        opts.emit(
            name,
            &format!("Fig. 6 ({name}): SLC vs PLC — {levels} levels"),
            &table,
        );
    }
}
