//! Figure 7 — "The decoding curves from the priority distribution of
//! Table 1" (Sec. 5.3).
//!
//! Simulated PLC decoding curves for the three Table-1 priority
//! distributions (paper values), over the Sec. 5.3 profile (500 source
//! blocks in levels of 50/100/350). Expected shape: Case 1 reaches level
//! 1 by ~130 blocks; Case 2 reaches level 2 by ~287; every curve
//! satisfies its constraints; RLC would decode nothing before 500.

use prlc_analysis::{curves, AnalysisOptions};
use prlc_bench::{sample_points, RunOpts};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_sim::{fmt_f, simulate_decoding_curve, CurveConfig, Persistence, Table};

const PAPER_ROWS: [[f64; 3]; 3] = [
    [0.5138, 0.0768, 0.4094],
    [0.0, 0.6149, 0.3851],
    [0.2894, 0.3246, 0.3860],
];

fn main() {
    let opts = RunOpts::from_args();
    let (profile, max_blocks, step) = if opts.quick {
        (
            PriorityProfile::new(vec![5, 10, 35]).expect("valid profile"),
            100,
            10,
        )
    } else {
        (
            PriorityProfile::new(vec![50, 100, 350]).expect("valid profile"),
            1000,
            25,
        )
    };

    let mut sims = Vec::new();
    let dists: Vec<PriorityDistribution> = PAPER_ROWS
        .iter()
        .map(|row| PriorityDistribution::from_weights(row.to_vec()).expect("valid distribution"))
        .collect();
    for (i, dist) in dists.iter().enumerate() {
        eprintln!("[fig7] simulating case {} ...", i + 1);
        sims.push(simulate_decoding_curve::<Gf256>(&CurveConfig {
            persistence: Persistence::Coding(Scheme::Plc),
            profile: profile.clone(),
            distribution: dist.clone(),
            max_blocks,
            runs: opts.runs,
            seed: opts.seed.wrapping_add(7 + i as u64),
        }));
    }

    let ana = AnalysisOptions::sharp();
    let ms = sample_points(max_blocks, step);
    let mut table = Table::new([
        "M",
        "case1 sim",
        "case1 ci95",
        "case1 analysis",
        "case2 sim",
        "case2 ci95",
        "case2 analysis",
        "case3 sim",
        "case3 ci95",
        "case3 analysis",
    ]);
    for &m in &ms {
        let mut row = vec![m.to_string()];
        for (sim, dist) in sims.iter().zip(&dists) {
            let s = sim.summaries[m];
            let a = curves::expected_levels(Scheme::Plc, &profile, dist, m, &ana);
            row.push(fmt_f(s.mean, 4));
            row.push(fmt_f(s.ci95, 4));
            row.push(fmt_f(a, 4));
        }
        table.push_row(row);
    }
    opts.emit(
        "fig7",
        "Fig. 7: decoding curves for the Table-1 priority distributions",
        &table,
    );

    // Key crossover milestones called out in the paper's text.
    if !opts.quick {
        let first_reach = |sim: &prlc_sim::DecodingCurve, level: f64| -> Option<usize> {
            sim.summaries.iter().position(|s| s.mean >= level)
        };
        println!("\nMilestones (first M where the mean curve reaches a level):");
        for (i, sim) in sims.iter().enumerate() {
            println!(
                "  case {}: level 1 at M={:?}, level 2 at M={:?}",
                i + 1,
                first_reach(sim, 1.0),
                first_reach(sim, 2.0)
            );
        }
        println!("  (RLC requires at least 500 coded blocks to decode anything.)");
    }
}
