//! Ablation A7 — storage-budget planning tables (DESIGN.md extension).
//!
//! The deployer's view of Sec. 3.3: for a given profile and priority
//! distribution, how many surviving coded blocks buy each recovery
//! target, and how much node failure a given storage budget survives.
//! All values are analytical (`prlc-analysis::overhead` / `::loss`),
//! cross-validated against simulation by the library's test suite.

use prlc_analysis::{loss, overhead, AnalysisOptions};
use prlc_bench::RunOpts;
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_sim::{fmt_f, Table};

fn main() {
    let opts = RunOpts::from_args();
    let profile = if opts.quick {
        PriorityProfile::new(vec![5, 10, 35]).expect("valid")
    } else {
        PriorityProfile::new(vec![50, 100, 350]).expect("valid")
    };
    let n = profile.total_blocks();
    let ana = AnalysisOptions::sharp();

    let dists = [
        ("uniform", PriorityDistribution::uniform(3)),
        (
            "paper case 1",
            PriorityDistribution::from_weights(vec![0.5138, 0.0768, 0.4094]).expect("valid"),
        ),
        (
            "paper case 3",
            PriorityDistribution::from_weights(vec![0.2894, 0.3246, 0.3860]).expect("valid"),
        ),
    ];

    // Blocks needed per target.
    let mut budget = Table::new([
        "distribution",
        "scheme",
        "E(X)>=1",
        "E(X)>=2",
        "complete @99%",
    ]);
    for (name, dist) in &dists {
        for scheme in [Scheme::Slc, Scheme::Plc] {
            eprintln!("[ablation_overhead] budgets: {name} / {scheme} ...");
            let fmt_m = |m: Option<usize>| -> String { m.map_or("-".into(), |v| v.to_string()) };
            budget.push_row([
                name.to_string(),
                scheme.to_string(),
                fmt_m(overhead::blocks_for_expected_levels(
                    scheme, &profile, dist, 1.0, &ana,
                )),
                fmt_m(overhead::blocks_for_expected_levels(
                    scheme, &profile, dist, 2.0, &ana,
                )),
                fmt_m(overhead::blocks_for_complete(
                    scheme, &profile, dist, 0.99, &ana,
                )),
            ]);
        }
    }
    opts.emit(
        "ablation_overhead_budgets",
        &format!("Ablation A7a: block budgets per recovery target (N={n})"),
        &budget,
    );

    // Survivable loss per storage multiple.
    let mut surv = Table::new([
        "distribution",
        "stored",
        "max loss for E(X)>=1 (PLC)",
        "max loss for E(X)>=2 (PLC)",
    ]);
    for (name, dist) in &dists {
        for mult in [1.5f64, 2.0, 3.0] {
            eprintln!("[ablation_overhead] survivable loss: {name} x{mult} ...");
            let stored = (mult * n as f64) as usize;
            let fmt_l = |l: Option<f64>| -> String { l.map_or("-".into(), |v| fmt_f(v, 3)) };
            surv.push_row([
                name.to_string(),
                format!("{stored} ({mult}N)"),
                fmt_l(loss::max_survivable_loss(
                    Scheme::Plc,
                    &profile,
                    dist,
                    stored,
                    1.0,
                    1e-3,
                    &ana,
                )),
                fmt_l(loss::max_survivable_loss(
                    Scheme::Plc,
                    &profile,
                    dist,
                    stored,
                    2.0,
                    1e-3,
                    &ana,
                )),
            ]);
        }
    }
    opts.emit(
        "ablation_overhead_survivable",
        &format!("Ablation A7b: survivable loss fraction per storage budget (N={n})"),
        &surv,
    );
}
