//! Shared plumbing for the benchmark-harness binaries.
//!
//! Every `fig*`/`table*`/`ablation_*` binary regenerates one table or
//! figure of the paper's evaluation (or one ablation from DESIGN.md),
//! prints the series as an aligned table, and writes a CSV copy under
//! `results/`. Common flags:
//!
//! * `--runs=N` — independent repetitions per data point (default 40;
//!   the paper uses 100);
//! * `--paper` — paper fidelity (100 runs);
//! * `--quick` — smoke-test sizes for CI;
//! * `--out=DIR` — output directory (default `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Common command-line options for harness binaries.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Independent runs per data point.
    pub runs: usize,
    /// Smoke-test mode: shrink problem sizes drastically.
    pub quick: bool,
    /// Output directory for CSV copies.
    pub out_dir: PathBuf,
    /// Base seed.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            runs: 40,
            quick: false,
            out_dir: PathBuf::from("results"),
            seed: 0xC0DE,
        }
    }
}

impl RunOpts {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--runs=") {
                opts.runs = v.parse().unwrap_or_else(|_| {
                    eprintln!("warning: bad --runs value {v:?}, keeping {}", opts.runs);
                    opts.runs
                });
            } else if arg == "--paper" {
                opts.runs = 100;
            } else if arg == "--quick" {
                opts.quick = true;
                opts.runs = opts.runs.min(8);
            } else if let Some(v) = arg.strip_prefix("--out=") {
                opts.out_dir = PathBuf::from(v);
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                opts.seed = v.parse().unwrap_or(opts.seed);
            } else {
                eprintln!("warning: unknown argument {arg:?}");
            }
        }
        opts
    }

    /// Prints a rendered table to stdout and writes its CSV twin to
    /// `<out_dir>/<name>.csv`.
    pub fn emit(&self, name: &str, title: &str, table: &prlc_sim::Table) {
        println!("\n== {title} ==\n");
        print!("{}", table.render());
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        match fs::write(&path, table.to_csv()) {
            Ok(()) => println!("\n[written {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Evenly spaced sample points `0..=max` with the given step (always
/// includes `max`).
pub fn sample_points(max: usize, step: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..=max).step_by(step.max(1)).collect();
    if *pts.last().unwrap_or(&0) != max {
        pts.push(max);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_points_cover_endpoints() {
        assert_eq!(sample_points(10, 5), vec![0, 5, 10]);
        assert_eq!(sample_points(11, 5), vec![0, 5, 10, 11]);
        assert_eq!(sample_points(0, 5), vec![0]);
        assert_eq!(sample_points(3, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_opts() {
        let o = RunOpts::default();
        assert_eq!(o.runs, 40);
        assert!(!o.quick);
    }
}
