//! Criterion benchmarks for encoding throughput: dense vs sparse coded
//! blocks, with and without payload work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prlc_core::baseline::GrowthEncoder;
use prlc_core::{Encoder, PriorityProfile, Scheme};
use prlc_gf::{Gf256, GfElem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let profile = PriorityProfile::uniform(5, 40).expect("valid");
    let n = profile.total_blocks();
    let payload_len = 64usize;
    let mut rng = StdRng::seed_from_u64(7);
    let sources: Vec<Vec<Gf256>> = (0..n)
        .map(|_| (0..payload_len).map(|_| Gf256::random(&mut rng)).collect())
        .collect();

    let mut g = c.benchmark_group("encode_n200");
    g.throughput(Throughput::Bytes((n * payload_len) as u64));
    for (name, enc) in [
        ("plc_dense", Encoder::new(Scheme::Plc, profile.clone())),
        (
            "plc_sparse_2lnN",
            Encoder::sparse(Scheme::Plc, profile.clone(), 2.0),
        ),
        ("slc_dense", Encoder::new(Scheme::Slc, profile.clone())),
    ] {
        g.bench_function(name, |b| b.iter(|| enc.encode(4, &sources, &mut rng)));
    }
    g.bench_function("plc_coefficients_only", |b| {
        let enc = Encoder::new(Scheme::Plc, profile.clone());
        b.iter(|| enc.encode_unpayloaded::<Gf256, _>(4, &mut rng))
    });
    g.finish();

    let growth = GrowthEncoder::new(n);
    c.bench_function("growth_encode_d4", |b| {
        b.iter(|| growth.encode_with_degree(4, &sources, &mut rng))
    });
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
