//! Criterion benchmarks for the network substrate: routing and the
//! pre-distribution protocol end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};
use prlc_gf::Gf256;
use prlc_net::{
    predistribute, CoeffRep, Network, PlaneNetwork, ProtocolConfig, RingNetwork, SourceFanout,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ring = RingNetwork::new(1000, &mut rng);
    let plane = PlaneNetwork::with_connectivity_radius(1000, &mut rng);
    let mut g = c.benchmark_group("route_1000_nodes");
    g.bench_function("ring_chord", |b| {
        let mut r = StdRng::seed_from_u64(2);
        b.iter(|| {
            let from = ring.random_alive_node(&mut r).expect("alive");
            let p = ring.random_point(&mut r);
            ring.route(from, p)
        })
    });
    g.bench_function("plane_greedy", |b| {
        let mut r = StdRng::seed_from_u64(3);
        b.iter(|| {
            let from = plane.random_alive_node(&mut r).expect("alive");
            let p = plane.random_point(&mut r);
            plane.route(from, p)
        })
    });
    g.finish();
}

fn bench_predistribute(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let net = RingNetwork::new(200, &mut rng);
    let profile = PriorityProfile::uniform(5, 20).expect("valid");
    let sources: Vec<Vec<Gf256>> = (0..100)
        .map(|_| (0..32).map(|_| prlc_gf::GfElem::random(&mut rng)).collect())
        .collect();
    let mut g = c.benchmark_group("predistribute_ring200_n100");
    g.sample_size(20);
    for (name, fanout) in [
        ("dense", SourceFanout::All),
        ("sparse_1.5lnN", SourceFanout::Log { factor: 1.5 }),
    ] {
        let cfg = ProtocolConfig {
            scheme: Scheme::Plc,
            profile: profile.clone(),
            distribution: PriorityDistribution::uniform(5),
            locations: 200,
            fanout,
            coeff_rep: CoeffRep::Dense,
            two_choices: true,
            node_capacity: None,
            shared_seed: 9,
        };
        g.bench_function(name, |b| {
            let mut r = StdRng::seed_from_u64(5);
            b.iter(|| predistribute(&net, &cfg, &sources, &mut r).expect("protocol runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing, bench_predistribute);
criterion_main!(benches);
