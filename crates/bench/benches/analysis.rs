//! Criterion benchmarks for the numerical analysis: E(X) evaluations
//! (the inner loop of the feasibility solver) and the convolution
//! kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prlc_analysis::{conv, curves, AnalysisOptions};
use prlc_core::{PriorityDistribution, PriorityProfile, Scheme};

fn bench_expected_levels(c: &mut Criterion) {
    let opts = AnalysisOptions::sharp();
    let mut g = c.benchmark_group("expected_levels");
    g.sample_size(10);
    for (name, levels, per, m) in [
        ("slc_5x200_m1000", 5usize, 200usize, 1000usize),
        ("slc_50x20_m1000", 50, 20, 1000),
        ("plc_5x200_m1000", 5, 200, 1000),
        ("plc_50x20_m1000", 50, 20, 1000),
    ] {
        let profile = PriorityProfile::uniform(levels, per).expect("valid");
        let dist = PriorityDistribution::uniform(levels);
        let scheme = if name.starts_with("slc") {
            Scheme::Slc
        } else {
            Scheme::Plc
        };
        g.bench_function(name, |b| {
            b.iter(|| curves::expected_levels(scheme, &profile, &dist, black_box(m), &opts))
        });
    }
    g.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let a: Vec<f64> = (0..2000).map(|i| 1.0 / (i + 1) as f64).collect();
    let b: Vec<f64> = (0..2000).map(|i| 1.0 / (2 * i + 1) as f64).collect();
    let mut g = c.benchmark_group("convolution_2000");
    g.sample_size(20);
    g.bench_function("naive", |x| {
        x.iter(|| conv::convolve_naive(black_box(&a), black_box(&b), 2001))
    });
    g.bench_function("fft", |x| {
        x.iter(|| conv::convolve_fft(black_box(&a), black_box(&b), 2001))
    });
    g.finish();
}

criterion_group!(benches, bench_expected_levels, bench_convolution);
criterion_main!(benches);
