//! Criterion benchmarks for partial decoding — one full decode of each
//! scheme at a paper-relevant (but bench-friendly) size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prlc_core::{
    Encoder, PlcDecoder, PriorityDecoder, PriorityDistribution, PriorityProfile, Scheme, SlcDecoder,
};
use prlc_gf::Gf256;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LEVELS: usize = 5;
const PER_LEVEL: usize = 40;
const BLOCKS: usize = 2 * LEVELS * PER_LEVEL;

fn generate(scheme: Scheme, seed: u64) -> (PriorityProfile, Vec<prlc_core::CodedBlock<Gf256>>) {
    let profile = PriorityProfile::uniform(LEVELS, PER_LEVEL).expect("valid");
    let dist = PriorityDistribution::uniform(LEVELS);
    let enc = Encoder::new(scheme, profile.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = (0..BLOCKS)
        .map(|_| enc.encode_unpayloaded::<Gf256, _>(dist.sample_level(&mut rng), &mut rng))
        .collect();
    (profile, blocks)
}

fn bench_full_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_decode_n200");
    g.sample_size(20);
    for scheme in [Scheme::Rlc, Scheme::Slc, Scheme::Plc] {
        let (profile, blocks) = generate(scheme, 42);
        g.bench_function(scheme.to_string(), |b| {
            b.iter_batched(
                || blocks.clone(),
                |blocks| match scheme {
                    Scheme::Slc => {
                        let mut dec: SlcDecoder<Gf256, ()> =
                            SlcDecoder::coefficients_only(profile.clone());
                        for blk in &blocks {
                            dec.insert_block(blk);
                        }
                        dec.decoded_levels()
                    }
                    _ => {
                        let mut dec: PlcDecoder<Gf256, ()> =
                            PlcDecoder::coefficients_only(profile.clone());
                        for blk in &blocks {
                            dec.insert_block(blk);
                        }
                        dec.decoded_levels()
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_progressive_insert(c: &mut Criterion) {
    // Cost of one insertion into a half-full PLC decoder.
    let (profile, blocks) = generate(Scheme::Plc, 43);
    let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile);
    for blk in blocks.iter().take(BLOCKS / 2) {
        dec.insert_block(blk);
    }
    let probe = &blocks[BLOCKS - 1];
    c.bench_function("plc_insert_into_half_full_decoder", |b| {
        b.iter_batched(
            || dec.clone(),
            |mut d| d.insert_block(probe),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_full_decode, bench_progressive_insert);
criterion_main!(benches);
