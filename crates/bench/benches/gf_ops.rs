//! Criterion benchmarks for Galois-field arithmetic — the innermost
//! loops of every encoder and decoder.
//!
//! The `gf_axpy`/`gf_scale`/`gf_mul_slice` groups run every available
//! kernel backend (generic scalar, GF(2⁸) product table, SIMD where the
//! CPU supports it) on the *same* inputs, plus the dispatched entry
//! point, so one report compares them directly. The acceptance target
//! for the kernel layer is dispatched GF(2⁸) axpy ≥2× the generic
//! scalar backend on slices of 4 KiB and up.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prlc_gf::{kernel, Gf16, Gf256, Gf64k, GfElem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scalar_mul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("gf_scalar_mul");
    let a16: Vec<Gf16> = (0..1024).map(|_| Gf16::random(&mut rng)).collect();
    let a256: Vec<Gf256> = (0..1024).map(|_| Gf256::random(&mut rng)).collect();
    let a64k: Vec<Gf64k> = (0..1024).map(|_| Gf64k::random(&mut rng)).collect();
    g.throughput(Throughput::Elements(1024));
    g.bench_function("gf16", |b| {
        b.iter(|| {
            let mut acc = Gf16::ONE;
            for &x in &a16 {
                acc = acc.gf_mul(black_box(x)).gf_add(Gf16::ONE);
            }
            acc
        })
    });
    g.bench_function("gf256", |b| {
        b.iter(|| {
            let mut acc = Gf256::ONE;
            for &x in &a256 {
                acc = acc.gf_mul(black_box(x)).gf_add(Gf256::ONE);
            }
            acc
        })
    });
    g.bench_function("gf64k", |b| {
        b.iter(|| {
            let mut acc = Gf64k::ONE;
            for &x in &a64k {
                acc = acc.gf_mul(black_box(x)).gf_add(Gf64k::ONE);
            }
            acc
        })
    });
    g.finish();
}

/// Slice sizes in field elements. 4096 is the acceptance size for the
/// ≥2× dispatched-vs-scalar target; 65536 shows the asymptote.
const AXPY_LENS: [usize; 4] = [256, 1024, 4096, 65536];

fn bench_axpy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("gf_axpy");
    for len in AXPY_LENS {
        let src: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
        let mut dst: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
        let coeff = Gf256::from_index(0xA7);
        g.throughput(Throughput::Bytes(len as u64));
        // Same inputs for every backend, so rows compare directly.
        for backend in kernel::available_backends() {
            g.bench_function(format!("gf256_axpy_{len}_{backend}"), |b| {
                b.iter(|| kernel::axpy_with(backend, black_box(&mut dst), coeff, black_box(&src)))
            });
        }
        g.bench_function(format!("gf256_axpy_{len}_dispatched"), |b| {
            b.iter(|| kernel::axpy(black_box(&mut dst), coeff, black_box(&src)))
        });
    }
    g.finish();
}

fn bench_scale(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut g = c.benchmark_group("gf_scale");
    for len in [1024usize, 4096] {
        let mut dst: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
        let coeff = Gf256::from_index(0xA7);
        g.throughput(Throughput::Bytes(len as u64));
        for backend in kernel::available_backends() {
            g.bench_function(format!("gf256_scale_{len}_{backend}"), |b| {
                b.iter(|| kernel::scale_slice_with(backend, black_box(&mut dst), coeff))
            });
        }
    }
    g.finish();
}

fn bench_mul_slice(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = c.benchmark_group("gf_mul_slice");
    for len in [1024usize, 4096] {
        let src: Vec<Gf256> = (0..len).map(|_| Gf256::random_nonzero(&mut rng)).collect();
        let mut dst: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
        g.throughput(Throughput::Bytes(len as u64));
        for backend in kernel::available_backends() {
            g.bench_function(format!("gf256_mul_slice_{len}_{backend}"), |b| {
                b.iter(|| kernel::mul_slice_with(backend, black_box(&mut dst), black_box(&src)))
            });
        }
    }
    g.finish();
}

fn bench_inv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let xs: Vec<Gf256> = (0..1024).map(|_| Gf256::random_nonzero(&mut rng)).collect();
    c.bench_function("gf256_inv_1024", |b| {
        b.iter(|| {
            let mut acc = Gf256::ONE;
            for &x in &xs {
                acc = acc.gf_add(x.gf_inv().expect("nonzero"));
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_scalar_mul,
    bench_axpy,
    bench_scale,
    bench_mul_slice,
    bench_inv
);
criterion_main!(benches);
