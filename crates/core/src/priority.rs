//! The priority model: level sizes, boundaries, distributions and
//! decoding constraints (Sec. 2 and Sec. 3.3 of the paper).

use std::fmt;
use std::ops::Range;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How `N` source blocks are divided into `n` priority levels.
///
/// Level `0` is the most important (the paper's level 1). With the
/// paper's notation, `sizes[i] = a_{i+1}` and [`bound`](Self::bound)`(i)`
/// `= b_i` — the cumulative number of source blocks in levels `0..i`.
///
/// # Example
///
/// ```
/// use prlc_core::PriorityProfile;
///
/// # fn main() -> Result<(), prlc_core::ProfileError> {
/// // The Sec. 5.3 profile: 500 blocks in levels of 50, 100 and 350.
/// let p = PriorityProfile::new(vec![50, 100, 350])?;
/// assert_eq!(p.num_levels(), 3);
/// assert_eq!(p.total_blocks(), 500);
/// assert_eq!(p.bound(2), 150);
/// assert_eq!(p.level_of(149), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PriorityProfile {
    sizes: Vec<usize>,
    /// `bounds[i] = sizes[0] + … + sizes[i-1]`; `bounds[0] == 0` and
    /// `bounds[n] == N`.
    bounds: Vec<usize>,
}

/// Error constructing a [`PriorityProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// No levels were given.
    Empty,
    /// A level had zero source blocks (index attached).
    EmptyLevel(usize),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Empty => write!(f, "priority profile has no levels"),
            ProfileError::EmptyLevel(i) => {
                write!(f, "priority level {i} has zero source blocks")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl PriorityProfile {
    /// Builds a profile from per-level source-block counts, most
    /// important level first.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if `sizes` is empty or any level is empty.
    pub fn new(sizes: Vec<usize>) -> Result<Self, ProfileError> {
        if sizes.is_empty() {
            return Err(ProfileError::Empty);
        }
        if let Some(i) = sizes.iter().position(|&s| s == 0) {
            return Err(ProfileError::EmptyLevel(i));
        }
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        bounds.push(0);
        let mut acc = 0usize;
        for &s in &sizes {
            acc += s;
            bounds.push(acc);
        }
        Ok(PriorityProfile { sizes, bounds })
    }

    /// A profile with `levels` equal levels of `per_level` blocks each —
    /// the shape used throughout Sec. 5.1/5.2 of the paper (e.g. 5 × 200,
    /// 50 × 20).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if either argument is zero.
    pub fn uniform(levels: usize, per_level: usize) -> Result<Self, ProfileError> {
        PriorityProfile::new(vec![per_level; levels])
    }

    /// A single-level profile over `total` blocks (plain RLC shape).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if `total` is zero.
    pub fn flat(total: usize) -> Result<Self, ProfileError> {
        PriorityProfile::new(vec![total])
    }

    /// Number of priority levels `n`.
    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of source blocks `N`.
    pub fn total_blocks(&self) -> usize {
        *self.bounds.last().expect("bounds is never empty")
    }

    /// Number of source blocks in `level` (the paper's `a_{level+1}`).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn size(&self, level: usize) -> usize {
        self.sizes[level]
    }

    /// Cumulative number of source blocks in levels `0..level` (the
    /// paper's `b_level`; `bound(0) == 0`, `bound(n) == N`).
    ///
    /// # Panics
    ///
    /// Panics if `level > num_levels()`.
    pub fn bound(&self, level: usize) -> usize {
        self.bounds[level]
    }

    /// The contiguous source-block index range of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn blocks_of(&self, level: usize) -> Range<usize> {
        self.bounds[level]..self.bounds[level + 1]
    }

    /// The level containing source block `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= total_blocks()`.
    pub fn level_of(&self, idx: usize) -> usize {
        assert!(
            idx < self.total_blocks(),
            "block index {idx} out of range ({})",
            self.total_blocks()
        );
        // bounds is sorted; find the level whose range contains idx.
        match self.bounds.binary_search(&idx) {
            Ok(i) => i,      // idx == bounds[i], start of level i
            Err(i) => i - 1, // bounds[i-1] < idx < bounds[i]
        }
    }

    /// Per-level sizes, most important first.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of *whole* levels contained in the block-index prefix
    /// `0..prefix` — how many priority levels a decoded prefix covers.
    pub fn levels_in_prefix(&self, prefix: usize) -> usize {
        match self.bounds.binary_search(&prefix) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

/// The fraction of coded blocks generated at each priority level — the
/// paper's *priority distribution* `p_1 … p_n` (Sec. 3.3).
///
/// Invariant: entries are non-negative and sum to 1 (within floating
/// point tolerance; construction normalises).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityDistribution(Vec<f64>);

/// Error constructing a [`PriorityDistribution`].
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// No levels were given.
    Empty,
    /// A weight was negative or non-finite (index and value attached).
    InvalidWeight(usize, f64),
    /// All weights were zero, so no distribution exists.
    ZeroMass,
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::Empty => write!(f, "priority distribution has no levels"),
            DistributionError::InvalidWeight(i, w) => {
                write!(f, "invalid weight {w} at level {i}")
            }
            DistributionError::ZeroMass => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for DistributionError {}

impl PriorityDistribution {
    /// Builds a distribution from non-negative weights, normalising them
    /// to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, DistributionError> {
        if weights.is_empty() {
            return Err(DistributionError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(DistributionError::InvalidWeight(i, w));
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistributionError::ZeroMass);
        }
        Ok(PriorityDistribution(
            weights.into_iter().map(|w| w / total).collect(),
        ))
    }

    /// The uniform distribution over `n` levels — the paper's default and
    /// the initial point of its feasibility search.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution needs at least one level");
        PriorityDistribution(vec![1.0 / n as f64; n])
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.0.len()
    }

    /// The probability mass of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn p(&self, level: usize) -> f64 {
        self.0[level]
    }

    /// All masses as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Total mass of levels `range` (e.g. the paper's `P_{i,j}`).
    pub fn mass(&self, range: Range<usize>) -> f64 {
        self.0[range].iter().sum()
    }

    /// Samples a level index.
    pub fn sample_level<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.0.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.0.len() - 1 // floating-point slack lands in the last level
    }

    /// Splits `m` storage locations into per-level counts proportional to
    /// the distribution, using largest-remainder rounding so the counts
    /// sum exactly to `m` (used by the pre-distribution protocol to size
    /// the location parts of Fig. 3).
    pub fn allocate(&self, m: usize) -> Vec<usize> {
        let n = self.0.len();
        let mut counts: Vec<usize> = Vec::with_capacity(n);
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for (i, &p) in self.0.iter().enumerate() {
            let exact = p * m as f64;
            let floor = exact.floor() as usize;
            counts.push(floor);
            assigned += floor;
            remainders.push((i, exact - floor as f64));
        }
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(i, _) in remainders.iter().take(m - assigned) {
            counts[i] += 1;
        }
        counts
    }
}

/// A decoding constraint `(M_i, k_i)` from Sec. 3.3: from `m` randomly
/// accumulated coded blocks, the expected number of decoded levels must
/// be at least `min_levels`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodingConstraint {
    /// The number of randomly accumulated coded blocks `M_i`.
    pub blocks: usize,
    /// The required expected number of decoded levels `k_i`.
    pub min_levels: f64,
}

impl DecodingConstraint {
    /// Convenience constructor.
    pub fn new(blocks: usize, min_levels: f64) -> Self {
        DecodingConstraint { blocks, min_levels }
    }
}

impl fmt::Display for DecodingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.blocks, self.min_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profile_bounds_and_levels() {
        let p = PriorityProfile::new(vec![50, 100, 350]).unwrap();
        assert_eq!(p.num_levels(), 3);
        assert_eq!(p.total_blocks(), 500);
        assert_eq!(p.bound(0), 0);
        assert_eq!(p.bound(1), 50);
        assert_eq!(p.bound(2), 150);
        assert_eq!(p.bound(3), 500);
        assert_eq!(p.blocks_of(1), 50..150);
        assert_eq!(p.level_of(0), 0);
        assert_eq!(p.level_of(49), 0);
        assert_eq!(p.level_of(50), 1);
        assert_eq!(p.level_of(499), 2);
        assert_eq!(p.sizes(), &[50, 100, 350]);
    }

    #[test]
    fn profile_rejects_bad_input() {
        assert_eq!(PriorityProfile::new(vec![]), Err(ProfileError::Empty));
        assert_eq!(
            PriorityProfile::new(vec![3, 0, 2]),
            Err(ProfileError::EmptyLevel(1))
        );
        assert!(PriorityProfile::uniform(0, 5).is_err());
        assert!(PriorityProfile::uniform(5, 0).is_err());
    }

    #[test]
    fn uniform_profile_matches_paper_settings() {
        // Sec. 5.1: 1000 blocks as 5 x 200 and 50 x 20.
        let p5 = PriorityProfile::uniform(5, 200).unwrap();
        assert_eq!(p5.total_blocks(), 1000);
        let p50 = PriorityProfile::uniform(50, 20).unwrap();
        assert_eq!(p50.total_blocks(), 1000);
        assert_eq!(p50.size(49), 20);
    }

    #[test]
    fn levels_in_prefix() {
        let p = PriorityProfile::new(vec![2, 3, 5]).unwrap();
        assert_eq!(p.levels_in_prefix(0), 0);
        assert_eq!(p.levels_in_prefix(1), 0);
        assert_eq!(p.levels_in_prefix(2), 1);
        assert_eq!(p.levels_in_prefix(4), 1);
        assert_eq!(p.levels_in_prefix(5), 2);
        assert_eq!(p.levels_in_prefix(9), 2);
        assert_eq!(p.levels_in_prefix(10), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_of_out_of_range_panics() {
        let p = PriorityProfile::new(vec![2]).unwrap();
        p.level_of(2);
    }

    #[test]
    fn distribution_normalises() {
        let d = PriorityDistribution::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((d.p(0) - 0.25).abs() < 1e-12);
        assert!((d.p(1) - 0.75).abs() < 1e-12);
        assert!((d.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_rejects_bad_weights() {
        assert_eq!(
            PriorityDistribution::from_weights(vec![]),
            Err(DistributionError::Empty)
        );
        assert!(matches!(
            PriorityDistribution::from_weights(vec![1.0, -0.5]),
            Err(DistributionError::InvalidWeight(1, _))
        ));
        assert!(matches!(
            PriorityDistribution::from_weights(vec![f64::NAN]),
            Err(DistributionError::InvalidWeight(0, _))
        ));
        assert_eq!(
            PriorityDistribution::from_weights(vec![0.0, 0.0]),
            Err(DistributionError::ZeroMass)
        );
    }

    #[test]
    fn distribution_mass_ranges() {
        let d = PriorityDistribution::from_weights(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((d.mass(0..4) - 1.0).abs() < 1e-12);
        assert!((d.mass(1..3) - 0.5).abs() < 1e-12);
        assert_eq!(d.mass(2..2), 0.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let d = PriorityDistribution::from_weights(vec![8.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 3];
        let trials = 20_000;
        for _ in 0..trials {
            counts[d.sample_level(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / trials as f64;
        assert!((f0 - 0.8).abs() < 0.02, "observed {f0}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn zero_probability_levels_never_sampled() {
        // Case 2 of Table 1 has p1 = 0: level 0 must never be drawn.
        let d = PriorityDistribution::from_weights(vec![0.0, 0.6149, 0.3851]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5000 {
            assert_ne!(d.sample_level(&mut rng), 0);
        }
    }

    #[test]
    fn allocate_sums_exactly() {
        let d = PriorityDistribution::from_weights(vec![1.0, 1.0, 1.0]).unwrap();
        for m in [0usize, 1, 2, 3, 10, 100, 101] {
            let counts = d.allocate(m);
            assert_eq!(counts.iter().sum::<usize>(), m, "m={m}");
        }
        // Largest-remainder keeps proportions: 100 into [0.5138, 0.0768,
        // 0.4094] (Table 1 case 1) gives 51/8/41 or 52/8/40-ish.
        let d = PriorityDistribution::from_weights(vec![0.5138, 0.0768, 0.4094]).unwrap();
        let counts = d.allocate(100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!((counts[0] as i64 - 51).unsigned_abs() <= 1);
    }

    #[test]
    fn constraint_display() {
        let c = DecodingConstraint::new(130, 1.0);
        assert_eq!(c.to_string(), "(130, 1)");
    }
}
