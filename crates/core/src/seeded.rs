//! Compact coded blocks: coefficients carried as a seed, not a vector.
//!
//! A dense coded block over `N = 1000` source blocks hauls a kilobyte of
//! coefficients next to its payload. Deployed network-coding systems
//! avoid this by shipping a small *generation seed* instead: the
//! receiver re-derives the coefficient vector from `(seed, level)` with
//! the same PRG the encoder used. This module provides that wire format
//! for all three schemes. (It applies to *source-encoded* blocks; a
//! cache that accumulates contributions from many sources, as in the
//! Sec. 4 protocol, would store one `(source, seed)` pair per
//! contribution rather than a single seed.)
//!
//! The paper itself always stores explicit coefficients; this is an
//! engineering extension (documented in DESIGN.md) that changes no
//! coding behaviour — [`SeededEncoder::expand`] reproduces exactly the
//! block an [`Encoder`] would have produced from the same RNG stream.

use prlc_gf::GfElem;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::block::CodedBlock;
use crate::encoder::Encoder;
use crate::priority::PriorityProfile;
use crate::scheme::Scheme;

/// A coded block whose coefficients live in a 64-bit seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompactBlock<F> {
    /// The priority level the block was generated at.
    pub level: usize,
    /// The seed the coefficient vector expands from.
    pub seed: u64,
    /// The encoded payload.
    pub payload: Vec<F>,
}

impl<F: GfElem> CompactBlock<F> {
    /// Wire size in field symbols, counting the seed as the equivalent
    /// of `8 / symbol_bytes` symbols — for comparing against the
    /// `N + payload` cost of an explicit [`CodedBlock`].
    pub fn wire_symbols(&self) -> usize {
        let symbol_bytes = (F::BITS as usize).div_ceil(8);
        self.payload.len() + 8usize.div_ceil(symbol_bytes) + 1
    }
}

/// Encodes blocks whose coefficients are PRG-derived from a seed.
#[derive(Debug, Clone)]
pub struct SeededEncoder {
    inner: Encoder,
}

impl SeededEncoder {
    /// A seeded encoder with full-density coefficients.
    pub fn new(scheme: Scheme, profile: PriorityProfile) -> Self {
        SeededEncoder {
            inner: Encoder::new(scheme, profile),
        }
    }

    /// A seeded encoder with `c · ln N`-sparse coefficients.
    pub fn sparse(scheme: Scheme, profile: PriorityProfile, factor: f64) -> Self {
        SeededEncoder {
            inner: Encoder::sparse(scheme, profile, factor),
        }
    }

    /// The underlying coefficient encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.inner
    }

    /// Derivation of the coefficient RNG for `(seed, level)`.
    ///
    /// Level is mixed in so that reusing one seed across levels (e.g. a
    /// node numbering its blocks 0, 1, 2, …) still yields independent
    /// vectors.
    fn coeff_rng(seed: u64, level: usize) -> StdRng {
        // SplitMix64-style finalizer over the (seed, level) pair.
        let mut z = seed ^ (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Encodes one compact block at `level` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or `sources.len()` mismatches
    /// the profile.
    pub fn encode<F: GfElem>(
        &self,
        level: usize,
        seed: u64,
        sources: &[Vec<F>],
    ) -> CompactBlock<F> {
        let mut rng = Self::coeff_rng(seed, level);
        let full = self.inner.encode(level, sources, &mut rng);
        CompactBlock {
            level,
            seed,
            payload: full.payload,
        }
    }

    /// Re-derives the explicit coded block (coefficients included) from
    /// a compact block — what a decoder does on receipt.
    pub fn expand<F: GfElem>(&self, block: &CompactBlock<F>) -> CodedBlock<F> {
        let mut rng = Self::coeff_rng(block.seed, block.level);
        let coefficients = self
            .inner
            .encode_coefficients::<F, _>(block.level, &mut rng);
        CodedBlock {
            level: block.level,
            coefficients,
            payload: block.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{PlcDecoder, PriorityDecoder};
    use prlc_gf::Gf256;
    use rand::Rng;

    fn profile() -> PriorityProfile {
        PriorityProfile::new(vec![2, 3, 5]).unwrap()
    }

    fn sources(seed: u64) -> Vec<Vec<Gf256>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..10)
            .map(|_| (0..4).map(|_| Gf256::random(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn expand_reproduces_the_encoding() {
        let enc = SeededEncoder::new(Scheme::Plc, profile());
        let srcs = sources(1);
        let compact = enc.encode(2, 12345, &srcs);
        let full = enc.expand(&compact);
        // The expanded coefficients must regenerate the same payload.
        let mut want = vec![Gf256::ZERO; 4];
        for (c, s) in full.coefficients.to_dense_vec().iter().zip(&srcs) {
            Gf256::axpy(&mut want, *c, s);
        }
        assert_eq!(full.payload, want);
        assert_eq!(full.level, 2);
    }

    #[test]
    fn seeded_blocks_decode_end_to_end() {
        let p = profile();
        let enc = SeededEncoder::new(Scheme::Plc, p.clone());
        let srcs = sources(2);
        let mut dec = PlcDecoder::with_payloads(p);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sent = 0;
        while !dec.is_complete() {
            let level = rng.gen_range(0..3);
            let compact = enc.encode(level, rng.gen(), &srcs);
            dec.insert_block(&enc.expand(&compact));
            sent += 1;
            assert!(sent < 500, "failed to decode from seeded blocks");
        }
        for (i, s) in srcs.iter().enumerate() {
            assert_eq!(dec.recovered(i).unwrap(), &s[..]);
        }
    }

    #[test]
    fn different_seeds_give_independent_vectors() {
        let enc = SeededEncoder::new(Scheme::Rlc, profile());
        let srcs = sources(4);
        let a = enc.expand(&enc.encode::<Gf256>(0, 1, &srcs));
        let b = enc.expand(&enc.encode::<Gf256>(0, 2, &srcs));
        assert_ne!(a.coefficients, b.coefficients);
        // Same seed, same level: identical.
        let a2 = enc.expand(&enc.encode::<Gf256>(0, 1, &srcs));
        assert_eq!(a.coefficients, a2.coefficients);
        // Same seed, different level: different stream.
        let c = enc.expand(&enc.encode::<Gf256>(1, 1, &srcs));
        assert_ne!(a.coefficients, c.coefficients);
    }

    #[test]
    fn compact_blocks_are_much_smaller_on_the_wire() {
        let enc = SeededEncoder::new(Scheme::Rlc, PriorityProfile::flat(1000).unwrap());
        let srcs: Vec<Vec<Gf256>> = vec![vec![Gf256::ONE; 16]; 1000];
        let compact = enc.encode::<Gf256>(0, 9, &srcs);
        let full = enc.expand(&compact);
        let full_symbols = full.coefficients.len() + full.payload.len();
        assert!(compact.wire_symbols() * 10 < full_symbols);
    }

    #[test]
    fn sparse_seeded_encoder_matches_degree() {
        let p = PriorityProfile::flat(100).unwrap();
        let enc = SeededEncoder::sparse(Scheme::Rlc, p, 2.0);
        let srcs: Vec<Vec<Gf256>> = vec![Vec::new(); 100];
        let full = enc.expand(&enc.encode::<Gf256>(0, 77, &srcs));
        let expected = (2.0 * 100f64.ln()).ceil() as usize;
        assert_eq!(full.degree(), expected);
    }
}
