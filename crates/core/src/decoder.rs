//! Partial decoders for the three schemes (Sec. 3.2 of the paper).
//!
//! * [`PlcDecoder`] — one progressive Gauss–Jordan machine over all `N`
//!   unknowns; the decoded *prefix* maps to decoded levels through the
//!   profile's boundaries. Also serves RLC (via [`RlcDecoder`]): with
//!   full-support rows the prefix jumps from 0 to `N` at completion,
//!   which is exactly RLC's all-or-nothing behaviour.
//! * [`SlcDecoder`] — one independent RLC decoder per level ("the partial
//!   decoding algorithm is essentially the decoding algorithm of RLC for
//!   the coded blocks in each level").
//!
//! Decoders are generic over the mirrored payload: `Vec<F>` recovers the
//! actual data, `()` tracks decodability only (used by the large
//! decoding-curve experiments, where payload work would double the cost).

use prlc_gf::GfElem;
use prlc_linalg::{CoeffRow, InsertOutcome, ProgressiveRref, RowPayload};

use crate::block::CodedBlock;
use crate::priority::PriorityProfile;

/// Payload types a decoder can extract from a [`CodedBlock`].
///
/// This is a sealed helper that lets one decoder implementation serve
/// both full decoding (`Vec<F>`) and decodability-only tracking (`()`).
pub trait BlockPayload<F: GfElem>: RowPayload<F> + private::Sealed {
    /// Extracts this payload from a coded block.
    fn from_block(block: &CodedBlock<F>) -> Self;
}

impl<F: GfElem> BlockPayload<F> for () {
    fn from_block(_: &CodedBlock<F>) -> Self {}
}

impl<F: GfElem> BlockPayload<F> for Vec<F> {
    fn from_block(block: &CodedBlock<F>) -> Self {
        block.payload.clone()
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for () {}
    impl<F> Sealed for Vec<F> {}
}

/// Common interface over the partial decoders.
pub trait PriorityDecoder<F: GfElem> {
    /// Feeds one coded block to the decoder.
    fn insert_block(&mut self, block: &CodedBlock<F>) -> InsertOutcome;

    /// The number of *consecutive* priority levels decoded, starting from
    /// the most important — the paper's random variable `X` under the
    /// strict priority model.
    fn decoded_levels(&self) -> usize;

    /// Total number of source blocks currently recovered (not
    /// necessarily a prefix).
    fn decoded_blocks(&self) -> usize;

    /// Whether every source block is recovered.
    fn is_complete(&self) -> bool;

    /// Total number of blocks offered, including redundant ones.
    fn blocks_processed(&self) -> usize;
}

/// Progressive decoder for PLC (and RLC) blocks.
///
/// See the [module documentation](self) and the paper's Sec. 3.2: the
/// decoding matrix is maintained in reduced row-echelon form, and source
/// blocks become available as soon as the accumulated rows pin them down.
#[derive(Debug, Clone)]
pub struct PlcDecoder<F: GfElem, P: BlockPayload<F> = Vec<F>> {
    rref: ProgressiveRref<F, P>,
    profile: PriorityProfile,
}

impl<F: GfElem> PlcDecoder<F, Vec<F>> {
    /// A decoder that recovers full payloads.
    pub fn with_payloads(profile: PriorityProfile) -> Self {
        PlcDecoder {
            rref: ProgressiveRref::new(profile.total_blocks()),
            profile,
        }
    }

    /// The recovered payload of source block `idx`, if decoded.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N`.
    pub fn recovered(&self, idx: usize) -> Option<&[F]> {
        self.rref.recovered(idx).map(Vec::as_slice)
    }
}

impl<F: GfElem> PlcDecoder<F, ()> {
    /// A decodability-only decoder (no payload work).
    pub fn coefficients_only(profile: PriorityProfile) -> Self {
        PlcDecoder {
            rref: ProgressiveRref::new(profile.total_blocks()),
            profile,
        }
    }
}

impl<F: GfElem, P: BlockPayload<F>> PlcDecoder<F, P> {
    /// The priority profile this decoder was built for.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// The rank of the accumulated decoding matrix.
    pub fn rank(&self) -> usize {
        self.rref.rank()
    }

    /// The longest decoded prefix of source-block indices.
    pub fn decoded_prefix(&self) -> usize {
        self.rref.decoded_prefix()
    }

    /// Low-level insertion from a dense coefficient vector (used by
    /// callers that assemble coefficients incrementally).
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != N`.
    pub fn insert_parts(&mut self, coefficients: Vec<F>, payload: P) -> InsertOutcome {
        self.insert_row(CoeffRow::from_dense(coefficients), payload)
    }

    /// Low-level insertion from a [`CoeffRow`] in either representation
    /// — sparse rows flow through the elimination without ever being
    /// densified (until fill-in crosses the row's densify threshold).
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != N`.
    pub fn insert_row(&mut self, coefficients: CoeffRow<F>, payload: P) -> InsertOutcome {
        let obs = prlc_obs::enabled();
        let tracing = prlc_obs::trace::enabled();
        if !obs && !tracing {
            return self.rref.insert_row(coefficients, payload);
        }
        let before = self.profile.levels_in_prefix(self.rref.decoded_prefix());
        let outcome = self.rref.insert_row(coefficients, payload);
        let after = self.profile.levels_in_prefix(self.rref.decoded_prefix());
        if obs {
            prlc_obs::counter!("core.decode.blocks").incr();
            if after > before {
                prlc_obs::counter!("core.decode.level_completions").add((after - before) as u64);
                prlc_obs::histogram!("core.decode.blocks_at_level_completion")
                    .observe(self.rref.inserted() as u64);
            }
        }
        if tracing {
            // Provenance: which source blocks this coded block pinned down,
            // and any strict-priority levels it thereby unlocked. The tick
            // is the rows-consumed logical clock (`blocks_processed`).
            let tick = self.rref.inserted() as u64;
            for &idx in self.rref.newly_solved() {
                prlc_obs::trace_instant!(
                    "core.decode.solved",
                    tick,
                    block: idx as u64,
                    level: self.profile.level_of(idx) as u64,
                );
            }
            for l in before..after {
                prlc_obs::trace_instant!("core.decode.level_unlock", tick, level: l as u64);
            }
        }
        outcome
    }
}

impl<F: GfElem, P: BlockPayload<F>> PriorityDecoder<F> for PlcDecoder<F, P> {
    fn insert_block(&mut self, block: &CodedBlock<F>) -> InsertOutcome {
        self.insert_row(block.coefficients.clone(), P::from_block(block))
    }

    fn decoded_levels(&self) -> usize {
        self.profile.levels_in_prefix(self.rref.decoded_prefix())
    }

    fn decoded_blocks(&self) -> usize {
        self.rref.decoded_count()
    }

    fn is_complete(&self) -> bool {
        self.rref.is_complete()
    }

    fn blocks_processed(&self) -> usize {
        self.rref.inserted()
    }
}

/// RLC is the degenerate "priority" code with full supports; its decoder
/// is a [`PlcDecoder`] — the decoded prefix stays 0 until the matrix
/// reaches full rank, reproducing all-or-nothing decoding.
pub type RlcDecoder<F, P = Vec<F>> = PlcDecoder<F, P>;

/// Stacked decoder for SLC blocks: one independent RLC decode per level.
#[derive(Debug, Clone)]
pub struct SlcDecoder<F: GfElem, P: BlockPayload<F> = Vec<F>> {
    levels: Vec<ProgressiveRref<F, P>>,
    profile: PriorityProfile,
    processed: usize,
}

impl<F: GfElem> SlcDecoder<F, Vec<F>> {
    /// A decoder that recovers full payloads.
    pub fn with_payloads(profile: PriorityProfile) -> Self {
        Self::build(profile)
    }

    /// The recovered payload of source block `idx`, if decoded.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N`.
    pub fn recovered(&self, idx: usize) -> Option<&[F]> {
        let level = self.profile.level_of(idx);
        let offset = idx - self.profile.bound(level);
        self.levels[level].recovered(offset).map(Vec::as_slice)
    }
}

impl<F: GfElem> SlcDecoder<F, ()> {
    /// A decodability-only decoder (no payload work).
    pub fn coefficients_only(profile: PriorityProfile) -> Self {
        Self::build(profile)
    }
}

impl<F: GfElem, P: BlockPayload<F>> SlcDecoder<F, P> {
    fn build(profile: PriorityProfile) -> Self {
        let levels = (0..profile.num_levels())
            .map(|l| ProgressiveRref::new(profile.size(l)))
            .collect();
        SlcDecoder {
            levels,
            profile,
            processed: 0,
        }
    }

    /// The priority profile this decoder was built for.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// Whether `level` is fully decoded.
    ///
    /// Unlike PLC, SLC levels decode independently, so a lower-priority
    /// level can complete while a higher one is still missing — the
    /// strict-priority metric [`PriorityDecoder::decoded_levels`] ignores
    /// such islands, but they are observable here.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_complete(&self, level: usize) -> bool {
        self.levels[level].is_complete()
    }

    /// Rank accumulated within `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_rank(&self, level: usize) -> usize {
        self.levels[level].rank()
    }

    /// Per-level completion flags — the input to the non-strict (set)
    /// priority model of [`prlc_core::utility`](crate::utility), which
    /// credits recovered low-priority islands that the strict
    /// [`PriorityDecoder::decoded_levels`] metric ignores.
    pub fn complete_levels(&self) -> Vec<bool> {
        self.levels.iter().map(|l| l.is_complete()).collect()
    }

    /// Low-level insertion from a dense coefficient slice: the vector is
    /// projected onto the block's level range.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, if `coefficients.len() != N`,
    /// or (debug only) if coefficients stray outside the level's support.
    pub fn insert_parts(&mut self, level: usize, coefficients: &[F], payload: P) -> InsertOutcome {
        self.insert_row(level, CoeffRow::from_dense(coefficients.to_vec()), payload)
    }

    /// Low-level insertion from a [`CoeffRow`] in either representation;
    /// the row is projected onto the block's level range, preserving its
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, if `coefficients.len() != N`,
    /// or (debug only) if coefficients stray outside the level's support.
    pub fn insert_row(
        &mut self,
        level: usize,
        coefficients: CoeffRow<F>,
        payload: P,
    ) -> InsertOutcome {
        assert_eq!(
            coefficients.len(),
            self.profile.total_blocks(),
            "coefficient width mismatch"
        );
        self.processed += 1;
        let range = self.profile.blocks_of(level);
        debug_assert!(
            coefficients
                .iter_nonzeros()
                .all(|(i, _)| range.contains(&i)),
            "SLC block has coefficients outside its level support"
        );
        let projected = coefficients.project(range);
        let obs = prlc_obs::enabled();
        let tracing = prlc_obs::trace::enabled();
        if !obs && !tracing {
            return self.levels[level].insert_row(projected, payload);
        }
        let was_complete = self.levels[level].is_complete();
        let outcome = self.levels[level].insert_row(projected, payload);
        let completed = !was_complete && self.levels[level].is_complete();
        if obs {
            prlc_obs::counter!("core.decode.blocks").incr();
            if completed {
                prlc_obs::counter!("core.decode.level_completions").incr();
                prlc_obs::histogram!("core.decode.blocks_at_level_completion")
                    .observe(self.processed as u64);
            }
        }
        if tracing {
            // Provenance: newly pinned source blocks mapped back to global
            // indices through the level's lower bound. SLC unlocks are
            // per-level (levels complete independently).
            let tick = self.processed as u64;
            let base = self.profile.bound(level) as u64;
            for &off in self.levels[level].newly_solved() {
                prlc_obs::trace_instant!(
                    "core.decode.solved",
                    tick,
                    block: base + off as u64,
                    level: level as u64,
                );
            }
            if completed {
                prlc_obs::trace_instant!("core.decode.level_unlock", tick, level: level as u64);
            }
        }
        outcome
    }
}

impl<F: GfElem, P: BlockPayload<F>> PriorityDecoder<F> for SlcDecoder<F, P> {
    fn insert_block(&mut self, block: &CodedBlock<F>) -> InsertOutcome {
        self.insert_row(
            block.level,
            block.coefficients.clone(),
            P::from_block(block),
        )
    }

    fn decoded_levels(&self) -> usize {
        self.levels.iter().take_while(|l| l.is_complete()).count()
    }

    fn decoded_blocks(&self) -> usize {
        // Only count blocks in *complete* levels: within an incomplete
        // level the RLC sub-decoder may hold solved columns by chance,
        // but the paper's SLC decodes a level all-or-nothing.
        self.levels
            .iter()
            .filter(|l| l.is_complete())
            .map(|l| l.width())
            .sum()
    }

    fn is_complete(&self) -> bool {
        self.levels.iter().all(|l| l.is_complete())
    }

    fn blocks_processed(&self) -> usize {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::scheme::Scheme;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> PriorityProfile {
        PriorityProfile::new(vec![2, 3, 4]).unwrap()
    }

    fn sources(rng: &mut StdRng, n: usize) -> Vec<Vec<Gf256>> {
        (0..n)
            .map(|_| (0..2).map(|_| Gf256::random(rng)).collect())
            .collect()
    }

    #[test]
    fn plc_decodes_levels_progressively() {
        let mut rng = StdRng::seed_from_u64(31);
        let p = profile();
        let srcs = sources(&mut rng, 9);
        let enc = Encoder::new(Scheme::Plc, p.clone());
        let mut dec = PlcDecoder::with_payloads(p);

        assert_eq!(dec.decoded_levels(), 0);
        // Two level-0 blocks decode level 0 (2 source blocks).
        for _ in 0..2 {
            dec.insert_block(&enc.encode(0, &srcs, &mut rng));
        }
        assert_eq!(dec.decoded_levels(), 1);
        assert_eq!(dec.decoded_blocks(), 2);
        assert_eq!(dec.recovered(0).unwrap(), &srcs[0][..]);
        assert_eq!(dec.recovered(1).unwrap(), &srcs[1][..]);
        assert!(!dec.is_complete());

        // Three level-1 blocks bring the prefix to 5 = b_2.
        for _ in 0..3 {
            dec.insert_block(&enc.encode(1, &srcs, &mut rng));
        }
        assert_eq!(dec.decoded_levels(), 2);

        // Four level-2 blocks complete everything.
        for _ in 0..4 {
            dec.insert_block(&enc.encode(2, &srcs, &mut rng));
        }
        assert_eq!(dec.decoded_levels(), 3);
        assert!(dec.is_complete());
        for (i, s) in srcs.iter().enumerate() {
            assert_eq!(dec.recovered(i).unwrap(), &s[..]);
        }
    }

    #[test]
    fn rlc_is_all_or_nothing() {
        let mut rng = StdRng::seed_from_u64(32);
        let p = profile();
        let srcs = sources(&mut rng, 9);
        let enc = Encoder::new(Scheme::Rlc, p.clone());
        let mut dec: RlcDecoder<Gf256> = RlcDecoder::with_payloads(p);
        for i in 0..9 {
            assert_eq!(dec.decoded_levels(), 0, "after {i} blocks");
            dec.insert_block(&enc.encode(0, &srcs, &mut rng));
        }
        // 9 random full-support rows over GF(256) are independent whp.
        assert_eq!(dec.decoded_levels(), 3);
        assert!(dec.is_complete());
    }

    #[test]
    fn slc_levels_decode_independently() {
        let mut rng = StdRng::seed_from_u64(33);
        let p = profile();
        let srcs = sources(&mut rng, 9);
        let enc = Encoder::new(Scheme::Slc, p.clone());
        let mut dec = SlcDecoder::with_payloads(p);

        // Complete level 1 (3 blocks) while level 0 is empty.
        for _ in 0..3 {
            dec.insert_block(&enc.encode(1, &srcs, &mut rng));
        }
        assert!(dec.level_complete(1));
        assert!(!dec.level_complete(0));
        // Strict-priority count is still 0: level 0 missing.
        assert_eq!(dec.decoded_levels(), 0);
        assert_eq!(dec.decoded_blocks(), 3);
        // Level-1 payloads are nonetheless recoverable.
        assert_eq!(dec.recovered(2).unwrap(), &srcs[2][..]);
        assert!(dec.recovered(0).is_none());

        // Now complete level 0.
        for _ in 0..2 {
            dec.insert_block(&enc.encode(0, &srcs, &mut rng));
        }
        assert_eq!(dec.decoded_levels(), 2);

        for _ in 0..4 {
            dec.insert_block(&enc.encode(2, &srcs, &mut rng));
        }
        assert!(dec.is_complete());
        assert_eq!(dec.decoded_levels(), 3);
        assert_eq!(dec.blocks_processed(), 9);
    }

    #[test]
    fn coefficient_only_decoders_track_decodability() {
        let mut rng = StdRng::seed_from_u64(34);
        let p = profile();
        let enc = Encoder::new(Scheme::Plc, p.clone());
        let mut dec: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(p.clone());
        for _ in 0..2 {
            let b: CodedBlock<Gf256> = enc.encode_unpayloaded(0, &mut rng);
            dec.insert_block(&b);
        }
        assert_eq!(dec.decoded_levels(), 1);

        let enc = Encoder::new(Scheme::Slc, p.clone());
        let mut dec: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(p);
        for _ in 0..2 {
            let b: CodedBlock<Gf256> = enc.encode_unpayloaded(0, &mut rng);
            dec.insert_block(&b);
        }
        assert_eq!(dec.decoded_levels(), 1);
    }

    #[test]
    fn redundant_blocks_do_not_advance_state() {
        let mut rng = StdRng::seed_from_u64(35);
        let p = PriorityProfile::new(vec![1, 1]).unwrap();
        let enc = Encoder::new(Scheme::Slc, p.clone());
        let srcs = sources(&mut rng, 2);
        let mut dec = SlcDecoder::with_payloads(p);
        let b = enc.encode(0, &srcs, &mut rng);
        assert!(dec.insert_block(&b).is_innovative());
        assert_eq!(dec.insert_block(&b), InsertOutcome::Redundant);
        assert_eq!(dec.decoded_levels(), 1);
        assert_eq!(dec.blocks_processed(), 2);
    }

    #[test]
    fn fig1_example_first_block_decodes_level_one() {
        // Fig. 1 commentary: "for both PLC and SLC, as long as the first
        // coded block is received, the first source block is decoded."
        let mut rng = StdRng::seed_from_u64(36);
        let p = PriorityProfile::new(vec![1, 2]).unwrap();
        let srcs = sources(&mut rng, 3);
        for scheme in [Scheme::Slc, Scheme::Plc] {
            let enc = Encoder::new(scheme, p.clone());
            let block = enc.encode(0, &srcs, &mut rng);
            match scheme {
                Scheme::Slc => {
                    let mut d = SlcDecoder::with_payloads(p.clone());
                    d.insert_block(&block);
                    assert_eq!(d.decoded_levels(), 1, "{scheme}");
                }
                _ => {
                    let mut d = PlcDecoder::with_payloads(p.clone());
                    d.insert_block(&block);
                    assert_eq!(d.decoded_levels(), 1, "{scheme}");
                }
            }
        }
        // ... whereas RLC decodes nothing from one block.
        let enc = Encoder::new(Scheme::Rlc, p.clone());
        let mut d = RlcDecoder::with_payloads(p);
        d.insert_block(&enc.encode(0, &srcs, &mut rng));
        assert_eq!(d.decoded_levels(), 0);
    }
}
