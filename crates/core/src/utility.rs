//! Utility functions over priority levels — the paper's "less stringent
//! priority model".
//!
//! Sec. 2 of the paper: "It is also possible to consider a less
//! stringent priority model, where obtaining a large amount of low
//! priority data may be preferable to obtaining a small amount of high
//! priority data. However, such a model requires the specification of an
//! application-specific utility function over the priority levels. This
//! is outside the scope of this paper and remains an open problem."
//!
//! This module supplies that specification as an *evaluation* tool: a
//! [`UtilityFunction`] assigns a weight to each fully recovered level,
//! and decoders report which levels are recovered. Under the strict
//! model only the decoded prefix counts; under the set model every
//! recovered level counts (relevant to SLC, whose levels decode
//! independently, so a low-priority island can complete while a
//! higher level is missing).

use serde::{Deserialize, Serialize};

/// A per-level utility assignment (non-negative weights, most important
/// level first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityFunction {
    weights: Vec<f64>,
}

/// Error constructing a [`UtilityFunction`].
#[derive(Debug, Clone, PartialEq)]
pub enum UtilityError {
    /// No levels.
    Empty,
    /// Negative or non-finite weight at the given index.
    InvalidWeight(usize, f64),
}

impl std::fmt::Display for UtilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UtilityError::Empty => write!(f, "utility function has no levels"),
            UtilityError::InvalidWeight(i, w) => {
                write!(f, "invalid utility weight {w} at level {i}")
            }
        }
    }
}

impl std::error::Error for UtilityError {}

impl UtilityFunction {
    /// Builds from explicit non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`UtilityError`] on empty or invalid weights.
    pub fn new(weights: Vec<f64>) -> Result<Self, UtilityError> {
        if weights.is_empty() {
            return Err(UtilityError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(UtilityError::InvalidWeight(i, w));
            }
        }
        Ok(UtilityFunction { weights })
    }

    /// Equal utility per level (total 1): recovering any level is worth
    /// the same — the implicit weighting behind `E(X)/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "utility needs at least one level");
        UtilityFunction {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Geometrically decaying utility: level `i` is worth `ratio` times
    /// level `i-1` (`0 < ratio < 1` expresses "critical data dominates"),
    /// normalised to total 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ratio` is not in `(0, 1]`.
    pub fn geometric(n: usize, ratio: f64) -> Self {
        assert!(n > 0, "utility needs at least one level");
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must be in (0, 1], got {ratio}"
        );
        let mut weights = Vec::with_capacity(n);
        let mut w = 1.0;
        for _ in 0..n {
            weights.push(w);
            w *= ratio;
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        UtilityFunction { weights }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.weights.len()
    }

    /// The weight of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn weight(&self, level: usize) -> f64 {
        self.weights[level]
    }

    /// Utility under the **strict** priority model: the sum of weights
    /// of the decoded prefix (`decoded_levels` consecutive levels from
    /// the front).
    ///
    /// # Panics
    ///
    /// Panics if `decoded_levels` exceeds the level count.
    pub fn strict(&self, decoded_levels: usize) -> f64 {
        assert!(
            decoded_levels <= self.weights.len(),
            "decoded {decoded_levels} of {} levels",
            self.weights.len()
        );
        self.weights[..decoded_levels].iter().sum()
    }

    /// Utility under the **set** model: the sum of weights of every
    /// fully recovered level, prefix or not.
    ///
    /// # Panics
    ///
    /// Panics if the flag count mismatches the level count.
    pub fn of_set(&self, recovered: &[bool]) -> f64 {
        assert_eq!(
            recovered.len(),
            self.weights.len(),
            "level flag count mismatch"
        );
        self.weights
            .iter()
            .zip(recovered)
            .filter(|(_, &r)| r)
            .map(|(w, _)| w)
            .sum()
    }

    /// Total utility of recovering everything.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(UtilityFunction::new(vec![]), Err(UtilityError::Empty));
        assert!(matches!(
            UtilityFunction::new(vec![1.0, -2.0]),
            Err(UtilityError::InvalidWeight(1, _))
        ));
        let u = UtilityFunction::new(vec![3.0, 1.0]).unwrap();
        assert_eq!(u.num_levels(), 2);
        assert_eq!(u.weight(0), 3.0);
        assert_eq!(u.total(), 4.0);
    }

    #[test]
    fn uniform_weights() {
        let u = UtilityFunction::uniform(4);
        assert!((u.weight(0) - 0.25).abs() < 1e-12);
        assert!((u.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_decays_and_normalises() {
        let u = UtilityFunction::geometric(3, 0.5);
        // Raw weights 1, 0.5, 0.25 -> normalised by 1.75.
        assert!((u.weight(0) - 1.0 / 1.75).abs() < 1e-12);
        assert!((u.weight(2) - 0.25 / 1.75).abs() < 1e-12);
        assert!((u.total() - 1.0).abs() < 1e-12);
        assert!(u.weight(0) > u.weight(1));
    }

    #[test]
    fn strict_sums_prefix() {
        let u = UtilityFunction::new(vec![5.0, 3.0, 1.0]).unwrap();
        assert_eq!(u.strict(0), 0.0);
        assert_eq!(u.strict(1), 5.0);
        assert_eq!(u.strict(3), 9.0);
    }

    #[test]
    fn set_model_counts_islands() {
        let u = UtilityFunction::new(vec![5.0, 3.0, 1.0]).unwrap();
        // Level 1 (weight 3) recovered without level 0: strict model
        // sees nothing, set model credits it.
        assert_eq!(u.of_set(&[false, true, false]), 3.0);
        assert_eq!(u.of_set(&[true, true, true]), 9.0);
        assert_eq!(u.of_set(&[false, false, false]), 0.0);
    }

    #[test]
    #[should_panic(expected = "flag count mismatch")]
    fn set_model_checks_length() {
        UtilityFunction::uniform(2).of_set(&[true]);
    }
}
