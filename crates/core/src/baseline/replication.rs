//! Priority-aware replication: the "no coding" baseline.
//!
//! Each stored block is a verbatim copy of one source block, chosen by
//! first sampling a priority level from the priority distribution and
//! then a block uniformly within the level. Collecting random copies
//! recovers a level only once *every* block of the level has been seen —
//! the coupon-collector behaviour that motivates coding in the first
//! place (Sec. 5.2: "In the extreme case where each level contains one
//! source block, SLC degrades to the scheme of no coding").

use prlc_gf::GfElem;
use rand::Rng;

use crate::priority::{PriorityDistribution, PriorityProfile};

/// Generates replica "coded" blocks.
#[derive(Debug, Clone)]
pub struct ReplicationEncoder {
    profile: PriorityProfile,
}

/// One replica: the index of the copied source block and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica<F> {
    /// Index of the copied source block.
    pub source: usize,
    /// The copied payload (may be empty for decodability-only runs).
    pub payload: Vec<F>,
}

impl ReplicationEncoder {
    /// An encoder over the given profile.
    pub fn new(profile: PriorityProfile) -> Self {
        ReplicationEncoder { profile }
    }

    /// The priority profile.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// Copies one uniformly-random source block from `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or `sources.len() != N`.
    pub fn encode<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> Replica<F> {
        assert_eq!(
            sources.len(),
            self.profile.total_blocks(),
            "source count does not match profile"
        );
        let range = self.profile.blocks_of(level);
        let source = rng.gen_range(range);
        Replica {
            source,
            payload: sources[source].clone(),
        }
    }

    /// Samples a level from `dist`, then copies a block from it.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's level count differs from the
    /// profile's.
    pub fn encode_random_level<F: GfElem, R: Rng + ?Sized>(
        &self,
        dist: &PriorityDistribution,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> Replica<F> {
        assert_eq!(dist.num_levels(), self.profile.num_levels());
        let level = dist.sample_level(rng);
        self.encode(level, sources, rng)
    }
}

/// Collects replicas and reports coupon-collector recovery progress.
#[derive(Debug, Clone)]
pub struct ReplicationDecoder<F> {
    profile: PriorityProfile,
    recovered: Vec<Option<Vec<F>>>,
    /// Number of distinct blocks seen per level.
    level_counts: Vec<usize>,
    distinct: usize,
    processed: usize,
}

impl<F: GfElem> ReplicationDecoder<F> {
    /// A decoder over the given profile.
    pub fn new(profile: PriorityProfile) -> Self {
        let n = profile.total_blocks();
        let levels = profile.num_levels();
        ReplicationDecoder {
            profile,
            recovered: vec![None; n],
            level_counts: vec![0; levels],
            distinct: 0,
            processed: 0,
        }
    }

    /// Feeds one replica. Returns `true` if it was a new block.
    ///
    /// # Panics
    ///
    /// Panics if the replica's source index is out of range.
    pub fn insert(&mut self, replica: &Replica<F>) -> bool {
        self.processed += 1;
        let idx = replica.source;
        assert!(
            idx < self.recovered.len(),
            "replica source {idx} out of range"
        );
        if self.recovered[idx].is_some() {
            return false;
        }
        self.recovered[idx] = Some(replica.payload.clone());
        self.level_counts[self.profile.level_of(idx)] += 1;
        self.distinct += 1;
        true
    }

    /// Consecutive fully-recovered levels from the most important — the
    /// same strict-priority metric as the coding decoders.
    pub fn decoded_levels(&self) -> usize {
        (0..self.profile.num_levels())
            .take_while(|&l| self.level_counts[l] == self.profile.size(l))
            .count()
    }

    /// Total distinct source blocks recovered.
    pub fn decoded_blocks(&self) -> usize {
        self.distinct
    }

    /// Whether every source block has been seen.
    pub fn is_complete(&self) -> bool {
        self.distinct == self.recovered.len()
    }

    /// Replicas processed, including duplicates.
    pub fn blocks_processed(&self) -> usize {
        self.processed
    }

    /// The recovered payload of source block `idx`, if seen.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn recovered(&self, idx: usize) -> Option<&[F]> {
        self.recovered[idx].as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PriorityProfile, Vec<Vec<Gf256>>, StdRng) {
        let rng = StdRng::seed_from_u64(77);
        let profile = PriorityProfile::new(vec![2, 3]).unwrap();
        let sources = (0..5)
            .map(|i| vec![Gf256::from_index(i * 11 % 256)])
            .collect();
        (profile, sources, rng)
    }

    #[test]
    fn replicas_copy_payload_verbatim() {
        let (p, srcs, mut rng) = setup();
        let enc = ReplicationEncoder::new(p);
        for _ in 0..20 {
            let r = enc.encode(1, &srcs, &mut rng);
            assert!((2..5).contains(&r.source));
            assert_eq!(r.payload, srcs[r.source]);
        }
    }

    #[test]
    fn decoder_counts_distinct_blocks() {
        let (p, srcs, _) = setup();
        let mut dec = ReplicationDecoder::new(p);
        let replica = Replica {
            source: 0,
            payload: srcs[0].clone(),
        };
        assert!(dec.insert(&replica));
        assert!(!dec.insert(&replica)); // duplicate
        assert_eq!(dec.decoded_blocks(), 1);
        assert_eq!(dec.blocks_processed(), 2);
        assert_eq!(dec.decoded_levels(), 0); // level 0 needs both blocks

        let replica1 = Replica {
            source: 1,
            payload: srcs[1].clone(),
        };
        dec.insert(&replica1);
        assert_eq!(dec.decoded_levels(), 1);
        assert_eq!(dec.recovered(1).unwrap(), &srcs[1][..]);
        assert!(dec.recovered(3).is_none());
        assert!(!dec.is_complete());
    }

    #[test]
    fn coupon_collector_completes_eventually() {
        let (p, srcs, mut rng) = setup();
        let enc = ReplicationEncoder::new(p.clone());
        let dist = crate::priority::PriorityDistribution::uniform(2);
        let mut dec = ReplicationDecoder::new(p);
        let mut draws = 0;
        while !dec.is_complete() {
            dec.insert(&enc.encode_random_level(&dist, &srcs, &mut rng));
            draws += 1;
            assert!(draws < 10_000, "coupon collection failed to finish");
        }
        assert_eq!(dec.decoded_levels(), 2);
        assert_eq!(dec.decoded_blocks(), 5);
    }
}
