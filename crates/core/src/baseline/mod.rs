//! Baseline persistence schemes the paper compares against (directly or
//! in its related-work discussion).
//!
//! * [`replication`] — priority-aware replication ("no coding"): each
//!   stored block is a verbatim copy of one source block. This is the
//!   degenerate SLC with one source block per level; recovery suffers the
//!   coupon-collector effect the paper invokes in Sec. 5.2.
//! * [`growth`] — Growth Codes (Kamra, Feldman, Misra, Rubenstein —
//!   SIGCOMM 2006): XOR codewords whose degree grows as the sink decodes,
//!   maximising *total* partial recovery but treating all data uniformly;
//!   the paper's Sec. 6 positions PRLC against exactly this property.

pub mod growth;
pub mod replication;

pub use growth::{GrowthDecoder, GrowthEncoder};
pub use replication::{ReplicationDecoder, ReplicationEncoder};
