//! Growth Codes (Kamra et al., SIGCOMM 2006) as a partial-recovery
//! baseline.
//!
//! Growth Codes are XOR codes designed to maximise the number of source
//! blocks recoverable at a sink at *any* point of the collection process:
//! a codeword of degree `d` is the XOR of `d` distinct source blocks, and
//! the degree used "grows" as the sink's decoded count rises — low-degree
//! codewords are immediately useful early on, higher degrees stay
//! innovative later. The decoder is the classic LT-style *peeling*
//! decoder: any codeword reduced to a single unknown member decodes it
//! and cascades.
//!
//! Kamra et al. show a degree-`d` codeword is most useful while the
//! decoded fraction `r/N` lies below `(d-1)/d`; [`GrowthEncoder::degree_for`]
//! implements that switchover schedule.
//!
//! The paper under reproduction contrasts its priority codes against
//! exactly this scheme (Sec. 6): Growth Codes "treat all data
//! equivalently", so important data enjoys no differentiated protection —
//! observable in the failure-sweep ablation benchmarks.

use prlc_gf::GfElem;
use rand::seq::index::sample;
use rand::Rng;

/// Generates Growth-Codes codewords over `n` source blocks.
#[derive(Debug, Clone)]
pub struct GrowthEncoder {
    n: usize,
}

/// One XOR codeword: its member set and the XOR of their payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codeword<F> {
    /// Sorted indices of the XOR-ed source blocks.
    pub members: Vec<usize>,
    /// XOR of the member payloads (may be empty for decodability-only
    /// experiments).
    pub payload: Vec<F>,
}

impl GrowthEncoder {
    /// An encoder over `n` source blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "GrowthEncoder needs at least one source block");
        GrowthEncoder { n }
    }

    /// Number of source blocks.
    pub fn total_blocks(&self) -> usize {
        self.n
    }

    /// The degree Kamra et al.'s schedule prescribes when the sink has
    /// decoded `decoded` of the `n` blocks: the largest `d` with
    /// `decoded/n <= (d-1)/d`, i.e. `d = floor(n / (n - decoded))`
    /// (clamped to `[1, n]`).
    pub fn degree_for(&self, decoded: usize) -> usize {
        if decoded >= self.n {
            return self.n;
        }
        (self.n / (self.n - decoded)).clamp(1, self.n)
    }

    /// Encodes one codeword of explicit degree `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > n`, or if `sources.len() != n`.
    pub fn encode_with_degree<F: GfElem, R: Rng + ?Sized>(
        &self,
        d: usize,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> Codeword<F> {
        assert!(d >= 1 && d <= self.n, "degree {d} out of range");
        assert_eq!(sources.len(), self.n, "source count mismatch");
        let mut members: Vec<usize> = sample(rng, self.n, d).into_vec();
        members.sort_unstable();
        let blk = members.iter().map(|&m| sources[m].len()).max().unwrap_or(0);
        let mut payload = vec![F::ZERO; blk];
        for &m in &members {
            F::add_slice(&mut payload, &sources[m]);
        }
        Codeword { members, payload }
    }

    /// Encodes one codeword at the schedule degree for a sink that has
    /// decoded `decoded` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != n`.
    pub fn encode<F: GfElem, R: Rng + ?Sized>(
        &self,
        decoded: usize,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> Codeword<F> {
        self.encode_with_degree(self.degree_for(decoded), sources, rng)
    }
}

/// Peeling decoder for Growth-Codes codewords.
#[derive(Debug, Clone)]
pub struct GrowthDecoder<F> {
    n: usize,
    recovered: Vec<Option<Vec<F>>>,
    decoded_count: usize,
    /// Codewords not yet reduced to degree <= 1. Slots are tombstoned
    /// (`None`) once resolved.
    pending: Vec<Option<Codeword<F>>>,
    /// block index -> indices into `pending` that (may) contain it.
    by_member: Vec<Vec<usize>>,
    processed: usize,
}

impl<F: GfElem> GrowthDecoder<F> {
    /// A decoder over `n` source blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "GrowthDecoder needs at least one source block");
        GrowthDecoder {
            n,
            recovered: vec![None; n],
            decoded_count: 0,
            pending: Vec::new(),
            by_member: vec![Vec::new(); n],
            processed: 0,
        }
    }

    /// Number of source blocks.
    pub fn total_blocks(&self) -> usize {
        self.n
    }

    /// Number of blocks decoded so far (drives the encoder's degree
    /// schedule in closed-loop experiments).
    pub fn decoded_blocks(&self) -> usize {
        self.decoded_count
    }

    /// Whether every block is decoded.
    pub fn is_complete(&self) -> bool {
        self.decoded_count == self.n
    }

    /// Codewords processed so far.
    pub fn blocks_processed(&self) -> usize {
        self.processed
    }

    /// The recovered payload of block `idx`, if decoded.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    pub fn recovered(&self, idx: usize) -> Option<&[F]> {
        self.recovered[idx].as_deref()
    }

    /// Whether block `idx` is decoded.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    pub fn is_decoded(&self, idx: usize) -> bool {
        self.recovered[idx].is_some()
    }

    /// Feeds one codeword, peeling as far as possible. Returns the
    /// number of source blocks newly decoded as a result (0 if the
    /// codeword was redundant or still has ≥ 2 unknown members).
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range.
    pub fn insert(&mut self, codeword: &Codeword<F>) -> usize {
        self.processed += 1;
        let before = self.decoded_count;

        let mut cw = codeword.clone();
        self.reduce(&mut cw);
        match cw.members.len() {
            0 => {} // redundant
            1 => {
                let idx = cw.members[0];
                self.decode_block(idx, cw.payload);
                self.cascade(idx);
            }
            _ => {
                let slot = self.pending.len();
                for &m in &cw.members {
                    assert!(m < self.n, "member {m} out of range");
                    self.by_member[m].push(slot);
                }
                self.pending.push(Some(cw));
            }
        }
        self.decoded_count - before
    }

    /// XORs out all already-decoded members of `cw`.
    fn reduce(&self, cw: &mut Codeword<F>) {
        cw.members.retain(|&m| {
            if let Some(data) = &self.recovered[m] {
                if !cw.payload.is_empty() {
                    F::add_slice(&mut cw.payload, data);
                }
                false
            } else {
                true
            }
        });
    }

    fn decode_block(&mut self, idx: usize, payload: Vec<F>) {
        debug_assert!(self.recovered[idx].is_none());
        self.recovered[idx] = Some(payload);
        self.decoded_count += 1;
    }

    /// Propagates a newly decoded block through the pending codewords,
    /// breadth-first.
    fn cascade(&mut self, start: usize) {
        let mut queue = vec![start];
        while let Some(b) = queue.pop() {
            let slots = std::mem::take(&mut self.by_member[b]);
            for slot in slots {
                let Some(cw) = self.pending[slot].as_mut() else {
                    continue;
                };
                // Remove b from the codeword.
                let Ok(pos) = cw.members.binary_search(&b) else {
                    continue;
                };
                cw.members.remove(pos);
                let data = self.recovered[b]
                    .as_ref()
                    .expect("cascaded block is decoded");
                if !cw.payload.is_empty() {
                    F::add_slice(&mut cw.payload, data);
                }
                if cw.members.len() == 1 {
                    let cw = self.pending[slot].take().expect("slot checked above");
                    let idx = cw.members[0];
                    if self.recovered[idx].is_none() {
                        self.decode_block(idx, cw.payload);
                        queue.push(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sources(rng: &mut StdRng, n: usize) -> Vec<Vec<Gf256>> {
        (0..n)
            .map(|_| (0..3).map(|_| Gf256::random(rng)).collect())
            .collect()
    }

    #[test]
    fn degree_schedule_matches_kamra_thresholds() {
        let enc = GrowthEncoder::new(100);
        assert_eq!(enc.degree_for(0), 1);
        assert_eq!(enc.degree_for(49), 1);
        assert_eq!(enc.degree_for(50), 2); // r/N = 1/2 -> switch to d=2
        assert_eq!(enc.degree_for(66), 2);
        assert_eq!(enc.degree_for(67), 3); // r/N = 2/3 -> d=3
        assert_eq!(enc.degree_for(75), 4);
        assert_eq!(enc.degree_for(99), 100);
        assert_eq!(enc.degree_for(100), 100);
    }

    #[test]
    fn degree_one_codeword_decodes_immediately() {
        let mut rng = StdRng::seed_from_u64(50);
        let srcs = sources(&mut rng, 10);
        let enc = GrowthEncoder::new(10);
        let mut dec = GrowthDecoder::new(10);
        let cw = enc.encode_with_degree(1, &srcs, &mut rng);
        assert_eq!(dec.insert(&cw), 1);
        let idx = cw.members[0];
        assert_eq!(dec.recovered(idx).unwrap(), &srcs[idx][..]);
    }

    #[test]
    fn peeling_cascades_through_chains() {
        // Hand-built chain: {0}, {0,1}, {1,2} — inserting in reverse
        // order, then the degree-1 word should unlock everything.
        let srcs: Vec<Vec<Gf256>> = (0..3).map(|i| vec![Gf256::from_index(100 + i)]).collect();
        let xor = |a: &[Gf256], b: &[Gf256]| -> Vec<Gf256> {
            a.iter().zip(b).map(|(&x, &y)| x + y).collect()
        };
        let mut dec = GrowthDecoder::new(3);
        assert_eq!(
            dec.insert(&Codeword {
                members: vec![1, 2],
                payload: xor(&srcs[1], &srcs[2]),
            }),
            0
        );
        assert_eq!(
            dec.insert(&Codeword {
                members: vec![0, 1],
                payload: xor(&srcs[0], &srcs[1]),
            }),
            0
        );
        // The degree-1 word decodes 0, which peels 1, which peels 2.
        assert_eq!(
            dec.insert(&Codeword {
                members: vec![0],
                payload: srcs[0].clone(),
            }),
            3
        );
        assert!(dec.is_complete());
        for i in 0..3 {
            assert_eq!(dec.recovered(i).unwrap(), &srcs[i][..]);
        }
    }

    #[test]
    fn redundant_codewords_decode_nothing() {
        let srcs: Vec<Vec<Gf256>> = (0..2).map(|i| vec![Gf256::from_index(i)]).collect();
        let mut dec = GrowthDecoder::new(2);
        let cw = Codeword {
            members: vec![0],
            payload: srcs[0].clone(),
        };
        assert_eq!(dec.insert(&cw), 1);
        assert_eq!(dec.insert(&cw), 0);
        assert_eq!(dec.blocks_processed(), 2);
    }

    #[test]
    fn closed_loop_collection_completes() {
        // Drive the encoder with the decoder's progress, as a sink would.
        let mut rng = StdRng::seed_from_u64(51);
        let n = 40;
        let srcs = sources(&mut rng, n);
        let enc = GrowthEncoder::new(n);
        let mut dec = GrowthDecoder::new(n);
        let mut iterations = 0;
        while !dec.is_complete() {
            let cw = enc.encode(dec.decoded_blocks(), &srcs, &mut rng);
            dec.insert(&cw);
            iterations += 1;
            assert!(iterations < 100_000, "growth decoding did not converge");
        }
        for i in 0..n {
            assert_eq!(dec.recovered(i).unwrap(), &srcs[i][..], "block {i}");
        }
    }

    #[test]
    fn payloadless_codewords_track_decodability_only() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 10;
        let enc = GrowthEncoder::new(n);
        let mut dec: GrowthDecoder<Gf256> = GrowthDecoder::new(n);
        let empty_sources: Vec<Vec<Gf256>> = vec![Vec::new(); n];
        let mut iterations = 0;
        while !dec.is_complete() && iterations < 10_000 {
            let cw = enc.encode(dec.decoded_blocks(), &empty_sources, &mut rng);
            dec.insert(&cw);
            iterations += 1;
        }
        assert!(dec.is_complete());
    }

    #[test]
    #[should_panic(expected = "degree 0 out of range")]
    fn zero_degree_panics() {
        let mut rng = StdRng::seed_from_u64(53);
        let enc = GrowthEncoder::new(5);
        let srcs: Vec<Vec<Gf256>> = vec![vec![]; 5];
        enc.encode_with_degree(0, &srcs, &mut rng);
    }
}
