//! Encoders for RLC, SLC and PLC coded blocks.

use prlc_gf::{kernel, GfElem};
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::CodedBlock;
use crate::priority::{PriorityDistribution, PriorityProfile};
use crate::scheme::Scheme;

/// How many source blocks a coded block combines within its support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Degree {
    /// Every source block in the support gets a nonzero coefficient —
    /// the textbook construction of Sec. 3.1.
    Full,
    /// Each coded block combines `min(support, ceil(factor · ln N))`
    /// source blocks chosen uniformly within its support — the sparse
    /// construction the pre-distribution protocol relies on (Sec. 4,
    /// after Dimakis et al.'s decentralized erasure codes, where
    /// `O(ln N)` nonzero coefficients per row suffice for decoding with
    /// high probability).
    Sparse {
        /// The constant `c` in `c · ln N`.
        factor: f64,
    },
}

impl Degree {
    /// The number of nonzero coefficients for a support of `support_len`
    /// source blocks out of `n` total.
    ///
    /// The sparse degree scales with `ln N` of the *total* system, as in
    /// Dimakis et al., but is clamped to the support size and to at
    /// least 1.
    pub fn nonzeros(self, support_len: usize, n: usize) -> usize {
        match self {
            Degree::Full => support_len,
            Degree::Sparse { factor } => {
                let d = (factor * (n.max(2) as f64).ln()).ceil() as usize;
                d.clamp(1, support_len)
            }
        }
    }
}

/// Generates coded blocks for one (scheme, profile) pair.
///
/// The encoder itself is stateless; randomness comes from the `Rng`
/// passed to each call, so experiments stay reproducible under a fixed
/// seed.
#[derive(Debug, Clone)]
pub struct Encoder {
    scheme: Scheme,
    profile: PriorityProfile,
    degree: Degree,
}

impl Encoder {
    /// An encoder producing full-density coded blocks.
    pub fn new(scheme: Scheme, profile: PriorityProfile) -> Self {
        Encoder {
            scheme,
            profile,
            degree: Degree::Full,
        }
    }

    /// An encoder producing sparse coded blocks with `c · ln N` nonzero
    /// coefficients.
    pub fn sparse(scheme: Scheme, profile: PriorityProfile, factor: f64) -> Self {
        Encoder {
            scheme,
            profile,
            degree: Degree::Sparse { factor },
        }
    }

    /// The scheme this encoder generates.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The priority profile.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// The degree policy.
    pub fn degree(&self) -> Degree {
        self.degree
    }

    /// Generates the dense coefficient vector of one coded block at
    /// `level`. Coefficients inside the chosen support are uniformly
    /// random *nonzero* field elements; everything else is zero.
    ///
    /// # Panics
    ///
    /// Panics if `level >= profile.num_levels()`.
    pub fn encode_coefficients<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        rng: &mut R,
    ) -> Vec<F> {
        let n = self.profile.total_blocks();
        let support = self.scheme.support(&self.profile, level);
        let support_len = support.len();
        let mut coeffs = vec![F::ZERO; n];
        match self.degree {
            Degree::Full => {
                for c in &mut coeffs[support] {
                    *c = F::random_nonzero(rng);
                }
            }
            Degree::Sparse { .. } => {
                let d = self.degree.nonzeros(support_len, n);
                for idx in sample(rng, support_len, d) {
                    coeffs[support.start + idx] = F::random_nonzero(rng);
                }
            }
        }
        if prlc_obs::enabled() {
            prlc_obs::counter!("core.encode.coded_blocks").incr();
            prlc_obs::counter!("core.encode.blocks_combined")
                .add(self.degree.nonzeros(support_len, n) as u64);
        }
        coeffs
    }

    /// Generates one coded block at `level`, encoding the given source
    /// payloads.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, if `sources.len()` differs from
    /// the profile's total block count, or if source payload lengths
    /// differ within the support.
    pub fn encode<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> CodedBlock<F> {
        assert_eq!(
            sources.len(),
            self.profile.total_blocks(),
            "source count does not match profile"
        );
        let coefficients = self.encode_coefficients::<F, R>(level, rng);
        let blk_len = sources.first().map_or(0, Vec::len);
        let mut payload = vec![F::ZERO; blk_len];
        for (c, s) in coefficients.iter().zip(sources) {
            if !c.is_zero() {
                kernel::axpy(&mut payload, *c, s);
            }
        }
        CodedBlock {
            level,
            coefficients,
            payload,
        }
    }

    /// Generates one coefficient-only coded block (empty payload) at
    /// `level` — the fast path for decodability experiments.
    pub fn encode_unpayloaded<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        rng: &mut R,
    ) -> CodedBlock<F> {
        CodedBlock {
            level,
            coefficients: self.encode_coefficients::<F, R>(level, rng),
            payload: Vec::new(),
        }
    }

    /// Samples a level from `dist` and encodes one block at it — the
    /// random accumulation model of the paper's evaluation (Sec. 5: "we
    /// randomly generate a set of coded blocks according to the priority
    /// distribution").
    ///
    /// # Panics
    ///
    /// Panics if `dist.num_levels() != profile.num_levels()`.
    pub fn encode_random_level<F: GfElem, R: Rng + ?Sized>(
        &self,
        dist: &PriorityDistribution,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> CodedBlock<F> {
        assert_eq!(
            dist.num_levels(),
            self.profile.num_levels(),
            "distribution level count does not match profile"
        );
        let level = dist.sample_level(rng);
        self.encode(level, sources, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> PriorityProfile {
        PriorityProfile::new(vec![2, 3, 5]).unwrap()
    }

    fn sources(rng: &mut StdRng) -> Vec<Vec<Gf256>> {
        (0..10)
            .map(|_| (0..3).map(|_| Gf256::random(rng)).collect())
            .collect()
    }

    #[test]
    fn full_density_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in Scheme::ALL {
            let enc = Encoder::new(scheme, profile());
            for level in 0..3 {
                let coeffs: Vec<Gf256> = enc.encode_coefficients(level, &mut rng);
                let support = scheme.support(&profile(), level);
                for (i, c) in coeffs.iter().enumerate() {
                    if support.contains(&i) {
                        assert!(!c.is_zero(), "{scheme} level {level} idx {i}");
                    } else {
                        assert!(c.is_zero(), "{scheme} level {level} idx {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_degree_counts() {
        assert_eq!(Degree::Full.nonzeros(7, 100), 7);
        let s = Degree::Sparse { factor: 2.0 };
        // 2 * ln(100) ~ 9.2 -> 10, clamped to support.
        assert_eq!(s.nonzeros(100, 100), 10);
        assert_eq!(s.nonzeros(4, 100), 4);
        assert_eq!(s.nonzeros(1, 100), 1);
        // Degenerate: never zero.
        let tiny = Degree::Sparse { factor: 0.0 };
        assert_eq!(tiny.nonzeros(5, 100), 1);
    }

    #[test]
    fn sparse_encoding_has_requested_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = PriorityProfile::new(vec![100, 100]).unwrap();
        let enc = Encoder::sparse(Scheme::Plc, p.clone(), 2.0);
        let want = Degree::Sparse { factor: 2.0 }.nonzeros(200, 200);
        for _ in 0..10 {
            let coeffs: Vec<Gf256> = enc.encode_coefficients(1, &mut rng);
            let nz = coeffs.iter().filter(|c| !c.is_zero()).count();
            assert_eq!(nz, want);
            // Support must stay within PLC's prefix 0..200 (trivially
            // true here) and coefficients within level-0's range allowed.
        }
        // Level 0 support is 0..100: no nonzero beyond.
        let coeffs: Vec<Gf256> = enc.encode_coefficients(0, &mut rng);
        assert!(coeffs[100..].iter().all(|c| c.is_zero()));
    }

    #[test]
    fn payload_is_correct_linear_combination() {
        let mut rng = StdRng::seed_from_u64(3);
        let srcs = sources(&mut rng);
        let enc = Encoder::new(Scheme::Plc, profile());
        let block = enc.encode(2, &srcs, &mut rng);
        let mut want = vec![Gf256::ZERO; 3];
        for (c, s) in block.coefficients.iter().zip(&srcs) {
            for (w, &x) in want.iter_mut().zip(s) {
                *w = w.gf_add(c.gf_mul(x));
            }
        }
        assert_eq!(block.payload, want);
        assert_eq!(block.level, 2);
    }

    #[test]
    fn unpayloaded_blocks_are_cheap() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = Encoder::new(Scheme::Slc, profile());
        let b: CodedBlock<Gf256> = enc.encode_unpayloaded(1, &mut rng);
        assert!(b.payload.is_empty());
        assert_eq!(b.degree(), 3); // SLC level 1 has 3 blocks
    }

    #[test]
    fn random_level_follows_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let srcs = sources(&mut rng);
        let enc = Encoder::new(Scheme::Slc, profile());
        let dist = PriorityDistribution::from_weights(vec![0.0, 0.0, 1.0]).unwrap();
        for _ in 0..20 {
            let b = enc.encode_random_level(&dist, &srcs, &mut rng);
            assert_eq!(b.level, 2);
        }
    }

    #[test]
    #[should_panic(expected = "source count")]
    fn encode_wrong_source_count_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = Encoder::new(Scheme::Rlc, profile());
        let srcs: Vec<Vec<Gf256>> = vec![vec![Gf256::ONE]; 3];
        enc.encode(0, &srcs, &mut rng);
    }
}
