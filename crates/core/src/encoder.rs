//! Encoders for RLC, SLC and PLC coded blocks.

use prlc_gf::{kernel, GfElem};
use prlc_linalg::{CoeffRep, CoeffRow};
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::CodedBlock;
use crate::priority::{PriorityDistribution, PriorityProfile};
use crate::scheme::Scheme;

/// How many source blocks a coded block combines within its support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Degree {
    /// Every source block in the support gets a nonzero coefficient —
    /// the textbook construction of Sec. 3.1.
    Full,
    /// Each coded block combines `min(support, ceil(factor · ln N))`
    /// source blocks chosen uniformly within its support — the sparse
    /// construction the pre-distribution protocol relies on (Sec. 4,
    /// after Dimakis et al.'s decentralized erasure codes, where
    /// `O(ln N)` nonzero coefficients per row suffice for decoding with
    /// high probability).
    Sparse {
        /// The constant `c` in `c · ln N`. [`Encoder::sparse`] rejects
        /// non-finite or non-positive values; see
        /// [`nonzeros`](Degree::nonzeros) for how a `Degree` built
        /// directly with a degenerate factor is clamped.
        factor: f64,
    },
}

impl Degree {
    /// The number of nonzero coefficients for a support of `support_len`
    /// source blocks out of `n` total.
    ///
    /// The sparse degree scales with `ln N` of the *total* system, as in
    /// Dimakis et al., but is clamped to the support size and to at
    /// least 1.
    ///
    /// The clamp also disciplines degenerate factors when a
    /// `Degree::Sparse` is constructed directly (bypassing
    /// [`Encoder::sparse`]'s validation): `ceil() as usize` is a
    /// saturating cast, so a NaN or negative product becomes 0 and is
    /// clamped up to 1, while an overflowing product (huge or infinite
    /// factor) saturates to `usize::MAX` and is clamped down to
    /// `support_len`. The result is always in `1..=support_len`.
    pub fn nonzeros(self, support_len: usize, n: usize) -> usize {
        match self {
            Degree::Full => support_len,
            Degree::Sparse { factor } => {
                let d = (factor * (n.max(2) as f64).ln()).ceil() as usize;
                d.clamp(1, support_len)
            }
        }
    }
}

/// Generates coded blocks for one (scheme, profile) pair.
///
/// The encoder itself is stateless; randomness comes from the `Rng`
/// passed to each call, so experiments stay reproducible under a fixed
/// seed. The coefficient *representation* ([`CoeffRep`]) is independent
/// of the degree policy and never consumes randomness, so a pinned seed
/// draws the same values whichever layout the rows are stored in.
#[derive(Debug, Clone)]
pub struct Encoder {
    scheme: Scheme,
    profile: PriorityProfile,
    degree: Degree,
    rep: CoeffRep,
}

impl Encoder {
    /// An encoder producing full-density coded blocks (dense rows).
    pub fn new(scheme: Scheme, profile: PriorityProfile) -> Self {
        Encoder {
            scheme,
            profile,
            degree: Degree::Full,
            rep: CoeffRep::Dense,
        }
    }

    /// An encoder producing sparse coded blocks with `c · ln N` nonzero
    /// coefficients, stored as sparse rows.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or not strictly positive — a
    /// NaN, infinite, zero or negative factor has no meaningful degree
    /// and would otherwise be clamped silently (see
    /// [`Degree::nonzeros`]).
    pub fn sparse(scheme: Scheme, profile: PriorityProfile, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "sparse degree factor must be finite and > 0, got {factor}"
        );
        Encoder {
            scheme,
            profile,
            degree: Degree::Sparse { factor },
            rep: CoeffRep::Sparse,
        }
    }

    /// Overrides the coefficient representation the encoder emits.
    /// Orthogonal to the degree policy: a pinned seed produces logically
    /// identical rows in either representation.
    pub fn with_coeff_rep(mut self, rep: CoeffRep) -> Self {
        self.rep = rep;
        self
    }

    /// The scheme this encoder generates.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The priority profile.
    pub fn profile(&self) -> &PriorityProfile {
        &self.profile
    }

    /// The degree policy.
    pub fn degree(&self) -> Degree {
        self.degree
    }

    /// The coefficient representation emitted blocks are stored in.
    pub fn coeff_rep(&self) -> CoeffRep {
        self.rep
    }

    /// Generates the coefficient row of one coded block at `level`.
    /// Coefficients inside the chosen support are uniformly random
    /// *nonzero* field elements; everything else is zero.
    ///
    /// Randomness is drawn in a representation-independent order: the
    /// support indices first (sparse degree only), then one value per
    /// chosen index in draw order. Sparse rows sort their `(index,
    /// value)` pairs *after* all draws, so dense and sparse runs under
    /// the same seed consume identical RNG streams.
    ///
    /// # Panics
    ///
    /// Panics if `level >= profile.num_levels()`.
    pub fn encode_coefficients<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        rng: &mut R,
    ) -> CoeffRow<F> {
        let n = self.profile.total_blocks();
        let support = self.scheme.support(&self.profile, level);
        let support_len = support.len();
        let d = self.degree.nonzeros(support_len, n);
        let row = match (self.degree, self.rep) {
            (Degree::Full, CoeffRep::Dense) => {
                let mut coeffs = vec![F::ZERO; n];
                for c in &mut coeffs[support] {
                    *c = F::random_nonzero(rng);
                }
                CoeffRow::from_dense(coeffs)
            }
            (Degree::Full, CoeffRep::Sparse) => {
                let entries = support
                    .map(|i| (i as u32, F::random_nonzero(rng)))
                    .collect();
                CoeffRow::from_sorted_entries(n, entries)
            }
            (Degree::Sparse { .. }, CoeffRep::Dense) => {
                let mut coeffs = vec![F::ZERO; n];
                for idx in sample(rng, support_len, d) {
                    coeffs[support.start + idx] = F::random_nonzero(rng);
                }
                CoeffRow::from_dense(coeffs)
            }
            (Degree::Sparse { .. }, CoeffRep::Sparse) => {
                // Values are drawn in the sample's order (identical to the
                // dense branch); sorting happens after all draws and never
                // touches the RNG.
                let mut entries: Vec<(u32, F)> = sample(rng, support_len, d)
                    .into_iter()
                    .map(|idx| ((support.start + idx) as u32, F::random_nonzero(rng)))
                    .collect();
                entries.sort_unstable_by_key(|&(i, _)| i);
                CoeffRow::from_sorted_entries(n, entries)
            }
        };
        if prlc_obs::enabled() {
            prlc_obs::counter!("core.encode.coded_blocks").incr();
            prlc_obs::counter!("core.encode.blocks_combined").add(d as u64);
            // Per-row nonzero volume: with a sparse degree this grows as
            // O(ln N) per block, the bound the representation is sized to.
            prlc_obs::counter!("core.encode.nnz").add(d as u64);
        }
        row
    }

    /// Generates one coded block at `level`, encoding the given source
    /// payloads.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, if `sources.len()` differs from
    /// the profile's total block count, or if source payload lengths
    /// differ within the support.
    pub fn encode<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> CodedBlock<F> {
        assert_eq!(
            sources.len(),
            self.profile.total_blocks(),
            "source count does not match profile"
        );
        let support = self.scheme.support(&self.profile, level);
        // The payload length comes from the first source *inside* the
        // support: under SLC the support need not start at block 0, and a
        // stray out-of-support length must not drive (or pass) the
        // equal-length check.
        let blk_len = support
            .clone()
            .next()
            .map_or(0, |first| sources[first].len());
        assert!(
            sources[support].iter().all(|s| s.len() == blk_len),
            "source payload lengths differ within the support"
        );
        let coefficients = self.encode_coefficients::<F, R>(level, rng);
        let mut payload = vec![F::ZERO; blk_len];
        for (idx, c) in coefficients.iter_nonzeros() {
            kernel::axpy(&mut payload, c, &sources[idx]);
        }
        CodedBlock {
            level,
            coefficients,
            payload,
        }
    }

    /// Generates one coefficient-only coded block (empty payload) at
    /// `level` — the fast path for decodability experiments.
    pub fn encode_unpayloaded<F: GfElem, R: Rng + ?Sized>(
        &self,
        level: usize,
        rng: &mut R,
    ) -> CodedBlock<F> {
        CodedBlock {
            level,
            coefficients: self.encode_coefficients::<F, R>(level, rng),
            payload: Vec::new(),
        }
    }

    /// Samples a level from `dist` and encodes one block at it — the
    /// random accumulation model of the paper's evaluation (Sec. 5: "we
    /// randomly generate a set of coded blocks according to the priority
    /// distribution").
    ///
    /// # Panics
    ///
    /// Panics if `dist.num_levels() != profile.num_levels()`.
    pub fn encode_random_level<F: GfElem, R: Rng + ?Sized>(
        &self,
        dist: &PriorityDistribution,
        sources: &[Vec<F>],
        rng: &mut R,
    ) -> CodedBlock<F> {
        assert_eq!(
            dist.num_levels(),
            self.profile.num_levels(),
            "distribution level count does not match profile"
        );
        let level = dist.sample_level(rng);
        self.encode(level, sources, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> PriorityProfile {
        PriorityProfile::new(vec![2, 3, 5]).unwrap()
    }

    fn sources(rng: &mut StdRng) -> Vec<Vec<Gf256>> {
        (0..10)
            .map(|_| (0..3).map(|_| Gf256::random(rng)).collect())
            .collect()
    }

    #[test]
    fn full_density_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in Scheme::ALL {
            let enc = Encoder::new(scheme, profile());
            for level in 0..3 {
                let coeffs: Vec<Gf256> = enc.encode_coefficients(level, &mut rng).to_dense_vec();
                let support = scheme.support(&profile(), level);
                for (i, c) in coeffs.iter().enumerate() {
                    if support.contains(&i) {
                        assert!(!c.is_zero(), "{scheme} level {level} idx {i}");
                    } else {
                        assert!(c.is_zero(), "{scheme} level {level} idx {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_degree_counts() {
        assert_eq!(Degree::Full.nonzeros(7, 100), 7);
        let s = Degree::Sparse { factor: 2.0 };
        // 2 * ln(100) ~ 9.2 -> 10, clamped to support.
        assert_eq!(s.nonzeros(100, 100), 10);
        assert_eq!(s.nonzeros(4, 100), 4);
        assert_eq!(s.nonzeros(1, 100), 1);
        // Degenerate: never zero.
        let tiny = Degree::Sparse { factor: 0.0 };
        assert_eq!(tiny.nonzeros(5, 100), 1);
    }

    #[test]
    fn degenerate_factors_clamp_into_range() {
        // A Degree built directly (bypassing Encoder::sparse validation)
        // still produces a usable degree in 1..=support_len: the
        // saturating float->usize cast maps NaN/negative to 0 (clamped up
        // to 1) and huge/infinite products to usize::MAX (clamped down).
        for factor in [f64::NAN, -3.0, f64::NEG_INFINITY] {
            assert_eq!(Degree::Sparse { factor }.nonzeros(50, 100), 1, "{factor}");
        }
        for factor in [f64::INFINITY, 1e300] {
            assert_eq!(Degree::Sparse { factor }.nonzeros(50, 100), 50, "{factor}");
        }
    }

    #[test]
    fn sparse_encoder_rejects_bad_factors() {
        for factor in [f64::NAN, 0.0, -1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let r = std::panic::catch_unwind(|| Encoder::sparse(Scheme::Plc, profile(), factor));
            assert!(r.is_err(), "factor {factor} must be rejected");
        }
        // Valid factors construct fine.
        let enc = Encoder::sparse(Scheme::Plc, profile(), 1.5);
        assert_eq!(enc.degree(), Degree::Sparse { factor: 1.5 });
        assert_eq!(enc.coeff_rep(), CoeffRep::Sparse);
    }

    #[test]
    fn sparse_encoding_has_requested_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = PriorityProfile::new(vec![100, 100]).unwrap();
        let enc = Encoder::sparse(Scheme::Plc, p.clone(), 2.0);
        let want = Degree::Sparse { factor: 2.0 }.nonzeros(200, 200);
        for _ in 0..10 {
            let coeffs: CoeffRow<Gf256> = enc.encode_coefficients(1, &mut rng);
            assert_eq!(coeffs.nnz(), want);
            assert_eq!(coeffs.rep(), CoeffRep::Sparse);
        }
        // Level 0 support is 0..100: no nonzero beyond.
        let coeffs: CoeffRow<Gf256> = enc.encode_coefficients(0, &mut rng);
        assert!(coeffs.iter_nonzeros().all(|(i, _)| i < 100));
    }

    #[test]
    fn representations_draw_identical_randomness() {
        // Same seed, same degree, different representation: the logical
        // rows must be identical and the RNG must end in the same state.
        let p = PriorityProfile::new(vec![20, 30]).unwrap();
        for degree_factor in [None, Some(1.5)] {
            let mk = |rep| {
                let enc = match degree_factor {
                    None => Encoder::new(Scheme::Plc, p.clone()),
                    Some(f) => Encoder::sparse(Scheme::Plc, p.clone(), f),
                };
                enc.with_coeff_rep(rep)
            };
            let mut rng_d = StdRng::seed_from_u64(99);
            let mut rng_s = StdRng::seed_from_u64(99);
            for level in [0usize, 1, 0, 1, 1] {
                let d: CoeffRow<Gf256> = mk(CoeffRep::Dense).encode_coefficients(level, &mut rng_d);
                let s: CoeffRow<Gf256> =
                    mk(CoeffRep::Sparse).encode_coefficients(level, &mut rng_s);
                assert_eq!(d.rep(), CoeffRep::Dense);
                assert_eq!(s.rep(), CoeffRep::Sparse);
                assert_eq!(d, s, "factor {degree_factor:?} level {level}");
            }
            use rand::RngCore;
            assert_eq!(rng_d.next_u64(), rng_s.next_u64(), "RNG streams diverged");
        }
    }

    #[test]
    fn payload_is_correct_linear_combination() {
        let mut rng = StdRng::seed_from_u64(3);
        let srcs = sources(&mut rng);
        let enc = Encoder::new(Scheme::Plc, profile());
        let block = enc.encode(2, &srcs, &mut rng);
        let mut want = vec![Gf256::ZERO; 3];
        for (c, s) in block.coefficients.to_dense_vec().iter().zip(&srcs) {
            for (w, &x) in want.iter_mut().zip(s) {
                *w = w.gf_add(c.gf_mul(x));
            }
        }
        assert_eq!(block.payload, want);
        assert_eq!(block.level, 2);
    }

    #[test]
    fn unpayloaded_blocks_are_cheap() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = Encoder::new(Scheme::Slc, profile());
        let b: CodedBlock<Gf256> = enc.encode_unpayloaded(1, &mut rng);
        assert!(b.payload.is_empty());
        assert_eq!(b.degree(), 3); // SLC level 1 has 3 blocks
    }

    #[test]
    fn random_level_follows_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let srcs = sources(&mut rng);
        let enc = Encoder::new(Scheme::Slc, profile());
        let dist = PriorityDistribution::from_weights(vec![0.0, 0.0, 1.0]).unwrap();
        for _ in 0..20 {
            let b = enc.encode_random_level(&dist, &srcs, &mut rng);
            assert_eq!(b.level, 2);
        }
    }

    #[test]
    #[should_panic(expected = "source count")]
    fn encode_wrong_source_count_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = Encoder::new(Scheme::Rlc, profile());
        let srcs: Vec<Vec<Gf256>> = vec![vec![Gf256::ONE]; 3];
        enc.encode(0, &srcs, &mut rng);
    }

    #[test]
    #[should_panic(expected = "differ within the support")]
    fn encode_unequal_support_lengths_panics() {
        // SLC level 1's support is blocks 2..5; block 0 (outside the
        // support) may have any length, but a mismatch *inside* the
        // support must panic as documented.
        let mut rng = StdRng::seed_from_u64(7);
        let enc = Encoder::new(Scheme::Slc, profile());
        let mut srcs: Vec<Vec<Gf256>> = vec![vec![Gf256::ONE; 3]; 10];
        srcs[3] = vec![Gf256::ONE; 2];
        enc.encode(1, &srcs, &mut rng);
    }

    #[test]
    fn out_of_support_lengths_are_ignored() {
        // Regression for the blk_len-from-sources[0] bug: a first source
        // outside the support must not drive the payload length.
        let mut rng = StdRng::seed_from_u64(8);
        let enc = Encoder::new(Scheme::Slc, profile());
        let mut srcs: Vec<Vec<Gf256>> = vec![vec![Gf256::ONE; 3]; 10];
        srcs[0] = vec![Gf256::ONE; 7]; // outside SLC level 1's support 2..5
        srcs[1] = vec![Gf256::ONE; 7];
        let b = enc.encode(1, &srcs, &mut rng);
        assert_eq!(b.payload.len(), 3);
    }
}
