//! Property tests over the coding invariants that hold for *every*
//! profile, scheme, field and block stream.

use proptest::prelude::*;

use prlc_gf::{Gf16, Gf256, GfElem};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::baseline::{GrowthDecoder, GrowthEncoder};
use crate::decoder::{PlcDecoder, PriorityDecoder, SlcDecoder};
use crate::encoder::Encoder;
use crate::priority::{PriorityDistribution, PriorityProfile};
use crate::scheme::Scheme;
use crate::seeded::SeededEncoder;

fn profile_strategy() -> impl Strategy<Value = PriorityProfile> {
    prop::collection::vec(1usize..6, 1..5)
        .prop_map(|s| PriorityProfile::new(s).expect("nonzero sizes"))
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![Just(Scheme::Rlc), Just(Scheme::Slc), Just(Scheme::Plc)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decoded levels are monotone in the number of blocks, bounded by
    /// the level count, and payloads always verify against the sources.
    #[test]
    fn decoding_invariants_hold_for_any_stream(
        profile in profile_strategy(),
        scheme in scheme_strategy(),
        seed in 0u64..200,
    ) {
        let n = profile.total_blocks();
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<Gf256>> = (0..n)
            .map(|_| vec![Gf256::random(&mut rng), Gf256::random(&mut rng)])
            .collect();
        let dist = PriorityDistribution::uniform(profile.num_levels());
        let enc = Encoder::new(scheme, profile.clone());

        // Run both decoder shapes over the same stream where possible.
        let mut plc = PlcDecoder::with_payloads(profile.clone());
        let mut slc = SlcDecoder::with_payloads(profile.clone());
        let mut last_levels = 0usize;
        for _ in 0..(2 * n + 4) {
            let level = dist.sample_level(&mut rng);
            let block = enc.encode(level, &sources, &mut rng);
            let levels = match scheme {
                Scheme::Slc => {
                    slc.insert_block(&block);
                    slc.decoded_levels()
                }
                _ => {
                    plc.insert_block(&block);
                    plc.decoded_levels()
                }
            };
            prop_assert!(levels >= last_levels, "decoded levels regressed");
            prop_assert!(levels <= profile.num_levels());
            last_levels = levels;
        }
        // Everything that claims to be recovered matches the source.
        match scheme {
            Scheme::Slc => {
                for i in 0..n {
                    if let Some(p) = slc.recovered(i) {
                        prop_assert_eq!(p, &sources[i][..], "block {}", i);
                    }
                }
                prop_assert!(slc.decoded_blocks() <= n);
            }
            _ => {
                for i in 0..n {
                    if let Some(p) = plc.recovered(i) {
                        prop_assert_eq!(p, &sources[i][..], "block {}", i);
                    }
                }
                prop_assert!(plc.decoded_blocks() <= n);
                prop_assert!(plc.rank() <= n);
            }
        }
    }

    /// Per-stream domination: feeding the *same* per-level block counts,
    /// PLC decodes at least as many strict-priority levels as SLC.
    #[test]
    fn plc_dominates_slc_per_stream(
        profile in profile_strategy(),
        seed in 0u64..200,
        budget_mult in 1usize..3,
    ) {
        let n = profile.total_blocks();
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = PriorityDistribution::uniform(profile.num_levels());
        let slc_enc = Encoder::new(Scheme::Slc, profile.clone());
        let plc_enc = Encoder::new(Scheme::Plc, profile.clone());
        let mut slc: SlcDecoder<Gf256, ()> = SlcDecoder::coefficients_only(profile.clone());
        let mut plc: PlcDecoder<Gf256, ()> = PlcDecoder::coefficients_only(profile.clone());
        for _ in 0..(budget_mult * n) {
            // Identical level sequence for both schemes.
            let level = dist.sample_level(&mut rng);
            slc.insert_block(&slc_enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
            plc.insert_block(&plc_enc.encode_unpayloaded::<Gf256, _>(level, &mut rng));
        }
        // With a large field the block counts determine decodability up
        // to ~1/255 singularities; allow equality but catch systematic
        // inversions.
        prop_assert!(
            plc.decoded_levels() + 1 >= slc.decoded_levels(),
            "PLC {} far below SLC {}",
            plc.decoded_levels(),
            slc.decoded_levels()
        );
    }

    /// Seeded (compact) encoding expands to the identical coded block
    /// stream as direct encoding never loses information.
    #[test]
    fn seeded_expansion_is_lossless(
        profile in profile_strategy(),
        scheme in scheme_strategy(),
        seed in 0u64..500,
    ) {
        let n = profile.total_blocks();
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<Gf16>> = (0..n)
            .map(|_| vec![Gf16::random(&mut rng)])
            .collect();
        let enc = SeededEncoder::new(scheme, profile.clone());
        let level = (seed as usize) % profile.num_levels();
        let compact = enc.encode::<Gf16>(level, seed ^ 0xABCD, &sources);
        let a = enc.expand(&compact);
        let b = enc.expand(&compact);
        prop_assert_eq!(&a, &b, "expansion must be deterministic");
        // The expanded coefficients reproduce the payload.
        let mut want = vec![Gf16::ZERO; 1];
        for (c, s) in a.coefficients.to_dense_vec().iter().zip(&sources) {
            Gf16::axpy(&mut want, *c, s);
        }
        prop_assert_eq!(want, a.payload);
    }

    /// The growth-codes peeling decoder never reports an incorrect
    /// payload and always terminates.
    #[test]
    fn growth_decoder_is_sound(
        n in 1usize..30,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<Gf256>> = (0..n)
            .map(|_| vec![Gf256::random(&mut rng)])
            .collect();
        let enc = GrowthEncoder::new(n);
        let mut dec: GrowthDecoder<Gf256> = GrowthDecoder::new(n);
        for _ in 0..(6 * n + 10) {
            let cw = enc.encode(dec.decoded_blocks(), &sources, &mut rng);
            dec.insert(&cw);
            if dec.is_complete() {
                break;
            }
        }
        for i in 0..n {
            if let Some(p) = dec.recovered(i) {
                prop_assert_eq!(p, &sources[i][..], "block {}", i);
            }
        }
    }

    /// Distribution allocation and sampling agree: over many samples the
    /// empirical level frequencies approach the distribution.
    #[test]
    fn sampling_and_allocation_are_consistent(
        weights in prop::collection::vec(0.05f64..1.0, 1..6),
        seed in 0u64..100,
    ) {
        let dist = PriorityDistribution::from_weights(weights).unwrap();
        let n = dist.num_levels();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = 4000usize;
        let mut counts = vec![0usize; n];
        for _ in 0..samples {
            counts[dist.sample_level(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = dist.p(i) * samples as f64;
            // 5-sigma binomial bound.
            let sigma = (samples as f64 * dist.p(i) * (1.0 - dist.p(i))).sqrt();
            prop_assert!(
                (c as f64 - expect).abs() <= 5.0 * sigma + 5.0,
                "level {}: {} vs {}",
                i, c, expect
            );
        }
    }
}
