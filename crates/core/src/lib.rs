//! Priority random linear codes for differentiated data persistence.
//!
//! This crate implements the central contribution of *"Differentiated Data
//! Persistence with Priority Random Linear Codes"* (Lin, Li, Liang — ICDCS
//! 2007): coding schemes that store periodically-measured data inside an
//! unreliable network such that **more important data survives more node
//! failure**, by making coded blocks for important data linear
//! combinations of *fewer* source blocks.
//!
//! # The schemes
//!
//! Source blocks are divided into priority levels by a
//! [`PriorityProfile`]. Three codes are provided (Sec. 3.1 of the paper,
//! Fig. 1):
//!
//! * **RLC** ([`Scheme::Rlc`]) — classic random linear codes: every coded
//!   block combines *all* `N` source blocks. All-or-nothing decoding.
//! * **SLC** ([`Scheme::Slc`]) — *stacked* linear codes: a level-`k` coded
//!   block combines only the source blocks *in* level `k`. Levels decode
//!   independently.
//! * **PLC** ([`Scheme::Plc`]) — *progressive* linear codes: a level-`k`
//!   coded block combines all source blocks of levels `1..=k`. Decoding is
//!   progressive Gauss–Jordan elimination; higher-priority prefixes decode
//!   first.
//!
//! # Quick start
//!
//! ```
//! use prlc_core::{Encoder, PlcDecoder, PriorityDecoder, PriorityProfile, Scheme};
//! use prlc_gf::{Gf256, GfElem};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), prlc_core::ProfileError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! // 6 source blocks in 2 levels: {x1, x2} critical, {x3..x6} bulk.
//! let profile = PriorityProfile::new(vec![2, 4])?;
//! let sources: Vec<Vec<Gf256>> = (0..6)
//!     .map(|i| vec![Gf256::from_index(i * 17 % 256)])
//!     .collect();
//!
//! let encoder = Encoder::new(Scheme::Plc, profile.clone());
//! let mut decoder = PlcDecoder::with_payloads(profile);
//!
//! // Two level-0 coded blocks suffice to decode the critical level even
//! // though the full system is underdetermined.
//! for _ in 0..2 {
//!     let block = encoder.encode(0, &sources, &mut rng);
//!     decoder.insert_block(&block);
//! }
//! assert_eq!(decoder.decoded_levels(), 1);
//! assert_eq!(decoder.recovered(0).unwrap(), &sources[0][..]);
//! # Ok(())
//! # }
//! ```
//!
//! # Baselines
//!
//! The [`baseline`] module implements the comparators used in the paper's
//! evaluation and related-work discussion: priority-aware replication
//! ("no coding", the degenerate SLC with one block per level) and Growth
//! Codes (Kamra et al., SIGCOMM 2006).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod block;
pub mod decoder;
pub mod encoder;
pub mod priority;
pub mod scheme;
pub mod seeded;
pub mod utility;

pub use block::CodedBlock;
pub use decoder::{PlcDecoder, PriorityDecoder, RlcDecoder, SlcDecoder};
pub use encoder::{Degree, Encoder};
pub use priority::{
    DecodingConstraint, DistributionError, PriorityDistribution, PriorityProfile, ProfileError,
};
pub use scheme::Scheme;
pub use seeded::{CompactBlock, SeededEncoder};
pub use utility::{UtilityError, UtilityFunction};

// Re-exported so downstream code can match on insertion outcomes and
// choose coefficient representations without depending on prlc-linalg
// directly.
pub use prlc_linalg::{CoeffRep, CoeffRow, InsertOutcome};

#[cfg(test)]
mod proptests;
