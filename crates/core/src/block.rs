//! Coded blocks: coefficients plus payload.

use prlc_gf::GfElem;
use prlc_linalg::{CoeffRep, CoeffRow};

/// A coded block: the coding coefficients over all `N` source blocks
/// plus the encoded payload.
///
/// The coefficient row is a [`CoeffRow`] over all `N` source blocks —
/// stored densely or sparsely (sorted `(index, value)` pairs), chosen
/// at construction; entries outside the scheme's support for `level`
/// are zero either way. The payload is the corresponding linear
/// combination of the source payloads and may be empty when an
/// experiment tracks decodability only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CodedBlock<F: GfElem> {
    /// The priority level this block was generated at (0 = most
    /// important).
    pub level: usize,
    /// Coding coefficients `β_{i,1} … β_{i,N}` (logical length `N`).
    pub coefficients: CoeffRow<F>,
    /// The encoded data `c_i = Σ_j β_{i,j} x_j` (may be empty).
    pub payload: Vec<F>,
}

impl<F: GfElem> CodedBlock<F> {
    /// Number of nonzero coding coefficients (the block's degree).
    pub fn degree(&self) -> usize {
        self.coefficients.nnz()
    }

    /// Indices of the source blocks this block combines.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.coefficients.iter_nonzeros().map(|(i, _)| i)
    }

    /// Folds another source block into this coded block in place:
    /// `c ← c + β·x` — the incremental encoding step each caching node
    /// performs in the pre-distribution protocol (Sec. 4).
    ///
    /// # Panics
    ///
    /// Panics if `source_idx` is out of range, or if the payload lengths
    /// differ (unless this block's payload is empty, in which case it is
    /// initialised to zeros of the right length first).
    pub fn accumulate(&mut self, source_idx: usize, beta: F, data: &[F]) {
        assert!(
            source_idx < self.coefficients.len(),
            "source index {source_idx} out of range"
        );
        self.coefficients.add_assign_at(source_idx, beta);
        if self.payload.is_empty() && !data.is_empty() {
            self.payload = vec![F::ZERO; data.len()];
        }
        F::axpy(&mut self.payload, beta, data);
    }

    /// Folds a whole coded block into this one: `self ← self + β·other`.
    ///
    /// Because coding is linear, a random combination of valid coded
    /// blocks is itself a valid coded block whose support is the union
    /// of the inputs' supports — the primitive behind in-network
    /// *repair* (re-creating lost coded blocks from surviving ones
    /// without touching the original sources).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient widths differ, or if both payloads are
    /// non-empty with different lengths. An empty payload on either side
    /// is treated as "not tracking payloads" and stays consistent.
    pub fn combine(&mut self, other: &CodedBlock<F>, beta: F) {
        assert_eq!(
            self.coefficients.len(),
            other.coefficients.len(),
            "combine: coefficient width mismatch"
        );
        self.coefficients.axpy_full(beta, &other.coefficients);
        if other.payload.is_empty() {
            return;
        }
        if self.payload.is_empty() {
            self.payload = vec![F::ZERO; other.payload.len()];
        }
        F::axpy(&mut self.payload, beta, &other.payload);
    }

    /// An all-zero coded block over `n` source blocks at `level`, stored
    /// densely, ready for incremental [`accumulate`](Self::accumulate)
    /// encoding.
    pub fn empty(level: usize, n: usize) -> Self {
        Self::empty_with(level, n, CoeffRep::Dense)
    }

    /// An all-zero coded block in the given coefficient representation.
    pub fn empty_with(level: usize, n: usize, rep: CoeffRep) -> Self {
        CodedBlock {
            level,
            coefficients: CoeffRow::zero(n, rep),
            payload: Vec::new(),
        }
    }

    /// Whether no source block has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_zero_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    #[test]
    fn empty_block_accumulates() {
        for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
            let mut b: CodedBlock<Gf256> = CodedBlock::empty_with(1, 4, rep);
            assert!(b.is_empty());
            assert_eq!(b.degree(), 0);

            b.accumulate(2, g(5), &[g(10), g(20)]);
            assert!(!b.is_empty());
            assert_eq!(b.degree(), 1);
            assert_eq!(b.support().collect::<Vec<_>>(), vec![2]);
            assert_eq!(b.payload, vec![g(5) * g(10), g(5) * g(20)]);

            b.accumulate(0, g(3), &[g(1), g(2)]);
            assert_eq!(b.degree(), 2);
            assert_eq!(b.payload[0], g(5) * g(10) + g(3) * g(1));
        }
    }

    #[test]
    fn accumulate_same_index_adds_coefficients() {
        for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
            let mut b: CodedBlock<Gf256> = CodedBlock::empty_with(0, 2, rep);
            b.accumulate(0, g(5), &[g(1)]);
            b.accumulate(0, g(5), &[g(1)]);
            // In GF(2^8), beta + beta = 0: the contributions cancel.
            assert_eq!(b.coefficients.get(0), Gf256::ZERO);
            assert_eq!(b.payload[0], Gf256::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn accumulate_bad_index_panics() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        b.accumulate(2, g(1), &[]);
    }

    #[test]
    fn combine_is_a_valid_linear_combination() {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(8)
        };
        let sources: Vec<Vec<Gf256>> = (0..3)
            .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mk = |coeffs: &[usize], rep: CoeffRep| -> CodedBlock<Gf256> {
            let mut b = CodedBlock::empty_with(0, 3, rep);
            for (i, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    b.accumulate(i, g(c), &sources[i]);
                }
            }
            b
        };
        for rep in [CoeffRep::Dense, CoeffRep::Sparse] {
            let a = mk(&[1, 2, 0], rep);
            let b = mk(&[0, 3, 4], rep);
            let mut combined = a.clone();
            combined.combine(&b, g(7));
            // Coefficients and payload must agree with re-encoding from
            // the combined coefficient vector.
            let mut want = vec![Gf256::ZERO; 2];
            for (c, s) in combined.coefficients.to_dense_vec().iter().zip(&sources) {
                Gf256::axpy(&mut want, *c, s);
            }
            assert_eq!(combined.payload, want);
            assert_eq!(
                combined.coefficients.get(1),
                a.coefficients.get(1) + g(7) * b.coefficients.get(1)
            );
        }
    }

    #[test]
    fn combine_mixes_representations() {
        let mut dense: CodedBlock<Gf256> = CodedBlock::empty_with(0, 4, CoeffRep::Dense);
        dense.accumulate(1, g(2), &[]);
        let mut sparse: CodedBlock<Gf256> = CodedBlock::empty_with(0, 4, CoeffRep::Sparse);
        sparse.accumulate(3, g(5), &[]);
        let mut a = dense.clone();
        a.combine(&sparse, g(7));
        let mut b = sparse.clone();
        b.combine(&dense, g(7));
        assert_eq!(a.coefficients.get(3), g(7) * g(5));
        assert_eq!(b.coefficients.get(1), g(7) * g(2));
        // Logical equality holds regardless of which side was sparse.
        assert_eq!(a.coefficients.get(1), g(2));
        assert_eq!(b.coefficients.get(3), g(5));
    }

    #[test]
    fn combine_handles_empty_payloads() {
        let mut a: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        a.accumulate(0, g(5), &[]);
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        b.accumulate(1, g(3), &[g(9)]);
        // a has no payload yet; combining with b initialises it.
        a.combine(&b, g(2));
        assert_eq!(a.payload, vec![g(2) * g(3) * g(9)]);
        // Combining with a payload-less block leaves payload untouched.
        let c: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        let before = a.payload.clone();
        a.combine(&c, g(4));
        assert_eq!(a.payload, before);
    }

    #[test]
    fn coefficient_only_blocks_have_empty_payload() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 3);
        b.accumulate(1, g(9), &[]);
        assert!(b.payload.is_empty());
        assert_eq!(b.degree(), 1);
    }

    #[test]
    fn dense_and_sparse_blocks_compare_equal() {
        let mut d: CodedBlock<Gf256> = CodedBlock::empty_with(2, 5, CoeffRep::Dense);
        let mut s: CodedBlock<Gf256> = CodedBlock::empty_with(2, 5, CoeffRep::Sparse);
        for b in [&mut d, &mut s] {
            b.accumulate(1, g(9), &[g(4)]);
            b.accumulate(4, g(3), &[g(8)]);
        }
        assert_eq!(d, s);
        assert_eq!(format!("{d:?}"), format!("{s:?}"));
    }
}
