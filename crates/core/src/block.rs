//! Coded blocks: coefficients plus payload.

use prlc_gf::GfElem;

/// A coded block: the coding coefficients over all `N` source blocks
/// plus the encoded payload.
///
/// The coefficient vector is dense (length `N`); entries outside the
/// scheme's support for `level` are zero. The payload is the
/// corresponding linear combination of the source payloads and may be
/// empty when an experiment tracks decodability only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CodedBlock<F> {
    /// The priority level this block was generated at (0 = most
    /// important).
    pub level: usize,
    /// Dense coding coefficients `β_{i,1} … β_{i,N}`.
    pub coefficients: Vec<F>,
    /// The encoded data `c_i = Σ_j β_{i,j} x_j` (may be empty).
    pub payload: Vec<F>,
}

impl<F: GfElem> CodedBlock<F> {
    /// Number of nonzero coding coefficients (the block's degree).
    pub fn degree(&self) -> usize {
        self.coefficients.iter().filter(|c| !c.is_zero()).count()
    }

    /// Indices of the source blocks this block combines.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.coefficients
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (!c.is_zero()).then_some(i))
    }

    /// Folds another source block into this coded block in place:
    /// `c ← c + β·x` — the incremental encoding step each caching node
    /// performs in the pre-distribution protocol (Sec. 4).
    ///
    /// # Panics
    ///
    /// Panics if `source_idx` is out of range, or if the payload lengths
    /// differ (unless this block's payload is empty, in which case it is
    /// initialised to zeros of the right length first).
    pub fn accumulate(&mut self, source_idx: usize, beta: F, data: &[F]) {
        assert!(
            source_idx < self.coefficients.len(),
            "source index {source_idx} out of range"
        );
        self.coefficients[source_idx] = self.coefficients[source_idx].gf_add(beta);
        if self.payload.is_empty() && !data.is_empty() {
            self.payload = vec![F::ZERO; data.len()];
        }
        F::axpy(&mut self.payload, beta, data);
    }

    /// Folds a whole coded block into this one: `self ← self + β·other`.
    ///
    /// Because coding is linear, a random combination of valid coded
    /// blocks is itself a valid coded block whose support is the union
    /// of the inputs' supports — the primitive behind in-network
    /// *repair* (re-creating lost coded blocks from surviving ones
    /// without touching the original sources).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient widths differ, or if both payloads are
    /// non-empty with different lengths. An empty payload on either side
    /// is treated as "not tracking payloads" and stays consistent.
    pub fn combine(&mut self, other: &CodedBlock<F>, beta: F) {
        assert_eq!(
            self.coefficients.len(),
            other.coefficients.len(),
            "combine: coefficient width mismatch"
        );
        F::axpy(&mut self.coefficients, beta, &other.coefficients);
        if other.payload.is_empty() {
            return;
        }
        if self.payload.is_empty() {
            self.payload = vec![F::ZERO; other.payload.len()];
        }
        F::axpy(&mut self.payload, beta, &other.payload);
    }

    /// An all-zero coded block over `n` source blocks at `level`, ready
    /// for incremental [`accumulate`](Self::accumulate) encoding.
    pub fn empty(level: usize, n: usize) -> Self {
        CodedBlock {
            level,
            coefficients: vec![F::ZERO; n],
            payload: Vec::new(),
        }
    }

    /// Whether no source block has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.coefficients.iter().all(|c| c.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prlc_gf::Gf256;

    fn g(v: usize) -> Gf256 {
        Gf256::from_index(v)
    }

    #[test]
    fn empty_block_accumulates() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(1, 4);
        assert!(b.is_empty());
        assert_eq!(b.degree(), 0);

        b.accumulate(2, g(5), &[g(10), g(20)]);
        assert!(!b.is_empty());
        assert_eq!(b.degree(), 1);
        assert_eq!(b.support().collect::<Vec<_>>(), vec![2]);
        assert_eq!(b.payload, vec![g(5) * g(10), g(5) * g(20)]);

        b.accumulate(0, g(3), &[g(1), g(2)]);
        assert_eq!(b.degree(), 2);
        assert_eq!(b.payload[0], g(5) * g(10) + g(3) * g(1));
    }

    #[test]
    fn accumulate_same_index_adds_coefficients() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        b.accumulate(0, g(5), &[g(1)]);
        b.accumulate(0, g(5), &[g(1)]);
        // In GF(2^8), beta + beta = 0: the contributions cancel.
        assert_eq!(b.coefficients[0], Gf256::ZERO);
        assert_eq!(b.payload[0], Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn accumulate_bad_index_panics() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        b.accumulate(2, g(1), &[]);
    }

    #[test]
    fn combine_is_a_valid_linear_combination() {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(8)
        };
        let sources: Vec<Vec<Gf256>> = (0..3)
            .map(|_| (0..2).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mk = |coeffs: &[usize]| -> CodedBlock<Gf256> {
            let mut b = CodedBlock::empty(0, 3);
            for (i, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    b.accumulate(i, g(c), &sources[i]);
                }
            }
            b
        };
        let a = mk(&[1, 2, 0]);
        let b = mk(&[0, 3, 4]);
        let mut combined = a.clone();
        combined.combine(&b, g(7));
        // Coefficients and payload must agree with re-encoding from the
        // combined coefficient vector.
        let mut want = vec![Gf256::ZERO; 2];
        for (c, s) in combined.coefficients.iter().zip(&sources) {
            Gf256::axpy(&mut want, *c, s);
        }
        assert_eq!(combined.payload, want);
        assert_eq!(
            combined.coefficients[1],
            a.coefficients[1] + g(7) * b.coefficients[1]
        );
    }

    #[test]
    fn combine_handles_empty_payloads() {
        let mut a: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        a.accumulate(0, g(5), &[]);
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        b.accumulate(1, g(3), &[g(9)]);
        // a has no payload yet; combining with b initialises it.
        a.combine(&b, g(2));
        assert_eq!(a.payload, vec![g(2) * g(3) * g(9)]);
        // Combining with a payload-less block leaves payload untouched.
        let c: CodedBlock<Gf256> = CodedBlock::empty(0, 2);
        let before = a.payload.clone();
        a.combine(&c, g(4));
        assert_eq!(a.payload, before);
    }

    #[test]
    fn coefficient_only_blocks_have_empty_payload() {
        let mut b: CodedBlock<Gf256> = CodedBlock::empty(0, 3);
        b.accumulate(1, g(9), &[]);
        assert!(b.payload.is_empty());
        assert_eq!(b.degree(), 1);
    }
}
