//! The three coding schemes and their coefficient supports.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::priority::PriorityProfile;

/// Which linear code generates a coded block (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Random linear codes: every coded block combines all `N` source
    /// blocks. Decoding is all-or-nothing.
    Rlc,
    /// Stacked linear codes: a level-`k` coded block combines only the
    /// source blocks in level `k` (block-diagonal coefficient matrix).
    Slc,
    /// Progressive linear codes: a level-`k` coded block combines the
    /// source blocks of levels `0..=k` (block-lower-triangular matrix).
    Plc,
}

impl Scheme {
    /// The source-block index range a coded block of `level` may combine.
    ///
    /// # Panics
    ///
    /// Panics if `level >= profile.num_levels()`.
    pub fn support(self, profile: &PriorityProfile, level: usize) -> Range<usize> {
        assert!(
            level < profile.num_levels(),
            "level {level} out of range ({})",
            profile.num_levels()
        );
        match self {
            Scheme::Rlc => 0..profile.total_blocks(),
            Scheme::Slc => profile.blocks_of(level),
            Scheme::Plc => 0..profile.bound(level + 1),
        }
    }

    /// Whether the scheme supports decoding a strict subset of levels
    /// (RLC does not — it is the all-or-nothing baseline).
    pub fn supports_partial_decoding(self) -> bool {
        !matches!(self, Scheme::Rlc)
    }

    /// All scheme variants, for sweeps.
    pub const ALL: [Scheme; 3] = [Scheme::Rlc, Scheme::Slc, Scheme::Plc];
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scheme::Rlc => "RLC",
            Scheme::Slc => "SLC",
            Scheme::Plc => "PLC",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_match_fig1() {
        // Fig. 1: three source blocks, level 1 = {x1}, level 2 = {x2, x3}.
        let p = PriorityProfile::new(vec![1, 2]).unwrap();
        // (a) RLC: all rows span everything.
        assert_eq!(Scheme::Rlc.support(&p, 0), 0..3);
        assert_eq!(Scheme::Rlc.support(&p, 1), 0..3);
        // (b) SLC: block-diagonal.
        assert_eq!(Scheme::Slc.support(&p, 0), 0..1);
        assert_eq!(Scheme::Slc.support(&p, 1), 1..3);
        // (c) PLC: progressive prefixes.
        assert_eq!(Scheme::Plc.support(&p, 0), 0..1);
        assert_eq!(Scheme::Plc.support(&p, 1), 0..3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn support_rejects_bad_level() {
        let p = PriorityProfile::new(vec![1, 2]).unwrap();
        Scheme::Plc.support(&p, 2);
    }

    #[test]
    fn partial_decoding_flags() {
        assert!(!Scheme::Rlc.supports_partial_decoding());
        assert!(Scheme::Slc.supports_partial_decoding());
        assert!(Scheme::Plc.supports_partial_decoding());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scheme::Rlc.to_string(), "RLC");
        assert_eq!(Scheme::Slc.to_string(), "SLC");
        assert_eq!(Scheme::Plc.to_string(), "PLC");
        assert_eq!(Scheme::ALL.len(), 3);
    }
}
