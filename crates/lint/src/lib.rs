//! `prlc-lint`: zero-dependency workspace invariant linter.
//!
//! Lexes the workspace's Rust sources into token trees (see [`lexer`]
//! and [`tree`]) and enforces the repo-specific invariants that the
//! PRLC reproduction's headline claims rest on:
//!
//! * **L1 determinism** — no nondeterministic containers, clocks or
//!   ambient RNG outside the allowlist;
//! * **L2 unsafe-audit** — every `unsafe` carries `// SAFETY:`, and
//!   only `prlc-gf` may hold unsafe code at all;
//! * **L3 metric-key registry** — every `counter!`/`histogram!`/
//!   `timer!` key matches the canonical `docs/METRICS.md` registry;
//! * **L4 RNG domain-separation** — seeded RNG in `prlc-net` goes
//!   through the `mix_*` helpers;
//! * **L5 panic-hygiene** — no `unwrap()`/`expect()` in library code
//!   outside the reviewed allowlist;
//! * **L6 RNG-domain registry** — every `mix_*` domain tag is unique
//!   and documented in the canonical `docs/RNG_DOMAINS.md` table;
//! * **L7 kernel-dispatch** — no scalar GF arithmetic in hot-crate
//!   loops bypassing the `GfKernel` slice layer.
//!
//! The linter itself must be beyond suspicion, so it depends on nothing
//! but `std` (not even the workspace shims) and its output is fully
//! deterministic: findings are sorted and no wall-clock ever appears in
//! a report.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod registry;
pub mod tree;

use lints::{Finding, Lint};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use tree::{classify, SourceModel};

/// Default allowlist file name, resolved relative to the workspace root.
pub const DEFAULT_ALLOWLIST: &str = "lint-allowlist.txt";

/// Metric registry document path, relative to the workspace root.
pub const METRICS_DOC: &str = "docs/METRICS.md";

/// RNG-domain registry document path, relative to the workspace root.
pub const RNG_DOMAINS_DOC: &str = "docs/RNG_DOMAINS.md";

/// Directory names never descended into during the workspace walk.
/// `shims/` holds vendored stand-ins for external crates and is not
/// ours to police; `fixtures/` holds deliberately-bad lint corpus
/// snippets that must only be scanned by the fixture tests.
const SKIP_DIRS: &[&str] = &["target", "shims", "docs", "results", "fixtures"];

/// One parsed allowlist entry: `<lint> <path> <token> # justification`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Which lint the entry suppresses.
    pub lint: Lint,
    /// Workspace-relative path the suppression applies to.
    pub file: String,
    /// The finding token it suppresses (e.g. `expect`, `Instant`).
    pub token: String,
    /// Mandatory one-line justification (text after `#`).
    pub justification: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

/// The parsed allowlist plus problems found in the file itself
/// (reported as `L0-allowlist` findings).
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Well-formed entries.
    pub entries: Vec<AllowEntry>,
    /// Malformed lines, reported against the allowlist file.
    pub problems: Vec<Finding>,
    rel: String,
}

impl Allowlist {
    /// Parses allowlist text. Blank lines and lines starting with `#`
    /// are comments; every entry line must read
    /// `<lint-id> <path> <token> # <justification>`.
    pub fn parse(rel: &str, text: &str) -> Allowlist {
        let mut list = Allowlist {
            rel: rel.to_string(),
            ..Allowlist::default()
        };
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut problem = |msg: String| {
                list.problems.push(Finding {
                    file: rel.to_string(),
                    line: line_no,
                    lint: Lint::Allowlist,
                    token: "entry".to_string(),
                    message: msg,
                });
            };
            let (head, justification) = match line.split_once('#') {
                Some((h, j)) if !j.trim().is_empty() => (h, j.trim().to_string()),
                _ => {
                    problem(format!(
                        "allowlist entry {line:?} has no `# justification`; every suppression \
                         must say why"
                    ));
                    continue;
                }
            };
            let fields: Vec<&str> = head.split_whitespace().collect();
            let [lint_id, file, token] = fields[..] else {
                problem(format!(
                    "allowlist entry {line:?} must be `<lint> <path> <token> # justification` \
                     (got {} fields before `#`)",
                    fields.len()
                ));
                continue;
            };
            let Some(lint) = Lint::from_id(lint_id) else {
                problem(format!("allowlist entry names unknown lint {lint_id:?}"));
                continue;
            };
            list.entries.push(AllowEntry {
                lint,
                file: file.to_string(),
                token: token.to_string(),
                justification,
                line: line_no,
            });
        }
        list
    }

    /// Removes findings covered by an entry. Entries that suppress
    /// nothing are stale and become findings themselves — an allowlist
    /// only stays honest if it shrinks with the code.
    pub fn apply(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let covered = self
                .entries
                .iter()
                .enumerate()
                .find(|(_, e)| e.lint == f.lint && e.file == f.file && e.token == f.token);
            match covered {
                Some((idx, _)) => used[idx] = true,
                None => kept.push(f),
            }
        }
        kept.extend(self.problems.iter().cloned());
        for (idx, e) in self.entries.iter().enumerate() {
            if !used[idx] {
                kept.push(Finding {
                    file: self.rel.clone(),
                    line: e.line,
                    lint: Lint::Allowlist,
                    token: e.token.clone(),
                    message: format!(
                        "stale allowlist entry: no {} finding for `{}` in {} — remove it",
                        e.lint.id(),
                        e.token,
                        e.file
                    ),
                });
            }
        }
        kept
    }
}

/// A finished lint run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, lint, token).
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many allowlist entries were loaded.
    pub allowlist_entries: usize,
}

impl Report {
    /// True when the workspace is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} [{}] {}", f.file, f.line, f.lint.id(), f.message);
        }
        let _ = writeln!(
            out,
            "prlc-lint: {} finding(s) across {} file(s) scanned ({} allowlist entr{})",
            self.findings.len(),
            self.files_scanned,
            self.allowlist_entries,
            if self.allowlist_entries == 1 {
                "y"
            } else {
                "ies"
            }
        );
        out
    }

    /// Deterministic JSON rendering: fixed field order, findings
    /// pre-sorted, no timestamps.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allowlist_entries\": {},", self.allowlist_entries);
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"file\": {}, \"line\": {}, \"lint\": {}, \"token\": {}, \"message\": {}",
                json_string(&f.file),
                f.line,
                json_string(f.lint.id()),
                json_string(&f.token),
                json_string(&f.message)
            );
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collects workspace-relative paths of `.rs` files under
/// `root`, skipping hidden directories, `target/`, `shims/`, `docs/`
/// and `results/`. Paths come back sorted for deterministic reports.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                walk(root, &path, out)?;
            } else if ty.is_file() && name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Runs every lint over the workspace at `root`. `allowlist` overrides
/// the default `lint-allowlist.txt` location; a missing default file
/// means an empty allowlist, while a missing explicit path is an error.
pub fn run(root: &Path, allowlist: Option<&Path>) -> io::Result<Report> {
    let mut files = Vec::new();
    for rel in collect_rs_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        files.push(SourceModel::parse(&rel, classify(&rel), &text));
    }
    let files_scanned = files.len();

    let mut findings = Vec::new();
    lints::l1_determinism(&files, &mut findings);
    lints::l2_unsafe_comments(&files, &mut findings);
    let roots: Vec<&SourceModel> = files
        .iter()
        .filter(|f| {
            f.rel == "src/lib.rs"
                || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"))
        })
        .collect();
    lints::l2_forbid_unsafe(&roots, &mut findings);

    match fs::read_to_string(root.join(METRICS_DOC)) {
        Ok(text) => {
            let reg = registry::parse_metrics_md(&text);
            lints::l3_metric_registry(&files, METRICS_DOC, &reg, &mut findings);
        }
        Err(_) => findings.push(Finding {
            file: METRICS_DOC.to_string(),
            line: 1,
            lint: Lint::MetricRegistry,
            token: "registry".to_string(),
            message: format!(
                "canonical metric registry {METRICS_DOC} is missing; every metric key must be \
                 documented there"
            ),
        }),
    }
    lints::l4_rng_domain(&files, &mut findings);
    lints::l5_panic_hygiene(&files, &mut findings);
    match fs::read_to_string(root.join(RNG_DOMAINS_DOC)) {
        Ok(text) => {
            let reg = registry::parse_rng_domains_md(&text);
            lints::l6_rng_registry(&files, RNG_DOMAINS_DOC, &reg, &mut findings);
        }
        Err(_) => findings.push(Finding {
            file: RNG_DOMAINS_DOC.to_string(),
            line: 1,
            lint: Lint::RngRegistry,
            token: "registry".to_string(),
            message: format!(
                "canonical RNG-domain registry {RNG_DOMAINS_DOC} is missing; every `mix_*` \
                 domain tag must be documented there"
            ),
        }),
    }
    lints::l7_kernel_dispatch(&files, &mut findings);

    let (allow_text, allow_rel) = match allowlist {
        Some(p) => (
            fs::read_to_string(p)?,
            p.to_string_lossy().replace('\\', "/"),
        ),
        None => {
            let p = root.join(DEFAULT_ALLOWLIST);
            match fs::read_to_string(&p) {
                Ok(t) => (t, DEFAULT_ALLOWLIST.to_string()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    (String::new(), DEFAULT_ALLOWLIST.to_string())
                }
                Err(e) => return Err(e),
            }
        }
    };
    let allow = Allowlist::parse(&allow_rel, &allow_text);
    let allowlist_entries = allow.entries.len();
    let mut findings = allow.apply(findings);
    findings.sort();
    findings.dedup();

    Ok(Report {
        findings,
        files_scanned,
        allowlist_entries,
    })
}

/// Ascends from `start` to the first directory containing both a
/// `Cargo.toml` and a `crates/` directory — the workspace root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: Lint, file: &str, line: usize, token: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            token: token.to_string(),
            message: "msg".to_string(),
        }
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let list = Allowlist::parse(
            "lint-allowlist.txt",
            "# header comment\n\nL5 crates/net/src/ring.rs expect # ring size is a constructor invariant\n",
        );
        assert!(list.problems.is_empty(), "{:?}", list.problems);
        let kept = list.apply(vec![
            finding(Lint::PanicHygiene, "crates/net/src/ring.rs", 10, "expect"),
            finding(Lint::PanicHygiene, "crates/net/src/ring.rs", 44, "expect"),
            finding(Lint::PanicHygiene, "crates/net/src/other.rs", 3, "expect"),
        ]);
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].file, "crates/net/src/other.rs");
    }

    #[test]
    fn stale_and_unjustified_entries_become_findings() {
        let list = Allowlist::parse(
            "lint-allowlist.txt",
            "L1 crates/x/src/a.rs Instant # never fires\nL5 crates/x/src/b.rs unwrap\n",
        );
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.problems.len(), 1, "{:?}", list.problems);
        let kept = list.apply(Vec::new());
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().all(|f| f.lint == Lint::Allowlist));
        assert!(kept.iter().any(|f| f.message.contains("stale")));
        assert!(kept.iter().any(|f| f.message.contains("justification")));
    }

    #[test]
    fn allowlist_accepts_short_lint_ids() {
        let list = Allowlist::parse("a.txt", "L5 crates/x/src/a.rs expect # why\n");
        assert_eq!(list.entries[0].lint, Lint::PanicHygiene);
        let list = Allowlist::parse("a.txt", "L9 crates/x/src/a.rs expect # why\n");
        assert!(list.entries.is_empty());
        assert!(list.problems[0].message.contains("unknown lint"));
    }

    #[test]
    fn json_report_is_deterministic_and_escaped() {
        let report = Report {
            findings: vec![finding(Lint::Determinism, "a \"b\".rs", 1, "HashMap")],
            files_scanned: 3,
            allowlist_entries: 0,
        };
        let j1 = report.render_json();
        let j2 = report.render_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"a \\\"b\\\".rs\""), "{j1}");
        assert!(j1.contains("\"clean\": false"));
        let empty = Report {
            findings: Vec::new(),
            files_scanned: 3,
            allowlist_entries: 2,
        };
        let j = empty.render_json();
        assert!(j.contains("\"findings\": []"), "{j}");
        assert!(j.contains("\"clean\": true"));
    }

    #[test]
    fn findings_sort_stably() {
        let mut v = vec![
            finding(Lint::PanicHygiene, "b.rs", 2, "expect"),
            finding(Lint::Determinism, "b.rs", 2, "Instant"),
            finding(Lint::Determinism, "a.rs", 9, "Instant"),
        ];
        v.sort();
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[1].lint, Lint::Determinism);
        assert_eq!(v[2].lint, Lint::PanicHygiene);
    }
}
