//! Lexical source model: comment/string masking and test-region
//! detection, shared by every lint pass.
//!
//! The linter deliberately stops at the lexical level (no `syn`, no
//! parsing — consistent with the workspace's offline zero-dependency
//! policy). A scanned file exposes three byte-aligned views of each
//! line:
//!
//! * `raw` — the line as written (used to look for `// SAFETY:`
//!   comments, which live *in* comments);
//! * `code` — comments **and string-literal contents** blanked out
//!   (used for token searches, so a banned identifier inside a doc
//!   comment or an error message never fires);
//! * `keep` — comments blanked but string literals intact (used to
//!   extract metric-key literals once the `code` view has located a
//!   real macro call).
//!
//! Masking replaces each masked *byte* with a space, so all three views
//! have identical byte lengths and offsets found in one view index
//! directly into the others.

/// How a file participates in the lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every lint applies.
    Lib,
    /// Binary / example code (CLI front-ends, bench drivers): exempt
    /// from the panic-hygiene lint, everything else applies.
    Bin,
    /// Test-only code (`tests/`, `benches/`, `proptests.rs`): exempt
    /// from determinism, metric-registry, RNG and panic lints.
    TestOnly,
}

/// One scanned source file with its masked views.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// How this file participates in the lints.
    pub kind: FileKind,
    /// Lines as written.
    pub raw: Vec<String>,
    /// Lines with comments and string contents masked.
    pub code: Vec<String>,
    /// Lines with comments masked, string literals intact.
    pub keep: Vec<String>,
    /// Per line: is it inside a `#[cfg(test)]`-gated block?
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Scans `text` into the three views plus the test-region map.
    pub fn scan(rel: &str, kind: FileKind, text: &str) -> SourceFile {
        let (code_all, keep_all) = mask_source(text);
        let split = |s: &str| -> Vec<String> { s.lines().map(str::to_string).collect() };
        let raw = split(text);
        let code = split(&code_all);
        let keep = split(&keep_all);
        let in_test = test_regions(&code);
        SourceFile {
            rel: rel.to_string(),
            kind,
            raw,
            code,
            keep,
            in_test,
        }
    }

    /// Whether lexically non-test line `i` counts as test code (either
    /// the whole file is test-only or the line sits in a cfg(test)
    /// region).
    pub fn is_test_line(&self, i: usize) -> bool {
        self.kind == FileKind::TestOnly || self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Classifies a workspace-relative path into a [`FileKind`].
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let name = parts.last().copied().unwrap_or("");
    if parts.contains(&"tests") || parts.contains(&"benches") || name == "proptests.rs" {
        return FileKind::TestOnly;
    }
    if parts.contains(&"examples") || parts.contains(&"bin") || name == "main.rs" {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Produces the `(code, keep)` masked views of `text`. Both outputs
/// have exactly the same byte length as the input; masked bytes become
/// spaces, newlines and string/char delimiters survive in place.
pub fn mask_source(text: &str) -> (String, String) {
    let b = text.as_bytes();
    let n = b.len();
    let mut code = Vec::with_capacity(n);
    let mut keep = Vec::with_capacity(n);

    // Pushes one source byte into both views. `in_comment` masks both;
    // `in_string` masks only the code view.
    let push = |code: &mut Vec<u8>, keep: &mut Vec<u8>, byte: u8, comment: bool, string: bool| {
        let masked = if byte == b'\n' { b'\n' } else { b' ' };
        code.push(if comment || string { masked } else { byte });
        keep.push(if comment { masked } else { byte });
    };

    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < n && b[i] != b'\n' {
                push(&mut code, &mut keep, b[i], true, false);
                i += 1;
            }
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    push(&mut code, &mut keep, b[i], true, false);
                    push(&mut code, &mut keep, b[i + 1], true, false);
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    push(&mut code, &mut keep, b[i], true, false);
                    push(&mut code, &mut keep, b[i + 1], true, false);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push(&mut code, &mut keep, b[i], true, false);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw-byte) strings: r"...", r#"..."#, br#"..."#, ...
        if c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')) {
            let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            let at = if c == b'b' { i + 1 } else { i };
            let mut h = at + 1;
            while b.get(h) == Some(&b'#') {
                h += 1;
            }
            if !prev_ident && b.get(h) == Some(&b'"') {
                let hashes = h - (at + 1);
                // Prefix (r / br and the opening hashes) plus the quote.
                while i <= h {
                    push(&mut code, &mut keep, b[i], false, false);
                    i += 1;
                }
                // Contents until `"` followed by `hashes` hashes.
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == b'"'
                        && b[i + 1..].len() >= hashes
                        && b[i + 1..].iter().take(hashes).all(|&x| x == b'#')
                    {
                        for _ in 0..=hashes {
                            push(&mut code, &mut keep, b[i], false, false);
                            i += 1;
                        }
                        break;
                    }
                    push(&mut code, &mut keep, b[i], false, true);
                    i += 1;
                }
                continue;
            }
        }
        // Plain (and byte) strings with escapes.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            if c == b'b' {
                push(&mut code, &mut keep, b[i], false, false);
                i += 1;
            }
            push(&mut code, &mut keep, b[i], false, false); // opening quote
            i += 1;
            while i < n {
                if b[i] == b'\\' && i + 1 < n {
                    push(&mut code, &mut keep, b[i], false, true);
                    push(&mut code, &mut keep, b[i + 1], false, true);
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    push(&mut code, &mut keep, b[i], false, false); // closing quote
                    i += 1;
                    break;
                }
                push(&mut code, &mut keep, b[i], false, true);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: consume `'x'` / `'\n'` / `b'x'`
        // forms; a lone `'ident` is a lifetime and passes through.
        if c == b'\'' || (c == b'b' && b.get(i + 1) == Some(&b'\'')) {
            let q = if c == b'b' { i + 1 } else { i };
            let end = if b.get(q + 1) == Some(&b'\\') {
                // Escaped: find the closing quote.
                b[q + 2..]
                    .iter()
                    .position(|&x| x == b'\'')
                    .map(|p| q + 2 + p)
            } else if b.get(q + 2) == Some(&b'\'') && b.get(q + 1) != Some(&b'\'') {
                Some(q + 2)
            } else {
                None
            };
            if let Some(end) = end {
                while i <= end {
                    let delim = i == q || i == end;
                    push(&mut code, &mut keep, b[i], false, !delim);
                    i += 1;
                }
                continue;
            }
        }
        push(&mut code, &mut keep, c, false, false);
        i += 1;
    }

    // Masked regions are pure ASCII; unmasked bytes are copied verbatim
    // from a valid UTF-8 input, so both views are valid UTF-8.
    (
        String::from_utf8(code).unwrap_or_default(),
        String::from_utf8(keep).unwrap_or_default(),
    )
}

/// Marks the lines belonging to `#[cfg(test)]`-gated brace blocks.
///
/// Lexical rule: after a line carrying a `#[cfg(test…)]` attribute, the
/// next `{` opens a test region that ends when its brace closes; a `;`
/// seen first cancels (out-of-line `mod proptests;`, gated `use`, …).
fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    // Brace depths at which currently-open test regions started.
    let mut stack: Vec<i64> = Vec::new();
    for (i, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') && (line.contains("cfg(test") || line.contains("cfg(all(test"))
        {
            pending = true;
        }
        let mut test_here = !stack.is_empty();
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending {
                        stack.push(depth);
                        pending = false;
                    }
                    depth += 1;
                    test_here |= !stack.is_empty();
                }
                '}' => {
                    depth -= 1;
                    if stack.last().is_some_and(|&d| depth <= d) {
                        stack.pop();
                    }
                }
                ';' if pending && stack.is_empty() => pending = false,
                _ => {}
            }
        }
        out[i] = test_here;
    }
    out
}

/// Byte offsets of identifier-boundary occurrences of `needle` in
/// `haystack`: the bytes immediately before and after the match must
/// not be identifier characters (`[A-Za-z0-9_]`).
pub fn token_positions(haystack: &str, needle: &str) -> Vec<usize> {
    fn ident(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }
    let mut out = Vec::new();
    let hb = haystack.as_bytes();
    let mut from = 0;
    while let Some(p) = haystack[from..].find(needle) {
        let at = from + p;
        let end = at + needle.len();
        let ok_before = at == 0 || !ident(hb[at - 1]);
        let ok_after = end >= hb.len() || !ident(hb[end]);
        if ok_before && ok_after {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_string_contents() {
        let src =
            "let x = 1; // HashMap in a comment\nlet s = \"Instant inside\"; /* SystemTime */\n";
        let (code, keep) = mask_source(src);
        assert_eq!(code.len(), src.len());
        assert_eq!(keep.len(), src.len());
        assert!(!code.contains("HashMap"));
        assert!(!code.contains("Instant"));
        assert!(!code.contains("SystemTime"));
        assert!(!keep.contains("HashMap"), "comments masked in keep view");
        assert!(keep.contains("Instant inside"), "strings kept in keep view");
        assert!(code.contains("let x = 1;"));
        // Delimiters survive so offsets line up.
        assert!(code.contains('"'));
    }

    #[test]
    fn masking_handles_raw_strings_chars_and_lifetimes() {
        let src = r####"let a = r#"HashMap "quoted""#; let c = '"'; let l: &'static str = "x"; let e = '\n';"####;
        let (code, keep) = mask_source(src);
        assert!(!code.contains("HashMap"));
        assert!(keep.contains("HashMap"));
        assert!(code.contains("&'static str"), "lifetime untouched: {code}");
        // The `'"'` char literal's quote must not open a string: the
        // code after it survives masking.
        assert!(code.contains("let l"));
        assert!(
            code.ends_with("let e = '  ';"),
            "escaped char masked: {code}"
        );
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "a /* outer /* inner */ still comment */ b";
        let (code, _) = mask_source(src);
        assert!(!code.contains("inner"));
        assert!(!code.contains("still"));
        assert!(code.contains('a') && code.contains('b'));
    }

    #[test]
    fn cfg_test_regions_cover_mod_blocks_only() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::scan("x.rs", FileKind::Lib, src);
        assert!(!f.is_test_line(0));
        assert!(f.is_test_line(3), "inside cfg(test) mod");
        assert!(!f.is_test_line(5), "after the mod closes");
    }

    #[test]
    fn out_of_line_test_mod_does_not_open_a_region() {
        let src = "#[cfg(test)]\nmod proptests;\nfn live() { brace(); }\n";
        let f = SourceFile::scan("lib.rs", FileKind::Lib, src);
        assert!(!f.is_test_line(2), "`;` cancels the pending attribute");
    }

    #[test]
    fn token_positions_respect_identifier_boundaries() {
        assert_eq!(token_positions("unsafe_code unsafe", "unsafe"), vec![12]);
        assert_eq!(token_positions("MyInstant Instant", "Instant"), vec![10]);
        assert!(token_positions("xInstanty", "Instant").is_empty());
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/gf/src/kernel.rs"), FileKind::Lib);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/fig4.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::TestOnly);
        assert_eq!(classify("crates/net/src/proptests.rs"), FileKind::TestOnly);
        assert_eq!(
            classify("crates/bench/benches/gf_ops.rs"),
            FileKind::TestOnly
        );
    }
}
