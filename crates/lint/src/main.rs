//! `prlc-lint` binary: run the workspace invariant lints.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
prlc-lint: workspace invariant linter (determinism, unsafe-audit,
metric-key registry, RNG domain separation, panic hygiene,
RNG-domain registry, kernel-dispatch audit)

USAGE:
    prlc-lint [--root DIR] [--format text|json] [--allowlist FILE]

OPTIONS:
    --root DIR         workspace root (default: ascend from the current
                       directory to the first dir with Cargo.toml + crates/)
    --format FORMAT    `text` (default) or `json` (deterministic, sorted)
    --allowlist FILE   allowlist file (default: <root>/lint-allowlist.txt,
                       missing default file = empty allowlist)
    -h, --help         print this help
";

struct Args {
    root: Option<PathBuf>,
    format: Format,
    allowlist: Option<PathBuf>,
}

#[derive(PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        allowlist: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format must be text|json, got {other:?}")),
                };
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a value")?;
                args.allowlist = Some(PathBuf::from(v));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("prlc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match prlc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "prlc-lint: could not find a workspace root above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match prlc_lint::run(&root, args.allowlist.as_deref()) {
        Ok(report) => {
            match args.format {
                Format::Text => print!("{}", report.render_text()),
                Format::Json => print!("{}", report.render_json()),
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("prlc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
