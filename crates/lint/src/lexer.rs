//! A zero-dependency Rust lexer: real tokens with byte spans.
//!
//! This replaces the v1 masked-view text scanner. Every lint pass now
//! works on a token stream in which comments, string literals, char
//! literals and lifetimes are *distinct token kinds* rather than
//! blanked-out bytes, so a banned identifier inside a raw string can
//! never fire and a finding can never hide inside `r#"..."#` contents.
//!
//! The lexer handles the full literal surface the workspace uses:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * plain, byte, raw and raw-byte strings (`"…"`, `b"…"`, `r"…"`,
//!   `r#"…"#`, `br##"…"##` with any number of hashes);
//! * char and byte-char literals (`'x'`, `'\n'`, `b'\0'`) correctly
//!   disambiguated from lifetimes (`'static`) and loop labels;
//! * numeric literals with underscores, base prefixes and suffixes;
//! * maximal-munch compound operators (`+=`, `::`, `=>`, `<<=`, …).
//!
//! Whitespace is dropped; comments are kept (the unsafe-audit pass
//! reads `// SAFETY:` text, and the RNG-domain pass cross-checks tag
//! comments against decoded constants). Tokens never overlap and cover
//! the input in order, so `&text[tok.start..tok.end]` is always the
//! exact source spelling.

/// What a token is. String-like kinds carry their *unescaped* content
/// where a pass needs it (metric keys, domain tags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime or loop label (`'static`, `'outer`).
    Lifetime,
    /// Integer literal (`42`, `0x50524C_433A4641`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e-3`).
    Float,
    /// String literal of any flavour; `value` is the unescaped content.
    Str {
        /// Unescaped contents (raw strings verbatim, plain strings with
        /// `\n`-style escapes resolved).
        value: String,
        /// `r"…"` / `r#"…"#` flavours.
        raw: bool,
        /// `b"…"` / `br"…"` flavours.
        byte: bool,
    },
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `//`-to-end-of-line comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting resolved.
    BlockComment,
    /// Punctuation / operator, maximal-munch (`+=`, `::`, `.`, `^`).
    Punct,
    /// `(` `[` `{`.
    Open(Delim),
    /// `)` `]` `}`.
    Close(Delim),
}

/// Bracket flavours for [`TokenKind::Open`]/[`TokenKind::Close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

/// One lexed token: kind plus byte span and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The source spelling of the token.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Compound operators, longest first so maximal munch falls out of the
/// scan order.
const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens (whitespace dropped, comments kept).
///
/// The lexer is total: any byte sequence produces a token stream, with
/// unterminated literals running to end of input and genuinely
/// unexpected bytes emitted as single-byte [`TokenKind::Punct`] tokens.
/// Lints must never panic on weird-but-compiling source.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Bumps `line` for every newline in `[from, to)`.
    macro_rules! count_lines {
        ($from:expr, $to:expr) => {
            line += b[$from..$to].iter().filter(|&&c| c == b'\n').count()
        };
    }

    while i < n {
        let start = i;
        let start_line = line;
        let c = b[i];

        // Whitespace: skipped, lines counted.
        if c.is_ascii_whitespace() {
            while i < n && b[i].is_ascii_whitespace() {
                i += 1;
            }
            count_lines!(start, i);
            continue;
        }

        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::LineComment,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Block comment (nesting).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            count_lines!(start, i);
            out.push(Token {
                kind: TokenKind::BlockComment,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Raw / raw-byte strings: r"…", r#"…"#, br##"…"##.
        if c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')) {
            let at = if c == b'b' { i + 1 } else { i };
            let mut h = at + 1;
            while b.get(h) == Some(&b'#') {
                h += 1;
            }
            if b.get(h) == Some(&b'"') {
                let hashes = h - (at + 1);
                let content_start = h + 1;
                let mut j = content_start;
                let content_end = loop {
                    if j >= n {
                        break n; // unterminated: runs to EOF
                    }
                    if b[j] == b'"'
                        && b[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&x| x == b'#')
                            .count()
                            == hashes
                    {
                        break j;
                    }
                    j += 1;
                };
                i = (content_end + 1 + hashes).min(n);
                count_lines!(start, i);
                out.push(Token {
                    kind: TokenKind::Str {
                        value: src[content_start..content_end].to_string(),
                        raw: true,
                        byte: c == b'b',
                    },
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            // `r` / `br` not followed by a string: fall through (an
            // identifier such as `rng`, or the keyword escape `r#ident`
            // which the ident arm picks up below).
            if c == b'r'
                && b.get(i + 1) == Some(&b'#')
                && b.get(i + 2).copied().is_some_and(is_ident_start)
            {
                // Raw identifier r#type: consume prefix then the ident.
                i += 2;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
        }

        // Plain / byte strings with escapes.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            let byte = c == b'b';
            let mut j = if byte { i + 2 } else { i + 1 };
            let mut value = String::new();
            while j < n && b[j] != b'"' {
                if b[j] == b'\\' && j + 1 < n {
                    match b[j + 1] {
                        b'n' => value.push('\n'),
                        b't' => value.push('\t'),
                        b'r' => value.push('\r'),
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'\'' => value.push('\''),
                        b'0' => value.push('\0'),
                        // \xNN, \u{…}: keep the raw spelling; no lint
                        // compares escaped keys byte-for-byte.
                        other => {
                            value.push('\\');
                            value.push(other as char);
                        }
                    }
                    j += 2;
                } else {
                    // Copy the full UTF-8 scalar starting at j.
                    let ch_len = utf8_len(b[j]);
                    value.push_str(&src[j..(j + ch_len).min(n)]);
                    j += ch_len;
                }
            }
            i = (j + 1).min(n);
            count_lines!(start, i);
            out.push(Token {
                kind: TokenKind::Str {
                    value,
                    raw: false,
                    byte,
                },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Char / byte-char literal vs lifetime. A `'` opens a char
        // literal when it closes within a couple of scalars (`'x'`,
        // `'\n'`, `'\u{1F600}'`); otherwise it is a lifetime/label.
        if c == b'\'' || (c == b'b' && b.get(i + 1) == Some(&b'\'')) {
            let q = if c == b'b' { i + 1 } else { i };
            if let Some(end) = char_literal_end(b, q) {
                i = end + 1;
                out.push(Token {
                    kind: TokenKind::Char,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            if c == b'\'' {
                // Lifetime or label: `'` + ident.
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
        }

        // Identifier / keyword (also catches the `b` that wasn't a
        // byte-string prefix).
        if is_ident_start(c) {
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let mut is_float = false;
            i += 1;
            if c == b'0' && i < n && matches!(b[i], b'x' | b'o' | b'b') {
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not `1..2` range syntax and not
                // `1.method()` calls.
                if i < n
                    && b[i] == b'.'
                    && b.get(i + 1).copied().is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Exponent.
                if i < n && matches!(b[i], b'e' | b'E') {
                    let mut j = i + 1;
                    if j < n && matches!(b[j], b'+' | b'-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix (`u64`, `f32`, `usize`).
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
            out.push(Token {
                kind: if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Delimiters.
        let delim = match c {
            b'(' => Some((TokenKind::Open(Delim::Paren), 1)),
            b')' => Some((TokenKind::Close(Delim::Paren), 1)),
            b'[' => Some((TokenKind::Open(Delim::Bracket), 1)),
            b']' => Some((TokenKind::Close(Delim::Bracket), 1)),
            b'{' => Some((TokenKind::Open(Delim::Brace), 1)),
            b'}' => Some((TokenKind::Close(Delim::Brace), 1)),
            _ => None,
        };
        if let Some((kind, len)) = delim {
            i += len;
            out.push(Token {
                kind,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Compound operators, longest first.
        let rest = &src[i..];
        if let Some(op) = COMPOUND_OPS.iter().find(|op| rest.starts_with(**op)) {
            i += op.len();
            out.push(Token {
                kind: TokenKind::Punct,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Single-byte punctuation (or any unexpected byte).
        i += utf8_len(c).max(1);
        out.push(Token {
            kind: TokenKind::Punct,
            start,
            end: i.min(n),
            line: start_line,
        });
    }

    out
}

/// Length in bytes of the UTF-8 scalar starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// If the quote at `b[q]` opens a char literal, the index of its
/// closing quote; `None` when it is a lifetime.
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    let n = b.len();
    if q + 1 >= n {
        return None;
    }
    if b[q + 1] == b'\\' {
        // Escaped char: scan to the closing quote (handles \u{…}).
        let mut j = q + 2;
        while j < n && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return (j < n && b[j] == b'\'').then_some(j);
    }
    if b[q + 1] == b'\'' {
        return None; // `''` is not a char literal
    }
    // Unescaped: exactly one scalar then a quote. `'a'` is a char;
    // `'a` followed by anything else is a lifetime.
    let ch_len = utf8_len(b[q + 1]);
    let close = q + 1 + ch_len;
    (b.get(close) == Some(&b'\'')).then_some(close)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_ops_and_numbers() {
        let toks = texts("let x += 0x50524C_433A4641; a::b -> c");
        assert_eq!(
            toks,
            [
                "let",
                "x",
                "+=",
                "0x50524C_433A4641",
                ";",
                "a",
                "::",
                "b",
                "->",
                "c"
            ]
        );
        let k = kinds("0xFFu64 1_000 1.5 2e-3 1..2");
        assert_eq!(
            k,
            [
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Punct, // ..
                TokenKind::Int,
            ]
        );
    }

    #[test]
    fn strings_do_not_produce_ident_tokens() {
        let src = r#"let s = "HashMap inside"; use std::collections::BTreeMap;"#;
        let toks = lex(src);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text(src) != "HashMap"));
        let strs: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str { value, .. } => Some(value.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["HashMap inside"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let a = r#"quote " inside"#; let b = br##"x"# still"##;"####;
        let toks = lex(src);
        let strs: Vec<(String, bool, bool)> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str { value, raw, byte } => Some((value.clone(), *raw, *byte)),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            [
                ("quote \" inside".to_string(), true, false),
                ("x\"# still".to_string(), true, true),
            ]
        );
        // Code after the raw strings still lexes.
        assert!(texts(src).contains(&"b".to_string()));
    }

    #[test]
    fn raw_string_cannot_fake_code() {
        // v1 regression: contents of r#"…"# must never surface as
        // identifier tokens.
        let src = r###"let x = r#".unwrap() unsafe HashMap thread_rng"#;"###;
        let idents: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, ["let", "x"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = r#"let c = '"'; let l: &'static str = "x"; let e = '\n'; 'outer: loop {}"#;
        let toks = lex(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, ["'\"'", r"'\n'"]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, ["'static", "'outer"]);
        // The `'"'` char literal's quote must not have opened a string.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "l"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r#"let a = b"bytes"; let c = b'\0'; let r = br"raw";"#;
        let toks = lex(src);
        assert!(toks.iter().any(|t| matches!(
            &t.kind,
            TokenKind::Str { byte: true, raw: false, value } if value == "bytes"
        )));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text(src) == r"b'\0'"));
        assert!(toks.iter().any(|t| matches!(
            &t.kind,
            TokenKind::Str { byte: true, raw: true, value } if value == "raw"
        )));
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "a\n/* outer /* inner */ still */\nb // trailing\nc";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].line, 2);
        let b_tok = toks.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!(b_tok.line, 3);
        let c_tok = toks.iter().find(|t| t.text(src) == "c").unwrap();
        assert_eq!(c_tok.line, 4);
        assert!(toks.iter().any(|t| t.kind == TokenKind::LineComment));
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 1; rng.gen();";
        let toks = texts(src);
        assert!(toks.contains(&"r#type".to_string()));
        assert!(toks.contains(&"rng".to_string()));
    }

    #[test]
    fn escaped_string_values_unescape() {
        let src = r#"let s = "a\"b\n";"#;
        let toks = lex(src);
        let val = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Str { value, .. } => Some(value.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(val, "a\"b\n");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"open", "let r = r#\"open", "/* open", "let c = '"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn spans_cover_source_in_order() {
        let src = "fn f() -> u8 { 'a' }";
        let toks = lex(src);
        let mut last = 0;
        for t in &toks {
            assert!(t.start >= last, "overlap at {t:?}");
            assert!(t.end > t.start);
            last = t.end;
        }
    }
}
