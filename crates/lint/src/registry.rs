//! The canonical registries: parsing `docs/METRICS.md` (metric keys,
//! L3) and `docs/RNG_DOMAINS.md` (RNG domain tags, L6), plus the key
//! naming scheme shared by the static and runtime coverage checks.

/// Metric kinds, matching the three `prlc-obs` metric macros plus the
/// two trace macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `counter!` keys.
    Counter,
    /// `histogram!` keys.
    Histogram,
    /// `timer!` keys.
    Timer,
    /// `trace_span!` names.
    Span,
    /// `trace_instant!` names (registry type `instant`; the identifier
    /// avoids the wall-clock type name banned by L1).
    Point,
}

impl MetricKind {
    /// The lowercase name used in the registry's `type` column.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Timer => "timer",
            MetricKind::Span => "span",
            MetricKind::Point => "instant",
        }
    }

    /// The macro that must emit keys of this kind.
    pub fn macro_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Timer => "timer",
            MetricKind::Span => "trace_span",
            MetricKind::Point => "trace_instant",
        }
    }

    fn from_name(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "histogram" => Some(MetricKind::Histogram),
            "timer" => Some(MetricKind::Timer),
            "span" => Some(MetricKind::Span),
            "instant" => Some(MetricKind::Point),
            _ => None,
        }
    }
}

/// One documented metric key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The key, e.g. `net.collect.query_hops`.
    pub key: String,
    /// Which macro must emit it.
    pub kind: MetricKind,
    /// 1-based line in the registry document.
    pub line: usize,
}

/// A problem found while parsing the registry document itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryProblem {
    /// 1-based line in the registry document.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The parsed registry plus any document-level problems.
#[derive(Debug, Default)]
pub struct Registry {
    /// Documented keys in document order.
    pub entries: Vec<RegistryEntry>,
    /// Duplicate keys, bad names, unknown types.
    pub problems: Vec<RegistryProblem>,
}

/// The layer prefixes a key may start with (`layer.op[.unit][.backend]`).
pub const KNOWN_LAYERS: &[&str] = &["gf", "linalg", "core", "net", "sim", "cli", "obs"];

/// Checks a key against the `layer.op[.unit][.backend]` naming scheme:
/// 2–4 dot-separated segments of `[a-z][a-z0-9_]*`, first segment a
/// known layer. Returns a human-readable complaint on violation.
pub fn check_key_name(key: &str) -> Result<(), String> {
    let segments: Vec<&str> = key.split('.').collect();
    if !(2..=4).contains(&segments.len()) {
        return Err(format!(
            "key {key:?} has {} segments; the scheme layer.op[.unit][.backend] allows 2-4",
            segments.len()
        ));
    }
    for seg in &segments {
        let mut chars = seg.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
        let tail_ok = chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !head_ok || !tail_ok {
            return Err(format!(
                "key {key:?} segment {seg:?} must match [a-z][a-z0-9_]*"
            ));
        }
    }
    if !KNOWN_LAYERS.contains(&segments[0]) {
        return Err(format!(
            "key {key:?} layer {:?} is not one of {KNOWN_LAYERS:?}",
            segments[0]
        ));
    }
    Ok(())
}

/// Parses the registry tables out of METRICS.md text. A registry row is
/// a markdown table row whose first cell is a backticked key and whose
/// second cell is the metric type:
///
/// ```text
/// | `net.collect.query_hops` | histogram | hops the collector's queries travelled |
/// ```
///
/// Everything else (prose, headers, separator rows) is ignored.
pub fn parse_metrics_md(text: &str) -> Registry {
    let mut reg = Registry::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 {
            continue;
        }
        let Some(key) = cells[0].strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue; // header or separator row
        };
        if let Err(msg) = check_key_name(key) {
            reg.problems.push(RegistryProblem {
                line: line_no,
                message: msg,
            });
        }
        let Some(kind) = MetricKind::from_name(cells[1]) else {
            reg.problems.push(RegistryProblem {
                line: line_no,
                message: format!(
                    "key `{key}` has unknown type {:?} \
                     (expected counter|histogram|timer|span|instant)",
                    cells[1]
                ),
            });
            continue;
        };
        if let Some(first) = reg.entries.iter().find(|e| e.key == key) {
            reg.problems.push(RegistryProblem {
                line: line_no,
                message: format!(
                    "duplicate registry entry for `{key}` (first documented on line {})",
                    first.line
                ),
            });
            continue;
        }
        reg.entries.push(RegistryEntry {
            key: key.to_string(),
            kind,
            line: line_no,
        });
    }
    reg
}

/// One documented RNG domain tag (a `docs/RNG_DOMAINS.md` row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainEntry {
    /// Decoded ASCII tag, e.g. `PRLC:FA`.
    pub tag: String,
    /// Normalized hex constant (uppercase, no `0x`/`_`/leading zeros).
    pub constant: String,
    /// The `mix_*` helper that owns the tag.
    pub function: String,
    /// Workspace-relative path of the helper.
    pub file: String,
    /// 1-based line in the registry document.
    pub line: usize,
}

/// The parsed domain registry plus document-level problems.
#[derive(Debug, Default)]
pub struct DomainRegistry {
    /// Documented tags in document order.
    pub entries: Vec<DomainEntry>,
    /// Duplicates, malformed constants, tag/constant mismatches.
    pub problems: Vec<RegistryProblem>,
}

/// Parses the domain table out of RNG_DOMAINS.md text. A registry row
/// is a markdown table row of five cells, the first four backticked:
///
/// ```text
/// | `PRLC:FA` | `0x50524C_433A4641` | `mix_fault_seed` | `crates/net/src/fault.rs` | fault streams |
/// ```
///
/// The constant cell must itself decode (big-endian ASCII) to the tag
/// cell — a row that lies about its own constant is a problem.
pub fn parse_rng_domains_md(text: &str) -> DomainRegistry {
    let mut reg = DomainRegistry::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 4 {
            continue;
        }
        let ticked = |c: &str| -> Option<String> {
            c.strip_prefix('`')
                .and_then(|c| c.strip_suffix('`'))
                .map(str::to_string)
        };
        let (Some(tag), Some(constant), Some(function), Some(file)) = (
            ticked(cells[0]),
            ticked(cells[1]),
            ticked(cells[2]),
            ticked(cells[3]),
        ) else {
            continue; // header, separator, or prose row
        };
        let Some(norm) = crate::lints::normalize_hex(&constant) else {
            reg.problems.push(RegistryProblem {
                line: line_no,
                message: format!(
                    "domain row `{tag}` has malformed constant {constant:?} (expected 0x-hex)"
                ),
            });
            continue;
        };
        match crate::lints::decode_ascii_tag(&constant, 2) {
            Some(decoded) if decoded == tag => {}
            decoded => {
                reg.problems.push(RegistryProblem {
                    line: line_no,
                    message: format!(
                        "domain row tag `{tag}` does not match its constant {constant} \
                         (which decodes to {decoded:?})"
                    ),
                });
                continue;
            }
        }
        if let Some(first) = reg.entries.iter().find(|e| e.tag == tag) {
            reg.problems.push(RegistryProblem {
                line: line_no,
                message: format!(
                    "duplicate domain tag `{tag}` (first documented on line {})",
                    first.line
                ),
            });
            continue;
        }
        reg.entries.push(DomainEntry {
            tag,
            constant: norm,
            function,
            file,
            line: line_no,
        });
    }
    reg
}

/// Matches a `*`-wildcard key pattern (each `*` stands for one or more
/// key characters) against a concrete key.
pub fn pattern_matches(pattern: &str, key: &str) -> bool {
    fn rec(p: &[u8], k: &[u8]) -> bool {
        match p.first() {
            None => k.is_empty(),
            Some(b'*') => (1..=k.len()).any(|take| rec(&p[1..], &k[take..])),
            Some(&c) => k.first() == Some(&c) && rec(&p[1..], &k[1..]),
        }
    }
    rec(pattern.as_bytes(), key.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# registry

Some prose with a stray `not.a.row` mention.

| key | type | description |
|-----|------|-------------|
| `net.collect.blocks` | counter | blocks gathered |
| `gf.axpy.bytes.simd` | counter | byte volume |
| `net.collect.query_hops` | histogram | hop cost |
| `sim.run` | timer | wall clock |
";

    #[test]
    fn parses_rows_and_ignores_prose() {
        let reg = parse_metrics_md(DOC);
        assert!(reg.problems.is_empty(), "{:?}", reg.problems);
        let keys: Vec<&str> = reg.entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "net.collect.blocks",
                "gf.axpy.bytes.simd",
                "net.collect.query_hops",
                "sim.run"
            ]
        );
        assert_eq!(reg.entries[2].kind, MetricKind::Histogram);
        assert_eq!(reg.entries[3].kind, MetricKind::Timer);
    }

    #[test]
    fn flags_duplicates_bad_names_and_bad_types() {
        let doc = "\
| `net.collect.blocks` | counter | a |
| `net.collect.blocks` | counter | again |
| `Bad.Key` | counter | capitals |
| `net.x` | gauge | no such type |
| `unknownlayer.op` | counter | layer |
| `net.a.b.c.d` | counter | five segments |
";
        let reg = parse_metrics_md(doc);
        // Badly-named keys stay in `entries` (they are documented and
        // matchable) but are flagged; the duplicate and the unknown
        // `gauge` type are dropped.
        assert_eq!(reg.entries.len(), 4, "{:?}", reg.entries);
        assert_eq!(reg.problems.len(), 5, "{:?}", reg.problems);
        assert!(reg.problems[0].message.contains("duplicate"));
    }

    #[test]
    fn parses_span_and_instant_rows() {
        let reg = parse_metrics_md(
            "| `net.collect.session` | span | a collect session |\n\
             | `linalg.rref.pivot` | instant | one pivot landing |\n",
        );
        assert!(reg.problems.is_empty(), "{:?}", reg.problems);
        assert_eq!(reg.entries[0].kind, MetricKind::Span);
        assert_eq!(reg.entries[1].kind, MetricKind::Point);
        assert_eq!(MetricKind::Span.macro_name(), "trace_span");
        assert_eq!(MetricKind::Point.macro_name(), "trace_instant");
    }

    #[test]
    fn key_name_scheme() {
        assert!(check_key_name("net.retries").is_ok());
        assert!(check_key_name("gf.axpy.bytes.scalar").is_ok());
        assert!(check_key_name("core.decode.blocks_at_level_completion").is_ok());
        assert!(check_key_name("net").is_err());
        assert!(check_key_name("net.Retries").is_err());
        assert!(check_key_name("http.requests").is_err());
        assert!(check_key_name("net..x").is_err());
    }

    #[test]
    fn parses_domain_rows_and_flags_lies() {
        let doc = "\
# domains

| tag | constant | function | file | purpose |
|-----|----------|----------|------|---------|
| `PRLC:FA` | `0x50524C_433A4641` | `mix_fault_seed` | `crates/net/src/fault.rs` | faults |
| `LOSS` | `0x4C4F_5353` | `mix_loss_seed` | `crates/sim/src/lossy.rs` | loss |
| `BAD` | `0x4C4F_5353` | `mix_other` | `crates/x.rs` | constant decodes to LOSS |
| `LOSS` | `0x4C4F_5353` | `mix_dup` | `crates/y.rs` | duplicate tag |
| `OOPS` | `not-hex` | `mix_z` | `crates/z.rs` | malformed |
";
        let reg = parse_rng_domains_md(doc);
        let tags: Vec<&str> = reg.entries.iter().map(|e| e.tag.as_str()).collect();
        assert_eq!(tags, ["PRLC:FA", "LOSS"], "{:?}", reg.entries);
        assert_eq!(reg.entries[0].constant, "50524C433A4641");
        assert_eq!(reg.entries[1].function, "mix_loss_seed");
        assert_eq!(reg.entries[1].file, "crates/sim/src/lossy.rs");
        assert_eq!(reg.problems.len(), 3, "{:?}", reg.problems);
        assert!(reg.problems[0].message.contains("does not match"));
        assert!(reg.problems[1].message.contains("duplicate domain tag"));
        assert!(reg.problems[2].message.contains("malformed constant"));
    }

    #[test]
    fn wildcard_patterns() {
        assert!(pattern_matches("gf.*.bytes.simd", "gf.axpy.bytes.simd"));
        assert!(pattern_matches("gf.*.bytes.simd", "gf.scale.bytes.simd"));
        assert!(!pattern_matches("gf.*.bytes.simd", "gf.axpy.bytes.table"));
        assert!(!pattern_matches("gf.*.bytes", "gf.axpy.bytes.simd"));
        assert!(pattern_matches("a.b", "a.b"));
        assert!(!pattern_matches("a.*", "a."));
    }
}
