//! The seven workspace invariant lints (plus the allowlist meta-lint).
//!
//! Each pass walks the [`SourceModel`] token trees and appends
//! [`Finding`]s. What each lint enforces — and why the invariant
//! matters to the PRLC reproduction — is documented on the pass itself
//! and summarised in DESIGN.md §"Static analysis & invariant lints".

use crate::lexer::{Delim, TokenKind};
use crate::registry::{self, DomainRegistry, MetricKind, Registry};
use crate::tree::{FileKind, SourceModel};

/// Lint identifiers. Ordering is the reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Stale or malformed allowlist entries.
    Allowlist,
    /// L1: no nondeterministic containers, clocks or RNG sources.
    Determinism,
    /// L2: `unsafe` requires `// SAFETY:`; non-GF crates forbid unsafe.
    UnsafeAudit,
    /// L3: metric keys match the `docs/METRICS.md` registry.
    MetricRegistry,
    /// L4: seeded RNG in `prlc-net` goes through domain-separation mixes.
    RngDomain,
    /// L5: no `unwrap()`/`expect()` in library code.
    PanicHygiene,
    /// L6: `mix_*` domain tags are unique and match `docs/RNG_DOMAINS.md`.
    RngRegistry,
    /// L7: no scalar GF arithmetic in hot-crate loops bypassing the
    /// `GfKernel` slice layer.
    KernelDispatch,
}

impl Lint {
    /// Stable identifier used in reports and allowlist entries.
    pub fn id(self) -> &'static str {
        match self {
            Lint::Allowlist => "L0-allowlist",
            Lint::Determinism => "L1-determinism",
            Lint::UnsafeAudit => "L2-unsafe-audit",
            Lint::MetricRegistry => "L3-metric-registry",
            Lint::RngDomain => "L4-rng-domain",
            Lint::PanicHygiene => "L5-panic-hygiene",
            Lint::RngRegistry => "L6-rng-registry",
            Lint::KernelDispatch => "L7-kernel-dispatch",
        }
    }

    /// Resolves `L5` or `L5-panic-hygiene` style ids.
    pub fn from_id(s: &str) -> Option<Lint> {
        let all = [
            Lint::Allowlist,
            Lint::Determinism,
            Lint::UnsafeAudit,
            Lint::MetricRegistry,
            Lint::RngDomain,
            Lint::PanicHygiene,
            Lint::RngRegistry,
            Lint::KernelDispatch,
        ];
        all.into_iter()
            .find(|l| l.id() == s || l.id().split('-').next() == Some(s))
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// The offending token / key / entry (allowlist match target).
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    fn new(file: &str, line: usize, lint: Lint, token: &str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            token: token.to_string(),
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// L1: determinism
// ---------------------------------------------------------------------------

/// Banned identifiers and why. `HashMap`/`HashSet` iterate in
/// randomized order; the clock and ambient RNG break
/// bit-reproducibility of snapshots and simulated persistence under a
/// pinned seed.
const L1_BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet or a sorted Vec",
    ),
    (
        "SystemTime",
        "wall clock breaks snapshot determinism; wall-clock reads are confined to the obs timer block and CLI",
    ),
    (
        "Instant",
        "wall clock breaks snapshot determinism; wall-clock reads are confined to the obs timer block and CLI",
    ),
    (
        "thread_rng",
        "ambient RNG is unseeded; derive a seeded StdRng through a domain-separation helper",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG is irreproducible; derive the seed from the run's pinned seed",
    ),
];

/// L1: scan non-test identifier tokens for the banned names, plus
/// `rand::random` as the token sequence `rand` `::` `random`. Comments
/// and string literals are distinct token kinds and can never fire.
pub fn l1_determinism(files: &[SourceModel], out: &mut Vec<Finding>) {
    for f in files {
        if f.kind == FileKind::TestOnly {
            continue;
        }
        for si in 0..f.sig_len() {
            let t = f.tok(si);
            if t.kind != TokenKind::Ident || f.in_test(t.start) {
                continue;
            }
            let name = f.text_of(si);
            if let Some(&(token, why)) = L1_BANNED.iter().find(|&&(n, _)| n == name) {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::Determinism,
                    token,
                    format!("use of `{token}`: {why}"),
                ));
            }
            if name == "random" && si >= 2 && f.is_punct(si - 1, "::") && f.is_ident(si - 2, "rand")
            {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::Determinism,
                    "rand::random",
                    "use of `rand::random`: ambient RNG is unseeded; derive a seeded StdRng \
                     through a domain-separation helper"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L2: unsafe audit
// ---------------------------------------------------------------------------

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit and still count as adjacent (attributes like
/// `#[target_feature(..)]` may intervene).
const SAFETY_WINDOW: usize = 3;

/// L2a: every `unsafe` keyword needs a `SAFETY:` comment within
/// [`SAFETY_WINDOW`] lines above (or on the same line). Applies to test
/// code too — an unsound test is still unsound.
pub fn l2_unsafe_comments(files: &[SourceModel], out: &mut Vec<Finding>) {
    for f in files {
        let comment_lines: Vec<usize> = f
            .line_comments()
            .filter(|(_, text)| text.contains("SAFETY:"))
            .map(|(line, _)| line)
            .collect();
        for si in 0..f.sig_len() {
            let t = f.tok(si);
            if t.kind != TokenKind::Ident || f.text_of(si) != "unsafe" {
                continue;
            }
            let lo = t.line.saturating_sub(SAFETY_WINDOW);
            let documented = comment_lines.iter().any(|&l| l >= lo && l <= t.line);
            if !documented {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::UnsafeAudit,
                    "unsafe",
                    "`unsafe` without an adjacent `// SAFETY:` comment (within 3 lines above)"
                        .to_string(),
                ));
            }
        }
    }
}

/// L2b: every crate root except `prlc-gf` (which holds the audited
/// kernel unsafe) must declare `#![forbid(unsafe_code)]` — detected as
/// the token sequence `#` `!` `[` … `forbid` `(` `unsafe_code` … `]`.
pub fn l2_forbid_unsafe(roots: &[&SourceModel], out: &mut Vec<Finding>) {
    for f in roots {
        if f.rel.starts_with("crates/gf/") {
            continue;
        }
        let mut found = false;
        for si in 0..f.sig_len() {
            if f.is_punct(si, "#")
                && f.is_punct(si + 1, "!")
                && f.is_open(si + 2, Delim::Bracket)
                && f.is_ident(si + 3, "forbid")
                && f.is_open(si + 4, Delim::Paren)
                && f.is_ident(si + 5, "unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Finding::new(
                &f.rel,
                1,
                Lint::UnsafeAudit,
                "forbid_unsafe_code",
                "crate root must declare #![forbid(unsafe_code)] (only prlc-gf may hold unsafe)"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L3: metric-key registry
// ---------------------------------------------------------------------------

/// A metric-key use extracted from a macro call site. `pattern` may
/// contain `*` where a macro argument (`$op`-style placeholder) stood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyUse {
    /// Workspace-relative path of the call site.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which macro was called.
    pub kind: MetricKind,
    /// The key, with `*` wildcards for macro placeholders.
    pub pattern: String,
}

const METRIC_MACROS: &[(&str, MetricKind)] = &[
    ("counter", MetricKind::Counter),
    ("histogram", MetricKind::Histogram),
    ("timer", MetricKind::Timer),
    ("trace_span", MetricKind::Span),
    ("trace_instant", MetricKind::Point),
];

/// Extracts every metric-macro key use from non-test code. A use is
/// the token sequence `<macro-ident>` `!` `(`; macro *definitions*
/// (`macro_rules! counter { … }`) open with a brace and never match,
/// and multi-line call arguments need no special casing — the token
/// stream does not know about lines.
pub fn extract_key_uses(files: &[SourceModel]) -> Vec<KeyUse> {
    let mut out = Vec::new();
    for f in files {
        if f.kind == FileKind::TestOnly {
            continue;
        }
        for si in 0..f.sig_len() {
            let Some(name) = f.ident_at(si) else { continue };
            let Some(&(_, kind)) = METRIC_MACROS.iter().find(|&&(m, _)| m == name) else {
                continue;
            };
            if !(f.is_punct(si + 1, "!") && f.is_open(si + 2, Delim::Paren)) {
                continue;
            }
            if f.in_test(f.tok(si).start) {
                continue;
            }
            let Some(close) = f.close_of(si + 2) else {
                continue;
            };
            if let Some(pattern) = key_argument(f, si + 3, close) {
                out.push(KeyUse {
                    file: f.rel.clone(),
                    line: f.tok(si).line,
                    kind,
                    pattern,
                });
            }
        }
    }
    out
}

/// Builds a key pattern from the macro argument tokens in significant
/// positions `[from, to)`: string literals concatenate (handles
/// `concat!("a.", $op, ".b")`), `$placeholder`s become `*` wildcards,
/// other identifiers (`concat`) are skipped. Only the *first* top-level
/// argument is read — `trace_span!`/`trace_instant!` take ticks and
/// annotations after the name, which must not concatenate into the key
/// (commas inside a nested `concat!(...)` group still join).
fn key_argument(f: &SourceModel, from: usize, to: usize) -> Option<String> {
    let mut key = String::new();
    let mut saw_part = false;
    let mut depth = 0usize;
    let mut si = from;
    while si < to {
        match &f.tok(si).kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.saturating_sub(1),
            TokenKind::Punct if depth == 0 && f.text_of(si) == "," => break,
            TokenKind::Punct if f.text_of(si) == "$" => {
                key.push('*');
                saw_part = true;
                if f.ident_at(si + 1).is_some() {
                    si += 1; // skip the placeholder name
                }
            }
            TokenKind::Str { value, .. } => {
                key.push_str(value);
                saw_part = true;
            }
            _ => {}
        }
        si += 1;
    }
    saw_part.then(|| {
        // Collapse adjacent wildcards introduced by split placeholders.
        let mut collapsed = String::with_capacity(key.len());
        for c in key.chars() {
            if c == '*' && collapsed.ends_with('*') {
                continue;
            }
            collapsed.push(c);
        }
        collapsed
    })
}

/// L3: cross-check extracted key uses against the registry — every use
/// documented, no dead documented keys, types agree, registry itself
/// well-formed.
pub fn l3_metric_registry(
    files: &[SourceModel],
    metrics_md_rel: &str,
    registry: &Registry,
    out: &mut Vec<Finding>,
) {
    for p in &registry.problems {
        out.push(Finding::new(
            metrics_md_rel,
            p.line,
            Lint::MetricRegistry,
            "registry",
            p.message.clone(),
        ));
    }

    let uses = extract_key_uses(files);
    let mut emitted = vec![false; registry.entries.len()];
    for u in &uses {
        let mut matched_any = false;
        let mut kind_clash: Option<&registry::RegistryEntry> = None;
        for (idx, e) in registry.entries.iter().enumerate() {
            if registry::pattern_matches(&u.pattern, &e.key) {
                if e.kind == u.kind {
                    emitted[idx] = true;
                    matched_any = true;
                } else {
                    kind_clash = Some(e);
                }
            }
        }
        if !matched_any {
            let message = match kind_clash {
                Some(e) => format!(
                    "metric key `{}` is documented as a {} (docs/METRICS.md line {}) but emitted via {}!",
                    u.pattern,
                    e.kind.name(),
                    e.line,
                    u.kind.macro_name()
                ),
                None => format!(
                    "undocumented metric key `{}`: add it to docs/METRICS.md (scheme layer.op[.unit][.backend])",
                    u.pattern
                ),
            };
            out.push(Finding::new(
                &u.file,
                u.line,
                Lint::MetricRegistry,
                &u.pattern,
                message,
            ));
        }
        if !u.pattern.contains('*') {
            if let Err(msg) = registry::check_key_name(&u.pattern) {
                out.push(Finding::new(
                    &u.file,
                    u.line,
                    Lint::MetricRegistry,
                    &u.pattern,
                    msg,
                ));
            }
        }
    }
    for (idx, e) in registry.entries.iter().enumerate() {
        if !emitted[idx] {
            out.push(Finding::new(
                metrics_md_rel,
                e.line,
                Lint::MetricRegistry,
                &e.key,
                format!(
                    "dead registry key `{}`: documented but no {}! call site emits it",
                    e.key,
                    e.kind.macro_name()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L4: RNG domain separation in prlc-net
// ---------------------------------------------------------------------------

/// L4: seeded RNG construction in non-test `prlc-net` code must pass
/// its seed through a `mix_*` domain-separation helper (see
/// `fault.rs::mix_fault_seed`) so fault, location and protocol streams
/// can never alias. The token tree makes this stricter than v1: the
/// `mix_*` call must appear *inside the seed argument*, not merely on
/// the same line.
pub fn l4_rng_domain(files: &[SourceModel], out: &mut Vec<Finding>) {
    for f in files {
        if !f.rel.starts_with("crates/net/src/") || f.kind == FileKind::TestOnly {
            continue;
        }
        for si in 0..f.sig_len() {
            let Some(name) = f.ident_at(si) else { continue };
            if name != "seed_from_u64" && name != "from_seed" {
                continue;
            }
            let t = f.tok(si);
            if f.in_test(t.start) {
                continue;
            }
            let mixed = f.is_open(si + 1, Delim::Paren)
                && f.close_of(si + 1).is_some_and(|close| {
                    (si + 2..close).any(|j| f.ident_at(j).is_some_and(|id| id.starts_with("mix_")))
                });
            if !mixed {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::RngDomain,
                    name,
                    format!(
                        "`{name}` in prlc-net must derive its seed through a `mix_*` \
                         domain-separation helper (see fault.rs) so RNG streams cannot alias"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L5: panic hygiene
// ---------------------------------------------------------------------------

/// Crates whose code is front-end/harness rather than library: panics
/// on bad input are their error-reporting mechanism.
const L5_EXEMPT_PREFIXES: &[&str] = &["crates/cli/", "crates/bench/"];

/// L5: no `.unwrap()`/`.expect(` in library (non-test, non-CLI) code —
/// the token sequence `.` `unwrap`/`expect` `(`. Reviewed invariant
/// panics go in the allowlist with a justification.
pub fn l5_panic_hygiene(files: &[SourceModel], out: &mut Vec<Finding>) {
    for f in files {
        if f.kind != FileKind::Lib || L5_EXEMPT_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for si in 1..f.sig_len() {
            let Some(name) = f.ident_at(si) else { continue };
            if name != "unwrap" && name != "expect" {
                continue;
            }
            if !(f.is_punct(si - 1, ".") && f.is_open(si + 1, Delim::Paren)) {
                continue;
            }
            let t = f.tok(si);
            if f.in_test(t.start) {
                continue;
            }
            out.push(Finding::new(
                &f.rel,
                t.line,
                Lint::PanicHygiene,
                name,
                format!(
                    "`{name}` in library code: propagate the Result/Option, or add an \
                     allowlist entry with a justification if the panic is a reviewed \
                     invariant"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L6: RNG-domain registry
// ---------------------------------------------------------------------------

/// One domain tag collected from a `mix_*` helper body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainUse {
    /// Workspace-relative path of the helper.
    pub file: String,
    /// 1-based line of the tag constant.
    pub line: usize,
    /// The `mix_*` function name.
    pub function: String,
    /// Decoded ASCII tag (e.g. `PRLC:FA`).
    pub tag: String,
    /// Normalized hex constant (uppercase, no `0x`/`_`, no leading zeros).
    pub constant: String,
}

/// Decodes a hex integer literal into its ASCII tag: strip `0x`,
/// underscores and any type suffix, take the big-endian bytes with
/// leading zero bytes dropped, and require `min_len..=8` printable
/// ASCII characters.
pub fn decode_ascii_tag(literal: &str, min_len: usize) -> Option<String> {
    let hex = literal.strip_prefix("0x")?;
    let digits: String = hex
        .chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    let padded = if digits.len() % 2 == 1 {
        format!("0{digits}")
    } else {
        digits
    };
    let mut bytes: Vec<u8> = padded
        .as_bytes()
        .chunks(2)
        .map(|pair| {
            let s = std::str::from_utf8(pair).ok()?;
            u8::from_str_radix(s, 16).ok()
        })
        .collect::<Option<Vec<u8>>>()?;
    while bytes.first() == Some(&0) {
        bytes.remove(0);
    }
    if bytes.len() < min_len || bytes.len() > 8 {
        return None;
    }
    if !bytes.iter().all(|b| (0x20..=0x7E).contains(b)) {
        return None;
    }
    Some(bytes.iter().map(|&b| b as char).collect())
}

/// Normalizes a hex literal for registry comparison: uppercase digits,
/// no `0x`, `_`, suffix, or leading zeros.
pub fn normalize_hex(literal: &str) -> Option<String> {
    let hex = literal.strip_prefix("0x")?;
    let digits: String = hex
        .chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .filter(|c| *c != '_')
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let trimmed = digits.trim_start_matches('0');
    Some(if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    })
}

/// Collects the domain tag from every non-test `mix_*` helper and
/// flags malformed declarations: a helper with no decodable ASCII tag
/// XORed into its seed, more than one tag, or a tag whose same-line
/// comment does not quote the decoded string (truth-in-comment).
/// Also flags ASCII-taggable constants XORed *outside* a `mix_*`
/// helper — domain separation must be centralized to stay auditable.
pub fn collect_domain_tags(files: &[SourceModel], out: &mut Vec<Finding>) -> Vec<DomainUse> {
    let mut uses = Vec::new();
    for f in files {
        if f.kind == FileKind::TestOnly {
            continue;
        }
        // Byte spans of mix_* fn bodies, to exempt their constants from
        // the "inline tag" check below.
        let mut mix_spans: Vec<(usize, usize)> = Vec::new();
        for si in 0..f.sig_len() {
            if !f.is_ident(si, "fn") {
                continue;
            }
            let Some(fn_name) = f.ident_at(si + 1) else {
                continue;
            };
            if !fn_name.starts_with("mix_") || f.in_test(f.tok(si).start) {
                continue;
            }
            let fn_name = fn_name.to_string();
            let Some(body) = f.find_body_brace(si + 2) else {
                continue;
            };
            let Some(body_close) = f.close_of(body) else {
                continue;
            };
            mix_spans.push(f.brace_span(body));

            let mut tags: Vec<(usize, String, String)> = Vec::new(); // (line, tag, const)
            for j in body + 1..body_close {
                if f.tok(j).kind != TokenKind::Int {
                    continue;
                }
                let adjacent_xor = f.is_punct(j.saturating_sub(1), "^")
                    || f.is_punct(j + 1, "^")
                    || f.is_punct(j.saturating_sub(1), "^=");
                if !adjacent_xor {
                    continue;
                }
                let lit = f.text_of(j);
                if let (Some(tag), Some(norm)) = (decode_ascii_tag(lit, 2), normalize_hex(lit)) {
                    tags.push((f.tok(j).line, tag, norm));
                }
            }
            match tags.len() {
                0 => out.push(Finding::new(
                    &f.rel,
                    f.tok(si).line,
                    Lint::RngRegistry,
                    &fn_name,
                    format!(
                        "`{fn_name}` has no ASCII domain tag: XOR the seed with a printable \
                         hex constant (e.g. 0x50524C_433A4641 // \"PRLC:FA\") and register it \
                         in docs/RNG_DOMAINS.md"
                    ),
                )),
                1 => {
                    let (line, tag, constant) = tags.remove(0);
                    let commented = f
                        .line_comments()
                        .any(|(l, text)| l == line && text.contains(tag.as_str()));
                    if !commented {
                        out.push(Finding::new(
                            &f.rel,
                            line,
                            Lint::RngRegistry,
                            &fn_name,
                            format!(
                                "domain tag constant in `{fn_name}` decodes to {tag:?} but the \
                                 line carries no comment quoting it; annotate with // {tag:?}"
                            ),
                        ));
                    }
                    uses.push(DomainUse {
                        file: f.rel.clone(),
                        line,
                        function: fn_name,
                        tag,
                        constant,
                    });
                }
                _ => out.push(Finding::new(
                    &f.rel,
                    f.tok(si).line,
                    Lint::RngRegistry,
                    &fn_name,
                    format!(
                        "`{fn_name}` XORs {} ASCII-decodable constants; a mix helper owns \
                         exactly one domain tag",
                        tags.len()
                    ),
                )),
            }
        }

        // Inline tags: a printable >=4-char constant XORed outside any
        // mix_* helper is ad-hoc domain separation.
        for si in 0..f.sig_len() {
            let t = f.tok(si);
            if t.kind != TokenKind::Int || f.in_test(t.start) {
                continue;
            }
            if mix_spans.iter().any(|&(s, e)| t.start >= s && t.start < e) {
                continue;
            }
            let adjacent_xor = f.is_punct(si.saturating_sub(1), "^") || f.is_punct(si + 1, "^");
            if !adjacent_xor {
                continue;
            }
            if let Some(tag) = decode_ascii_tag(f.text_of(si), 4) {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::RngRegistry,
                    &tag,
                    format!(
                        "ASCII domain tag {tag:?} XORed outside a `mix_*` helper; hoist it \
                         into a mix function and register it in docs/RNG_DOMAINS.md"
                    ),
                ));
            }
        }
    }
    uses
}

/// L6: collect every `mix_*` domain tag workspace-wide and cross-check
/// against `docs/RNG_DOMAINS.md` — the L3/METRICS.md pattern applied to
/// seeds. Tags must be unique (colliding tags alias RNG streams),
/// every tag documented with its exact constant/function/file, and
/// every documented row live.
pub fn l6_rng_registry(
    files: &[SourceModel],
    domains_md_rel: &str,
    registry: &DomainRegistry,
    out: &mut Vec<Finding>,
) {
    for p in &registry.problems {
        out.push(Finding::new(
            domains_md_rel,
            p.line,
            Lint::RngRegistry,
            "registry",
            p.message.clone(),
        ));
    }

    let uses = collect_domain_tags(files, out);

    // Uniqueness: two helpers sharing a tag means their streams alias.
    for (i, a) in uses.iter().enumerate() {
        for b in uses.iter().skip(i + 1) {
            if a.tag == b.tag {
                out.push(Finding::new(
                    &b.file,
                    b.line,
                    Lint::RngRegistry,
                    &b.tag,
                    format!(
                        "domain tag {:?} in `{}` collides with `{}` ({}:{}); colliding tags \
                         alias RNG streams",
                        b.tag, b.function, a.function, a.file, a.line
                    ),
                ));
            }
        }
    }

    let mut documented = vec![false; registry.entries.len()];
    for u in &uses {
        match registry.entries.iter().position(|e| e.tag == u.tag) {
            None => out.push(Finding::new(
                &u.file,
                u.line,
                Lint::RngRegistry,
                &u.tag,
                format!(
                    "undocumented domain tag {:?} in `{}`: add a row to docs/RNG_DOMAINS.md",
                    u.tag, u.function
                ),
            )),
            Some(idx) => {
                documented[idx] = true;
                let e = &registry.entries[idx];
                if e.constant != u.constant || e.function != u.function || e.file != u.file {
                    out.push(Finding::new(
                        &u.file,
                        u.line,
                        Lint::RngRegistry,
                        &u.tag,
                        format!(
                            "domain tag {:?} is registered as `0x{}` in `{}` ({}), but the \
                             code has `0x{}` in `{}` ({}); update docs/RNG_DOMAINS.md line {}",
                            u.tag,
                            e.constant,
                            e.function,
                            e.file,
                            u.constant,
                            u.function,
                            u.file,
                            e.line
                        ),
                    ));
                }
            }
        }
    }
    for (idx, e) in registry.entries.iter().enumerate() {
        if !documented[idx] {
            out.push(Finding::new(
                domains_md_rel,
                e.line,
                Lint::RngRegistry,
                &e.tag,
                format!(
                    "dead registry row: domain tag {:?} is documented but no `mix_*` helper \
                     declares it — remove the row or restore the helper",
                    e.tag
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L7: kernel-dispatch audit
// ---------------------------------------------------------------------------

/// Hot crates whose loops must go through the `GfKernel` slice layer.
const L7_HOT_PREFIXES: &[&str] = &["crates/linalg/src/", "crates/core/src/", "crates/net/src/"];

/// Scalar GF-element methods that a loop body must not call directly —
/// per-element trait dispatch in a loop bypasses the table/SIMD slice
/// kernels. `gf_inv` is excluded: inversion is the inherently scalar
/// pivot operation with no slice form.
const L7_SCALAR_OPS: &[&str] = &["gf_add", "gf_mul", "gf_div", "gf_pow"];

/// L7: flag scalar GF arithmetic (`.gf_add()`, `.gf_mul()`, …) inside
/// `for`/`while`/`loop` bodies in the hot crates. Slice-level work must
/// go through `GfElem::{axpy,scale,add_slice,mul_slice,dot}` so the
/// dispatched kernel (table lookups, SIMD) carries it; reviewed
/// exceptions (e.g. sparse merges with no slice form) go in the
/// allowlist.
pub fn l7_kernel_dispatch(files: &[SourceModel], out: &mut Vec<Finding>) {
    for f in files {
        if f.kind != FileKind::Lib || !L7_HOT_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        // Collect loop-body byte spans (nested bodies overlap; findings
        // dedup at the report level).
        let mut loop_spans: Vec<(usize, usize)> = Vec::new();
        for si in 0..f.sig_len() {
            let Some(kw) = f.ident_at(si) else { continue };
            if kw != "for" && kw != "while" && kw != "loop" {
                continue;
            }
            if f.in_test(f.tok(si).start) {
                continue;
            }
            // `for`/`while` headers contain no top-level brace (struct
            // literals are illegal there unparenthesized), so the first
            // brace after the keyword — skipping `(…)`/`[…]` groups —
            // is the body.
            if let Some(body) = f.find_body_brace(si + 1) {
                loop_spans.push(f.brace_span(body));
            }
        }
        if loop_spans.is_empty() {
            continue;
        }
        for si in 1..f.sig_len() {
            let Some(name) = f.ident_at(si) else { continue };
            if !L7_SCALAR_OPS.contains(&name) {
                continue;
            }
            if !(f.is_punct(si - 1, ".") && f.is_open(si + 1, Delim::Paren)) {
                continue;
            }
            let t = f.tok(si);
            if f.in_test(t.start) {
                continue;
            }
            if loop_spans.iter().any(|&(s, e)| t.start >= s && t.start < e) {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    Lint::KernelDispatch,
                    name,
                    format!(
                        "scalar `{name}` in a hot-crate loop bypasses the GfKernel slice \
                         layer; restructure onto GfElem::{{axpy,scale,add_slice,mul_slice,\
                         dot}} or add an allowlist entry justifying the scalar site"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{parse_metrics_md, parse_rng_domains_md};

    fn lib(rel: &str, src: &str) -> SourceModel {
        SourceModel::parse(rel, FileKind::Lib, src)
    }

    // ---- L1 ----

    #[test]
    fn l1_fires_on_banned_tokens_in_code() {
        let f = lib(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nlet t = Instant::now();\n",
        );
        let mut out = Vec::new();
        l1_determinism(&[f], &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["HashMap", "Instant"]);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn l1_ignores_comments_strings_and_test_code() {
        let f = lib(
            "crates/core/src/x.rs",
            "// HashMap in prose\nlet m = \"an Instant msg\";\nlet r = r#\"SystemTime too\"#;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        let mut out = Vec::new();
        l1_determinism(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l1_rand_random_needs_the_path_prefix() {
        let fires = lib("crates/core/src/x.rs", "let x = rand::random::<u8>();\n");
        let silent = lib("crates/core/src/y.rs", "let x = my::random();\n");
        let mut out = Vec::new();
        l1_determinism(&[fires, silent], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].token, "rand::random");
    }

    // ---- L2 ----

    #[test]
    fn l2_fires_on_undocumented_unsafe_and_respects_safety_comments() {
        let bad = lib(
            "crates/gf/src/k.rs",
            "fn f(p: *const u8) {\n    unsafe { p.read() };\n}\n",
        );
        let good = lib(
            "crates/gf/src/k2.rs",
            "fn f(p: *const u8) {\n    // SAFETY: p is valid for reads by contract.\n    unsafe { p.read() };\n}\n",
        );
        let mut out = Vec::new();
        l2_unsafe_comments(&[bad, good], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/gf/src/k.rs");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn l2_safety_comment_may_sit_above_attributes() {
        let f = lib(
            "crates/gf/src/k.rs",
            "// SAFETY: callers checked the ssse3 feature.\n#[target_feature(enable = \"ssse3\")]\nunsafe fn kernel() {}\n",
        );
        let mut out = Vec::new();
        l2_unsafe_comments(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l2_string_unsafe_does_not_fire() {
        let f = lib(
            "crates/gf/src/k.rs",
            "let s = \"unsafe\"; let r = r#\"unsafe\"#;\n",
        );
        let mut out = Vec::new();
        l2_unsafe_comments(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l2_forbid_attr_required_outside_gf() {
        let with = lib("crates/net/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let without = lib("crates/sim/src/lib.rs", "//! docs only\n");
        let gf = lib("crates/gf/src/lib.rs", "// gf is exempt\n");
        let mut out = Vec::new();
        l2_forbid_unsafe(&[&with, &without, &gf], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/sim/src/lib.rs");
    }

    // ---- L3 ----

    const REG: &str = "\
| `net.collect.blocks` | counter | blocks |
| `gf.axpy.bytes.simd` | counter | bytes |
| `gf.scale.bytes.simd` | counter | bytes |
| `net.collect.query_hops` | histogram | hops |
";

    #[test]
    fn l3_clean_when_uses_match_registry() {
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::counter!(\"net.collect.blocks\").incr();\nprlc_obs::histogram!(\"net.collect.query_hops\").observe(1);\nprlc_obs::counter!(concat!(\"gf.\", $op, \".bytes.simd\"))\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &parse_metrics_md(REG), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l3_flags_undocumented_dead_and_mistyped_keys() {
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::counter!(\"net.collect.blocks\").incr();\nprlc_obs::counter!(\"net.rogue.key\").incr();\nprlc_obs::counter!(\"net.collect.query_hops\").incr();\nprlc_obs::counter!(\"gf.axpy.bytes.simd\").incr();\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &parse_metrics_md(REG), &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("undocumented metric key `net.rogue.key`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("documented as a histogram") && m.contains("counter!")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("dead registry key `gf.scale.bytes.simd`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn l3_checks_trace_macro_names() {
        let reg = parse_metrics_md(
            "| `net.collect.session` | span | session |\n\
             | `linalg.rref.pivot` | instant | pivot |\n",
        );
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::trace_span!(\"net.collect.session\", a, b, blocks: n as u64);\n\
             prlc_obs::trace_instant!(\"linalg.rref.pivot\", tick, pivot: pc as u64);\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &reg, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // A span name emitted via trace_instant! is a type clash, and an
        // unregistered name is undocumented.
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::trace_instant!(\"net.collect.session\", t);\n\
             prlc_obs::trace_span!(\"net.rogue.span\", a, b);\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &reg, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("documented as a span") && m.contains("trace_instant!")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("undocumented metric key `net.rogue.span`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("no trace_span! call site emits it")),
            "{msgs:?}"
        );
    }

    #[test]
    fn key_argument_stops_at_the_first_top_level_comma() {
        // Trailing macro arguments (ticks, annotations) never join the
        // key, but commas inside a nested concat! still do — and a call
        // wrapped across lines parses identically.
        let uses = extract_key_uses(&[lib(
            "crates/net/src/c.rs",
            "counter!(\"net.fault.retry\", self.step as u64, dest: d);\n\
             counter!(concat!(\"gf.\", $op, \".bytes\"), n);\n\
             histogram!(\n    \"net.collect.query_hops\",\n    hops,\n);\n\
             timer!(tick, \"not.the.key\");\n",
        )]);
        let patterns: Vec<&str> = uses.iter().map(|u| u.pattern.as_str()).collect();
        assert_eq!(
            patterns,
            ["net.fault.retry", "gf.*.bytes", "net.collect.query_hops"]
        );
    }

    #[test]
    fn l3_ignores_keys_in_test_code_and_string_mentions() {
        let f = lib(
            "crates/obs/src/lib.rs",
            "// counter!(\"doc.example\") in prose\nlet s = \"counter!(\";\n#[cfg(test)]\nmod tests {\n    fn t() { counter!(\"obs.test.macro\").add(1); }\n}\n",
        );
        let uses = extract_key_uses(&[f]);
        assert!(uses.is_empty(), "{uses:?}");
    }

    #[test]
    fn l3_skips_macro_definitions() {
        let f = lib(
            "crates/obs/src/lib.rs",
            "macro_rules! counter {\n    ($key:expr) => { $crate::metrics::counter($key) };\n}\n",
        );
        let uses = extract_key_uses(&[f]);
        assert!(uses.is_empty(), "{uses:?}");
    }

    // ---- L4 ----

    #[test]
    fn l4_requires_mix_helper_inside_the_seed_argument() {
        let bad = lib(
            "crates/net/src/proto.rs",
            "let rng = StdRng::seed_from_u64(cfg.seed);\n",
        );
        // v1 accepted `mix_` anywhere on the line; v2 requires it in the
        // argument.
        let bad_same_line = lib(
            "crates/net/src/proto2.rs",
            "let m = mix_seed(s); let rng = StdRng::seed_from_u64(raw);\n",
        );
        let good = lib(
            "crates/net/src/fault.rs",
            "let rng = StdRng::seed_from_u64(mix_fault_seed(self.seed));\n",
        );
        let elsewhere = lib(
            "crates/sim/src/runner.rs",
            "let rng = StdRng::seed_from_u64(seed);\n",
        );
        let mut out = Vec::new();
        l4_rng_domain(&[bad, bad_same_line, good, elsewhere], &mut out);
        let files: Vec<&str> = out.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(
            files,
            ["crates/net/src/proto.rs", "crates/net/src/proto2.rs"],
            "{out:?}"
        );
    }

    // ---- L5 ----

    #[test]
    fn l5_fires_in_library_code_only() {
        let libf = lib("crates/core/src/x.rs", "let v = opt.unwrap();\n");
        let cli = lib("crates/cli/src/commands.rs", "let v = opt.unwrap();\n");
        let binf = SourceModel::parse("crates/lint/src/main.rs", FileKind::Bin, "x.unwrap();\n");
        let testf = SourceModel::parse("tests/e2e.rs", FileKind::TestOnly, "x.unwrap();\n");
        let mut out = Vec::new();
        l5_panic_hygiene(&[libf, cli, binf, testf], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/core/src/x.rs");
        assert_eq!(out[0].token, "unwrap");
    }

    #[test]
    fn l5_skips_cfg_test_regions_and_lookalikes() {
        let f = lib(
            "crates/core/src/x.rs",
            "fn ok(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nlet s = \".unwrap()\";\n#[cfg(test)]\nmod tests {\n    fn t() { x.expect(\"fine in tests\"); }\n}\n",
        );
        let mut out = Vec::new();
        l5_panic_hygiene(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- L6 ----

    const DOMAINS: &str = "\
| `PRLC:FA` | `0x50524C_433A4641` | `mix_fault_seed` | `crates/net/src/fault.rs` | fault streams |
| `PRLC:LO` | `0x50524C_433A4C4F` | `mix_seed` | `crates/net/src/protocol.rs` | location streams |
";

    const GOOD_MIX: &str = "\
fn mix_fault_seed(seed: u64) -> u64 {\n    let mut z = seed ^ 0x50524C_433A4641; // \"PRLC:FA\"\n    z\n}\n";

    #[test]
    fn l6_clean_when_tags_match_registry() {
        let fault = lib("crates/net/src/fault.rs", GOOD_MIX);
        let proto = lib(
            "crates/net/src/protocol.rs",
            "pub(crate) fn mix_seed(seed: u64) -> u64 {\n    let z = seed ^ 0x50524C_433A4C4F; // \"PRLC:LO\"\n    z\n}\n",
        );
        let mut out = Vec::new();
        l6_rng_registry(
            &[fault, proto],
            "docs/RNG_DOMAINS.md",
            &parse_rng_domains_md(DOMAINS),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l6_flags_undocumented_colliding_and_dead_tags() {
        let fault = lib("crates/net/src/fault.rs", GOOD_MIX);
        // Same tag as mix_fault_seed (collision) and not in the doc
        // under its own name; mix_rogue_seed's tag is undocumented.
        let rogue = lib(
            "crates/net/src/rogue.rs",
            "fn mix_rogue_seed(seed: u64) -> u64 {\n    seed ^ 0x1709 // nonsense\n}\nfn mix_alias_seed(seed: u64) -> u64 {\n    seed ^ 0x50524C_433A4641 // \"PRLC:FA\"\n}\n",
        );
        let mut out = Vec::new();
        l6_rng_registry(
            &[fault, rogue],
            "docs/RNG_DOMAINS.md",
            &parse_rng_domains_md(DOMAINS),
            &mut out,
        );
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("collides with")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("dead registry row")),
            "{msgs:?}"
        );
        // mix_rogue_seed has no decodable tag at all.
        assert!(
            msgs.iter().any(|m| m.contains("no ASCII domain tag")),
            "{msgs:?}"
        );
    }

    #[test]
    fn l6_truth_in_comment_and_constant_mismatch() {
        // Tag decodes to PRLC:FA but the comment claims otherwise.
        let lying = lib(
            "crates/net/src/fault.rs",
            "fn mix_fault_seed(seed: u64) -> u64 {\n    seed ^ 0x50524C_433A4641 // totally not a tag\n}\n",
        );
        let mut out = Vec::new();
        l6_rng_registry(
            &[lying],
            "docs/RNG_DOMAINS.md",
            &parse_rng_domains_md(DOMAINS),
            &mut out,
        );
        assert!(
            out.iter().any(|f| f.message.contains("no comment quoting")),
            "{out:?}"
        );

        // Registered location differs from the code's: the row is
        // internally consistent (constant decodes to its tag), but the
        // helper has moved to another file since it was written down.
        let drifted = lib(
            "crates/net/src/fault.rs",
            "fn mix_fault_seed(seed: u64) -> u64 {\n    seed ^ 0x50524C_433A4642 // \"PRLC:FB\"\n}\n",
        );
        let mut out = Vec::new();
        l6_rng_registry(
            &[drifted],
            "docs/RNG_DOMAINS.md",
            &parse_rng_domains_md("| `PRLC:FB` | `0x50524C_433A4642` | `mix_fault_seed` | `crates/net/src/retired.rs` | drift |\n"),
            &mut out,
        );
        assert!(
            out.iter()
                .any(|f| f.message.contains("update docs/RNG_DOMAINS.md")),
            "{out:?}"
        );
    }

    #[test]
    fn l6_flags_inline_tags_outside_mix_helpers() {
        let f = lib(
            "crates/sim/src/lossy.rs",
            "fn one_run(seed: u64, li: usize) -> u64 {\n    splitmix64(seed ^ splitmix64(0x4C4F_5353 ^ li as u64))\n}\n",
        );
        let mut out = Vec::new();
        let uses = collect_domain_tags(&[f], &mut out);
        assert!(uses.is_empty());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("hoist"), "{out:?}");
        assert_eq!(out[0].token, "LOSS");
    }

    #[test]
    fn l6_splitmix_constants_are_not_tags() {
        // The SplitMix64 multipliers and golden-ratio increment have
        // non-printable bytes and must never register as tags.
        let f = lib(
            "crates/sim/src/runner.rs",
            "pub fn splitmix64(mut z: u64) -> u64 {\n    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);\n    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);\n    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);\n    z ^ (z >> 31)\n}\n",
        );
        let mut out = Vec::new();
        let uses = collect_domain_tags(&[f], &mut out);
        assert!(uses.is_empty(), "{uses:?}");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn decode_ascii_tags() {
        assert_eq!(
            decode_ascii_tag("0x50524C_433A4641", 2).as_deref(),
            Some("PRLC:FA")
        );
        assert_eq!(decode_ascii_tag("0x4C4F_5353", 4).as_deref(), Some("LOSS"));
        assert_eq!(
            decode_ascii_tag("0x4C4F_5353u64", 4).as_deref(),
            Some("LOSS")
        );
        assert_eq!(decode_ascii_tag("0x0517", 2), None, "non-printable");
        assert_eq!(decode_ascii_tag("0x41", 2), None, "too short");
        assert_eq!(decode_ascii_tag("0x9E37_79B9_7F4A_7C15", 2), None);
        assert_eq!(decode_ascii_tag("42", 2), None, "not hex");
        assert_eq!(normalize_hex("0x00_4C4F_5353").as_deref(), Some("4C4F5353"));
    }

    // ---- L7 ----

    #[test]
    fn l7_fires_on_scalar_gf_ops_in_hot_loops() {
        let f = lib(
            "crates/linalg/src/rowops.rs",
            "fn axpy(data: &mut [G], other: &[G], factor: G) {\n    for i in 0..data.len() {\n        data[i] = data[i].gf_add(factor.gf_mul(other[i]));\n    }\n}\n",
        );
        let mut out = Vec::new();
        l7_kernel_dispatch(&[f], &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["gf_add", "gf_mul"], "{out:?}");
    }

    #[test]
    fn l7_silent_on_slice_kernels_cold_crates_pivots_and_tests() {
        // Slice-level dispatch, straight-line scalar code, gf_inv
        // pivots, non-hot crates, and test code are all fine.
        let slice = lib(
            "crates/linalg/src/rowops.rs",
            "fn axpy(data: &mut [G], other: &[G], factor: G) {\n    G::axpy(data, factor, other);\n}\n",
        );
        let straight = lib(
            "crates/linalg/src/pivot.rs",
            "fn pivot(a: G, b: G) -> Option<G> {\n    let inv = a.gf_inv()?;\n    Some(inv.gf_mul(b))\n}\n",
        );
        let pivot_loop = lib(
            "crates/linalg/src/elim.rs",
            "fn find(rows: &[Row]) -> Option<G> {\n    for r in rows {\n        if let Some(inv) = r.lead.gf_inv() {\n            return Some(inv);\n        }\n    }\n    None\n}\n",
        );
        let cold = lib(
            "crates/gf/src/kernel.rs",
            "fn scalar_axpy(d: &mut [G], c: G, s: &[G]) {\n    for (d, s) in d.iter_mut().zip(s) {\n        *d = d.gf_add(c.gf_mul(*s));\n    }\n}\n",
        );
        let test_code = lib(
            "crates/linalg/src/coeffrow.rs",
            "#[cfg(test)]\nmod tests {\n    fn slow(d: &mut [G], c: G, s: &[G]) {\n        for i in 0..d.len() { d[i] = d[i].gf_add(c.gf_mul(s[i])); }\n    }\n}\n",
        );
        let mut out = Vec::new();
        l7_kernel_dispatch(&[slice, straight, pivot_loop, cold, test_code], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l7_while_loops_and_closures_in_headers() {
        let fires = lib(
            "crates/linalg/src/merge.rs",
            "fn merge(a: &[E], b: &[E], factor: G) {\n    let mut j = 0;\n    while j < b.len() {\n        let v = factor.gf_mul(b[j].1);\n        j += 1;\n    }\n}\n",
        );
        // A closure in the iterator chain of a for-header must not eat
        // the body brace.
        let header_closure = lib(
            "crates/linalg/src/map.rs",
            "fn f(rows: &[Row]) {\n    for x in rows.iter().map(|r| { r.id }) {\n        use_it(x);\n    }\n}\n",
        );
        let mut out = Vec::new();
        l7_kernel_dispatch(&[fires, header_closure], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].token, "gf_mul");
        assert_eq!(out[0].file, "crates/linalg/src/merge.rs");
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in [
            Lint::Allowlist,
            Lint::Determinism,
            Lint::UnsafeAudit,
            Lint::MetricRegistry,
            Lint::RngDomain,
            Lint::PanicHygiene,
            Lint::RngRegistry,
            Lint::KernelDispatch,
        ] {
            assert_eq!(Lint::from_id(l.id()), Some(l));
            let short = l.id().split('-').next().expect("id has a dash");
            assert_eq!(Lint::from_id(short), Some(l));
        }
        assert_eq!(Lint::from_id("L9"), None);
    }
}
