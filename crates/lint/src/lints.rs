//! The five workspace invariant lints (plus the allowlist meta-lint).
//!
//! Each pass takes the scanned [`SourceFile`] set and appends
//! [`Finding`]s. What each lint enforces — and why the invariant
//! matters to the PRLC reproduction — is documented on the pass itself
//! and summarised in DESIGN.md §"Static analysis & invariant lints".

use crate::registry::{self, MetricKind, Registry};
use crate::scan::{token_positions, FileKind, SourceFile};

/// Lint identifiers. Ordering is the reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Stale or malformed allowlist entries.
    Allowlist,
    /// L1: no nondeterministic containers, clocks or RNG sources.
    Determinism,
    /// L2: `unsafe` requires `// SAFETY:`; non-GF crates forbid unsafe.
    UnsafeAudit,
    /// L3: metric keys match the `docs/METRICS.md` registry.
    MetricRegistry,
    /// L4: seeded RNG in `prlc-net` goes through domain-separation mixes.
    RngDomain,
    /// L5: no `unwrap()`/`expect()` in library code.
    PanicHygiene,
}

impl Lint {
    /// Stable identifier used in reports and allowlist entries.
    pub fn id(self) -> &'static str {
        match self {
            Lint::Allowlist => "L0-allowlist",
            Lint::Determinism => "L1-determinism",
            Lint::UnsafeAudit => "L2-unsafe-audit",
            Lint::MetricRegistry => "L3-metric-registry",
            Lint::RngDomain => "L4-rng-domain",
            Lint::PanicHygiene => "L5-panic-hygiene",
        }
    }

    /// Resolves `L5` or `L5-panic-hygiene` style ids.
    pub fn from_id(s: &str) -> Option<Lint> {
        let all = [
            Lint::Allowlist,
            Lint::Determinism,
            Lint::UnsafeAudit,
            Lint::MetricRegistry,
            Lint::RngDomain,
            Lint::PanicHygiene,
        ];
        all.into_iter()
            .find(|l| l.id() == s || l.id().split('-').next() == Some(s))
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// The offending token / key / entry (allowlist match target).
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    fn new(file: &str, line: usize, lint: Lint, token: &str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            token: token.to_string(),
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// L1: determinism
// ---------------------------------------------------------------------------

/// Banned tokens and why. `HashMap`/`HashSet` iterate in randomized
/// order; the clock and ambient RNG break bit-reproducibility of
/// snapshots and simulated persistence under a pinned seed.
const L1_BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet or a sorted Vec",
    ),
    (
        "SystemTime",
        "wall clock breaks snapshot determinism; wall-clock reads are confined to the obs timer block and CLI",
    ),
    (
        "Instant",
        "wall clock breaks snapshot determinism; wall-clock reads are confined to the obs timer block and CLI",
    ),
    (
        "thread_rng",
        "ambient RNG is unseeded; derive a seeded StdRng through a domain-separation helper",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG is irreproducible; derive the seed from the run's pinned seed",
    ),
    (
        "rand::random",
        "ambient RNG is unseeded; derive a seeded StdRng through a domain-separation helper",
    ),
];

/// L1: scan non-test code for the banned tokens.
pub fn l1_determinism(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        if f.kind == FileKind::TestOnly {
            continue;
        }
        for (i, code) in f.code.iter().enumerate() {
            if f.is_test_line(i) {
                continue;
            }
            for &(token, why) in L1_BANNED {
                if !token_positions(code, token).is_empty() {
                    out.push(Finding::new(
                        &f.rel,
                        i + 1,
                        Lint::Determinism,
                        token,
                        format!("use of `{token}`: {why}"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L2: unsafe audit
// ---------------------------------------------------------------------------

/// How many raw lines above an `unsafe` token a `// SAFETY:` comment
/// may sit and still count as adjacent (attributes like
/// `#[target_feature(..)]` may intervene).
const SAFETY_WINDOW: usize = 3;

/// L2a: every `unsafe` token needs an adjacent `// SAFETY:` comment.
/// Applies to test code too — an unsound test is still unsound.
pub fn l2_unsafe_comments(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        for (i, code) in f.code.iter().enumerate() {
            if token_positions(code, "unsafe").is_empty() {
                continue;
            }
            let lo = i.saturating_sub(SAFETY_WINDOW);
            let documented = f.raw[lo..=i].iter().any(|l| l.contains("SAFETY:"));
            if !documented {
                out.push(Finding::new(
                    &f.rel,
                    i + 1,
                    Lint::UnsafeAudit,
                    "unsafe",
                    "`unsafe` without an adjacent `// SAFETY:` comment (within 3 lines above)"
                        .to_string(),
                ));
            }
        }
    }
}

/// L2b: every crate root except `prlc-gf` (which holds the audited
/// kernel unsafe) must declare `#![forbid(unsafe_code)]`.
pub fn l2_forbid_unsafe(roots: &[(&str, &str)], out: &mut Vec<Finding>) {
    for &(rel, text) in roots {
        if rel.starts_with("crates/gf/") {
            continue;
        }
        if !text.contains("#![forbid(unsafe_code)]") {
            out.push(Finding::new(
                rel,
                1,
                Lint::UnsafeAudit,
                "forbid_unsafe_code",
                "crate root must declare #![forbid(unsafe_code)] (only prlc-gf may hold unsafe)"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L3: metric-key registry
// ---------------------------------------------------------------------------

/// A metric-key use extracted from a macro call site. `pattern` may
/// contain `*` where a macro argument (`$op`-style placeholder) stood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyUse {
    /// Workspace-relative path of the call site.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which macro was called.
    pub kind: MetricKind,
    /// The key, with `*` wildcards for macro placeholders.
    pub pattern: String,
}

const METRIC_MACROS: &[(&str, MetricKind)] = &[
    ("counter!", MetricKind::Counter),
    ("histogram!", MetricKind::Histogram),
    ("timer!", MetricKind::Timer),
    ("trace_span!", MetricKind::Span),
    ("trace_instant!", MetricKind::Point),
];

/// Extracts every metric-macro key use from non-test code.
pub fn extract_key_uses(files: &[SourceFile]) -> Vec<KeyUse> {
    let mut out = Vec::new();
    for f in files {
        if f.kind == FileKind::TestOnly {
            continue;
        }
        for (i, code) in f.code.iter().enumerate() {
            if f.is_test_line(i) {
                continue;
            }
            for &(mac, kind) in METRIC_MACROS {
                for pos in token_positions(code, mac) {
                    let open = pos + mac.len();
                    if code.as_bytes().get(open) != Some(&b'(') {
                        continue; // `macro_rules! counter {` definition etc.
                    }
                    // Parse the argument from the string-preserving view,
                    // joining a couple of continuation lines in case the
                    // call wraps.
                    let mut arg = f.keep[i][open..].to_string();
                    for cont in f.keep.iter().skip(i + 1).take(2) {
                        arg.push(' ');
                        arg.push_str(cont);
                    }
                    if let Some(pattern) = parse_key_argument(&arg) {
                        out.push(KeyUse {
                            file: f.rel.clone(),
                            line: i + 1,
                            kind,
                            pattern,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Builds a key pattern from a macro argument: string literals
/// concatenate (handles `concat!("a.", $op, ".b")`), `$placeholder`s
/// become `*` wildcards, other identifiers (`concat`) are skipped.
/// Returns `None` when no literal or placeholder appears before the
/// argument closes. Only the *first* top-level argument is read —
/// `trace_span!`/`trace_instant!` take ticks and annotations after the
/// name, which must not concatenate into the key (commas inside a
/// `concat!(...)` are at nesting depth 2 and still join).
fn parse_key_argument(arg: &str) -> Option<String> {
    let b = arg.as_bytes();
    debug_assert_eq!(b.first(), Some(&b'('));
    let mut depth = 0i32;
    let mut i = 0;
    let mut key = String::new();
    let mut saw_part = false;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b',' if depth == 1 => break,
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    key.push(b[i] as char);
                    i += 1;
                }
                saw_part = true;
            }
            b'$' => {
                key.push('*');
                saw_part = true;
                while i + 1 < b.len() && (b[i + 1].is_ascii_alphanumeric() || b[i + 1] == b'_') {
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    saw_part.then(|| {
        // Collapse adjacent wildcards introduced by split placeholders.
        let mut collapsed = String::with_capacity(key.len());
        for c in key.chars() {
            if c == '*' && collapsed.ends_with('*') {
                continue;
            }
            collapsed.push(c);
        }
        collapsed
    })
}

/// L3: cross-check extracted key uses against the registry — every use
/// documented, no dead documented keys, types agree, registry itself
/// well-formed.
pub fn l3_metric_registry(
    files: &[SourceFile],
    metrics_md_rel: &str,
    registry: &Registry,
    out: &mut Vec<Finding>,
) {
    for p in &registry.problems {
        out.push(Finding::new(
            metrics_md_rel,
            p.line,
            Lint::MetricRegistry,
            "registry",
            p.message.clone(),
        ));
    }

    let uses = extract_key_uses(files);
    let mut emitted = vec![false; registry.entries.len()];
    for u in &uses {
        let mut matched_any = false;
        let mut kind_clash: Option<&registry::RegistryEntry> = None;
        for (idx, e) in registry.entries.iter().enumerate() {
            if registry::pattern_matches(&u.pattern, &e.key) {
                if e.kind == u.kind {
                    emitted[idx] = true;
                    matched_any = true;
                } else {
                    kind_clash = Some(e);
                }
            }
        }
        if !matched_any {
            let message = match kind_clash {
                Some(e) => format!(
                    "metric key `{}` is documented as a {} (docs/METRICS.md line {}) but emitted via {}!",
                    u.pattern,
                    e.kind.name(),
                    e.line,
                    u.kind.macro_name()
                ),
                None => format!(
                    "undocumented metric key `{}`: add it to docs/METRICS.md (scheme layer.op[.unit][.backend])",
                    u.pattern
                ),
            };
            out.push(Finding::new(
                &u.file,
                u.line,
                Lint::MetricRegistry,
                &u.pattern,
                message,
            ));
        }
        if !u.pattern.contains('*') {
            if let Err(msg) = registry::check_key_name(&u.pattern) {
                out.push(Finding::new(
                    &u.file,
                    u.line,
                    Lint::MetricRegistry,
                    &u.pattern,
                    msg,
                ));
            }
        }
    }
    for (idx, e) in registry.entries.iter().enumerate() {
        if !emitted[idx] {
            out.push(Finding::new(
                metrics_md_rel,
                e.line,
                Lint::MetricRegistry,
                &e.key,
                format!(
                    "dead registry key `{}`: documented but no {}! call site emits it",
                    e.key,
                    e.kind.macro_name()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L4: RNG domain separation in prlc-net
// ---------------------------------------------------------------------------

/// L4: seeded RNG construction in non-test `prlc-net` code must pass
/// its seed through a `mix_*` domain-separation helper (see
/// `fault.rs::mix_fault_seed`) so fault, location and protocol streams
/// can never alias.
pub fn l4_rng_domain(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        if !f.rel.starts_with("crates/net/src/") || f.kind == FileKind::TestOnly {
            continue;
        }
        for (i, code) in f.code.iter().enumerate() {
            if f.is_test_line(i) {
                continue;
            }
            for needle in ["seed_from_u64", "from_seed"] {
                if !token_positions(code, needle).is_empty() && !code.contains("mix_") {
                    out.push(Finding::new(
                        &f.rel,
                        i + 1,
                        Lint::RngDomain,
                        needle,
                        format!(
                            "`{needle}` in prlc-net must derive its seed through a `mix_*` \
                             domain-separation helper (see fault.rs) so RNG streams cannot alias"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L5: panic hygiene
// ---------------------------------------------------------------------------

/// Crates whose code is front-end/harness rather than library: panics
/// on bad input are their error-reporting mechanism.
const L5_EXEMPT_PREFIXES: &[&str] = &["crates/cli/", "crates/bench/"];

/// L5: no `unwrap()`/`expect()` in library (non-test, non-CLI) code.
/// Reviewed invariant panics go in the allowlist with a justification.
pub fn l5_panic_hygiene(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        if f.kind != FileKind::Lib || L5_EXEMPT_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for (i, code) in f.code.iter().enumerate() {
            if f.is_test_line(i) {
                continue;
            }
            for (needle, token) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
                if code.contains(needle) {
                    out.push(Finding::new(
                        &f.rel,
                        i + 1,
                        Lint::PanicHygiene,
                        token,
                        format!(
                            "`{token}` in library code: propagate the Result/Option, or add an \
                             allowlist entry with a justification if the panic is a reviewed \
                             invariant"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::parse_metrics_md;

    fn lib(rel: &str, src: &str) -> SourceFile {
        SourceFile::scan(rel, FileKind::Lib, src)
    }

    // ---- L1 ----

    #[test]
    fn l1_fires_on_banned_tokens_in_code() {
        let f = lib(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nlet t = Instant::now();\n",
        );
        let mut out = Vec::new();
        l1_determinism(&[f], &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["HashMap", "Instant"]);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn l1_ignores_comments_strings_and_test_code() {
        let f = lib(
            "crates/core/src/x.rs",
            "// HashMap in prose\nlet m = \"an Instant msg\";\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        let mut out = Vec::new();
        l1_determinism(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- L2 ----

    #[test]
    fn l2_fires_on_undocumented_unsafe_and_respects_safety_comments() {
        let bad = lib(
            "crates/gf/src/k.rs",
            "fn f(p: *const u8) {\n    unsafe { p.read() };\n}\n",
        );
        let good = lib(
            "crates/gf/src/k2.rs",
            "fn f(p: *const u8) {\n    // SAFETY: p is valid for reads by contract.\n    unsafe { p.read() };\n}\n",
        );
        let mut out = Vec::new();
        l2_unsafe_comments(&[bad, good], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/gf/src/k.rs");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn l2_safety_comment_may_sit_above_attributes() {
        let f = lib(
            "crates/gf/src/k.rs",
            "// SAFETY: callers checked the ssse3 feature.\n#[target_feature(enable = \"ssse3\")]\nunsafe fn kernel() {}\n",
        );
        let mut out = Vec::new();
        l2_unsafe_comments(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l2_forbid_attr_required_outside_gf() {
        let mut out = Vec::new();
        l2_forbid_unsafe(
            &[
                ("crates/net/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/sim/src/lib.rs", "//! docs only\n"),
                ("crates/gf/src/lib.rs", "// gf is exempt\n"),
            ],
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/sim/src/lib.rs");
    }

    // ---- L3 ----

    const REG: &str = "\
| `net.collect.blocks` | counter | blocks |
| `gf.axpy.bytes.simd` | counter | bytes |
| `gf.scale.bytes.simd` | counter | bytes |
| `net.collect.query_hops` | histogram | hops |
";

    #[test]
    fn l3_clean_when_uses_match_registry() {
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::counter!(\"net.collect.blocks\").incr();\nprlc_obs::histogram!(\"net.collect.query_hops\").observe(1);\nprlc_obs::counter!(concat!(\"gf.\", $op, \".bytes.simd\"))\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &parse_metrics_md(REG), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l3_flags_undocumented_dead_and_mistyped_keys() {
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::counter!(\"net.collect.blocks\").incr();\nprlc_obs::counter!(\"net.rogue.key\").incr();\nprlc_obs::counter!(\"net.collect.query_hops\").incr();\nprlc_obs::counter!(\"gf.axpy.bytes.simd\").incr();\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &parse_metrics_md(REG), &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("undocumented metric key `net.rogue.key`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("documented as a histogram") && m.contains("counter!")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("dead registry key `gf.scale.bytes.simd`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn l3_checks_trace_macro_names() {
        let reg = parse_metrics_md(
            "| `net.collect.session` | span | session |\n\
             | `linalg.rref.pivot` | instant | pivot |\n",
        );
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::trace_span!(\"net.collect.session\", a, b, blocks: n as u64);\n\
             prlc_obs::trace_instant!(\"linalg.rref.pivot\", tick, pivot: pc as u64);\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &reg, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // A span name emitted via trace_instant! is a type clash, and an
        // unregistered name is undocumented.
        let f = lib(
            "crates/net/src/c.rs",
            "prlc_obs::trace_instant!(\"net.collect.session\", t);\n\
             prlc_obs::trace_span!(\"net.rogue.span\", a, b);\n",
        );
        let mut out = Vec::new();
        l3_metric_registry(&[f], "docs/METRICS.md", &reg, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("documented as a span") && m.contains("trace_instant!")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("undocumented metric key `net.rogue.span`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("no trace_span! call site emits it")),
            "{msgs:?}"
        );
    }

    #[test]
    fn key_argument_stops_at_the_first_top_level_comma() {
        // Trailing macro arguments (ticks, annotations) never join the
        // key, but commas inside a nested concat! still do.
        assert_eq!(
            parse_key_argument("(\"net.fault.retry\", self.step as u64, dest: d)"),
            Some("net.fault.retry".to_string())
        );
        assert_eq!(
            parse_key_argument("(concat!(\"gf.\", $op, \".bytes\"), n)"),
            Some("gf.*.bytes".to_string())
        );
        assert_eq!(parse_key_argument("(tick, \"not.the.key\")"), None);
    }

    #[test]
    fn l3_ignores_keys_in_test_code_and_string_mentions() {
        let f = lib(
            "crates/obs/src/lib.rs",
            "// counter!(\"doc.example\") in prose\nlet s = \"counter!(\";\n#[cfg(test)]\nmod tests {\n    fn t() { counter!(\"obs.test.macro\").add(1); }\n}\n",
        );
        let uses = extract_key_uses(&[f]);
        assert!(uses.is_empty(), "{uses:?}");
    }

    // ---- L4 ----

    #[test]
    fn l4_requires_mix_helper_in_net() {
        let bad = lib(
            "crates/net/src/proto.rs",
            "let rng = StdRng::seed_from_u64(cfg.seed);\n",
        );
        let good = lib(
            "crates/net/src/fault.rs",
            "let rng = StdRng::seed_from_u64(mix_fault_seed(self.seed));\n",
        );
        let elsewhere = lib(
            "crates/sim/src/runner.rs",
            "let rng = StdRng::seed_from_u64(seed);\n",
        );
        let mut out = Vec::new();
        l4_rng_domain(&[bad, good, elsewhere], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/net/src/proto.rs");
    }

    // ---- L5 ----

    #[test]
    fn l5_fires_in_library_code_only() {
        let libf = lib("crates/core/src/x.rs", "let v = opt.unwrap();\n");
        let cli = lib("crates/cli/src/commands.rs", "let v = opt.unwrap();\n");
        let binf = SourceFile::scan("crates/lint/src/main.rs", FileKind::Bin, "x.unwrap();\n");
        let testf = SourceFile::scan("tests/e2e.rs", FileKind::TestOnly, "x.unwrap();\n");
        let mut out = Vec::new();
        l5_panic_hygiene(&[libf, cli, binf, testf], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/core/src/x.rs");
        assert_eq!(out[0].token, "unwrap");
    }

    #[test]
    fn l5_skips_cfg_test_regions() {
        let f = lib(
            "crates/core/src/x.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.expect(\"fine in tests\"); }\n}\n",
        );
        let mut out = Vec::new();
        l5_panic_hygiene(&[f], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in [
            Lint::Allowlist,
            Lint::Determinism,
            Lint::UnsafeAudit,
            Lint::MetricRegistry,
            Lint::RngDomain,
            Lint::PanicHygiene,
        ] {
            assert_eq!(Lint::from_id(l.id()), Some(l));
            let short = l.id().split('-').next().expect("id has a dash");
            assert_eq!(Lint::from_id(short), Some(l));
        }
        assert_eq!(Lint::from_id("L9"), None);
    }
}
