//! Token-tree source model: the lexed token stream plus the structural
//! indices every lint pass navigates by.
//!
//! A [`SourceModel`] holds the full token stream (comments included, for
//! the `// SAFETY:` and domain-tag truth-in-comment checks), a
//! *significant* sub-stream with comments dropped (what passes match
//! against), a matching-bracket map over the significant stream, and
//! the `#[cfg(test)]` / `#[test]` region spans resolved by syntax — an
//! attribute gates the brace-block of the item that follows it, not
//! whatever a line-based brace counter guesses.
//!
//! The model still stops short of full parsing (no `syn`, consistent
//! with the workspace's zero-dependency policy): passes pattern-match
//! token sequences, but on *real* tokens with byte spans, so raw-string
//! contents, char literals and comments can neither mask nor fake a
//! finding.

use crate::lexer::{lex, Delim, Token, TokenKind};

/// How a file participates in the lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every lint applies.
    Lib,
    /// Binary / example code (CLI front-ends, bench drivers): exempt
    /// from the panic-hygiene lint, everything else applies.
    Bin,
    /// Test-only code (`tests/`, `benches/`, `proptests.rs`): exempt
    /// from determinism, metric-registry, RNG and panic lints.
    TestOnly,
}

/// Classifies a workspace-relative path into a [`FileKind`].
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let name = parts.last().copied().unwrap_or("");
    if parts.contains(&"tests") || parts.contains(&"benches") || name == "proptests.rs" {
        return FileKind::TestOnly;
    }
    if parts.contains(&"examples") || parts.contains(&"bin") || name == "main.rs" {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// One source file, lexed and indexed.
#[derive(Debug)]
pub struct SourceModel {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// How this file participates in the lints.
    pub kind: FileKind,
    /// The file contents, verbatim.
    pub text: String,
    /// Every token, comments included, in source order.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Per significant position holding an `Open`: the significant
    /// position of its matching `Close`.
    close_of: Vec<Option<usize>>,
    /// Byte spans of `#[cfg(test)]`- / `#[test]`-gated item bodies
    /// (attribute start through closing brace).
    test_spans: Vec<(usize, usize)>,
}

impl SourceModel {
    /// Lexes and indexes `text`.
    pub fn parse(rel: &str, kind: FileKind, text: &str) -> SourceModel {
        let tokens = lex(text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();

        // Matching-bracket map via a stack over significant positions.
        let mut close_of = vec![None; sig.len()];
        let mut stack: Vec<(Delim, usize)> = Vec::new();
        for (si, &ti) in sig.iter().enumerate() {
            match tokens[ti].kind {
                TokenKind::Open(d) => stack.push((d, si)),
                TokenKind::Close(d) => {
                    if let Some(&(od, open_si)) = stack.last() {
                        if od == d {
                            stack.pop();
                            close_of[open_si] = Some(si);
                        }
                    }
                }
                _ => {}
            }
        }

        let mut model = SourceModel {
            rel: rel.to_string(),
            kind,
            text: text.to_string(),
            tokens,
            sig,
            close_of,
            test_spans: Vec::new(),
        };
        model.test_spans = model.compute_test_spans();
        model
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// The significant token at position `si`.
    pub fn tok(&self, si: usize) -> &Token {
        &self.tokens[self.sig[si]]
    }

    /// Source spelling of the significant token at `si`.
    pub fn text_of(&self, si: usize) -> &str {
        self.tok(si).text(&self.text)
    }

    /// The identifier text at `si`, if it is an identifier.
    pub fn ident_at(&self, si: usize) -> Option<&str> {
        (si < self.sig.len() && self.tok(si).kind == TokenKind::Ident).then(|| self.text_of(si))
    }

    /// Is the significant token at `si` the identifier `name`?
    pub fn is_ident(&self, si: usize, name: &str) -> bool {
        self.ident_at(si) == Some(name)
    }

    /// Is the significant token at `si` the punctuation `op`?
    pub fn is_punct(&self, si: usize, op: &str) -> bool {
        si < self.sig.len() && self.tok(si).kind == TokenKind::Punct && self.text_of(si) == op
    }

    /// Is the significant token at `si` an `Open(delim)`?
    pub fn is_open(&self, si: usize, delim: Delim) -> bool {
        si < self.sig.len() && self.tok(si).kind == TokenKind::Open(delim)
    }

    /// Matching `Close` position for the `Open` at `si`.
    pub fn close_of(&self, si: usize) -> Option<usize> {
        self.close_of.get(si).copied().flatten()
    }

    /// Whether byte offset `at` sits in test code (the whole file is
    /// test-only, or the offset is inside a `#[cfg(test)]`/`#[test]`
    /// gated region).
    pub fn in_test(&self, at: usize) -> bool {
        self.kind == FileKind::TestOnly || self.test_spans.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Line comments as `(line, text)` pairs — the SAFETY and
    /// domain-tag passes read comment *contents*.
    pub fn line_comments(&self) -> impl Iterator<Item = (usize, &str)> {
        self.tokens.iter().filter_map(|t| match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => Some((t.line, t.text(&self.text))),
            _ => None,
        })
    }

    /// From significant position `from`, the position of the next
    /// top-level `Open(Brace)` — the body of the item starting there —
    /// skipping over `(…)` / `[…]` groups (fn args, generics' defaults,
    /// attributes). Stops at `;` (bodyless item) or a closing delimiter
    /// (ran out of the enclosing item).
    pub fn find_body_brace(&self, from: usize) -> Option<usize> {
        let mut k = from;
        while k < self.sig.len() {
            match self.tok(k).kind {
                TokenKind::Open(Delim::Brace) => return Some(k),
                TokenKind::Open(_) => k = self.close_of(k)? + 1,
                TokenKind::Close(_) => return None,
                TokenKind::Punct if self.text_of(k) == ";" => return None,
                _ => k += 1,
            }
        }
        None
    }

    /// Byte span `(start, end)` of the brace group opening at `si`
    /// (inclusive of both braces). Unclosed groups run to end of file.
    pub fn brace_span(&self, si: usize) -> (usize, usize) {
        let start = self.tok(si).start;
        let end = self
            .close_of(si)
            .map(|c| self.tok(c).end)
            .unwrap_or(self.text.len());
        (start, end)
    }

    /// Resolves `#[cfg(test…)]` / `#[test]` regions: each gating
    /// attribute covers from its `#` through the closing brace of the
    /// item body that follows (skipping further attributes); a `;`
    /// before any body brace cancels (out-of-line `mod proptests;`).
    fn compute_test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut si = 0;
        while si < self.sig.len() {
            if !(self.is_punct(si, "#") && self.is_open(si + 1, Delim::Bracket)) {
                si += 1;
                continue;
            }
            let Some(close) = self.close_of(si + 1) else {
                si += 1;
                continue;
            };
            if !self.attr_is_test_gate(si + 2, close) {
                si = close + 1;
                continue;
            }
            // Skip any further attributes between the gate and the item.
            let mut j = close + 1;
            while self.is_punct(j, "#") && self.is_open(j + 1, Delim::Bracket) {
                match self.close_of(j + 1) {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            if let Some(body) = self.find_body_brace(j) {
                let (_, end) = self.brace_span(body);
                spans.push((self.tok(si).start, end));
            }
            si = close + 1;
        }
        spans
    }

    /// Does the attribute content in significant positions
    /// `[from, to)` gate test code? Recognizes `#[test]`,
    /// `#[cfg(test…)]` and `#[cfg(all(test…))]` — and *not*
    /// `#[cfg(not(test))]`.
    fn attr_is_test_gate(&self, from: usize, to: usize) -> bool {
        if to == from + 1 && self.is_ident(from, "test") {
            return true; // #[test]
        }
        if self.is_ident(from, "cfg") && self.is_open(from + 1, Delim::Paren) {
            if self.is_ident(from + 2, "test") {
                return true; // #[cfg(test)] / #[cfg(test, …)]
            }
            if self.is_ident(from + 2, "all")
                && self.is_open(from + 3, Delim::Paren)
                && self.is_ident(from + 4, "test")
            {
                return true; // #[cfg(all(test, …))]
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceModel {
        SourceModel::parse("crates/x/src/a.rs", FileKind::Lib, src)
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/gf/src/kernel.rs"), FileKind::Lib);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/fig4.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::TestOnly);
        assert_eq!(classify("crates/net/src/proptests.rs"), FileKind::TestOnly);
        assert_eq!(
            classify("crates/bench/benches/gf_ops.rs"),
            FileKind::TestOnly
        );
    }

    #[test]
    fn bracket_map_matches_nested_groups() {
        let m = lib("fn f(a: u8) { g([1, 2]); }");
        // Find the fn's paren open and brace open.
        let opens: Vec<usize> = (0..m.sig_len())
            .filter(|&si| matches!(m.tok(si).kind, TokenKind::Open(_)))
            .collect();
        for &o in &opens {
            let c = m.close_of(o).expect("balanced source");
            assert!(c > o);
            match (&m.tok(o).kind, &m.tok(c).kind) {
                (TokenKind::Open(a), TokenKind::Close(b)) => assert_eq!(a, b),
                other => panic!("not a bracket pair: {other:?}"),
            }
        }
    }

    #[test]
    fn cfg_test_mod_spans_cover_body_only() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let m = lib(src);
        let unwrap_at = src.find("unwrap").unwrap();
        let live2_at = src.find("live2").unwrap();
        assert!(m.in_test(unwrap_at));
        assert!(!m.in_test(live2_at));
        assert!(!m.in_test(0));
    }

    #[test]
    fn test_attr_gates_single_fn() {
        let src = "#[test]\nfn t() { boom(); }\nfn live() { fine(); }\n";
        let m = lib(src);
        assert!(m.in_test(src.find("boom").unwrap()));
        assert!(!m.in_test(src.find("fine").unwrap()));
    }

    #[test]
    fn out_of_line_test_mod_does_not_open_a_region() {
        let src = "#[cfg(test)]\nmod proptests;\nfn live() { brace(); }\n";
        let m = lib(src);
        assert!(!m.in_test(src.find("brace").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { real(); }\n";
        let m = lib(src);
        assert!(!m.in_test(src.find("real").unwrap()));
    }

    #[test]
    fn cfg_all_test_and_stacked_attributes_gate() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\n#[allow(dead_code)]\nmod extra {\n    fn t() { inner(); }\n}\n";
        let m = lib(src);
        assert!(m.in_test(src.find("inner").unwrap()));
    }

    #[test]
    fn attr_with_braces_in_string_does_not_confuse_spans() {
        // A brace inside an attribute string must not open the region
        // early (the v1 line-based counter got this wrong).
        let src = "#[cfg(test)]\n#[doc = \"odd { brace\"]\nmod tests {\n    fn t() { x(); }\n}\nfn live() { y(); }\n";
        let m = lib(src);
        assert!(m.in_test(src.find("x()").unwrap()));
        assert!(!m.in_test(src.find("y()").unwrap()));
    }

    #[test]
    fn find_body_brace_skips_header_groups() {
        let src = "fn f(a: [u8; 4], g: impl Fn(u8) -> u8) { body(); }";
        let m = lib(src);
        let fn_si = (0..m.sig_len()).find(|&si| m.is_ident(si, "f")).unwrap();
        let body = m.find_body_brace(fn_si).unwrap();
        let (s, e) = m.brace_span(body);
        let body_at = src.find("body").unwrap();
        assert!(s < body_at && body_at < e, "{s}..{e} vs {body_at}");
    }

    #[test]
    fn raw_string_brace_cannot_fake_a_region() {
        let src = "#[cfg(test)]\nmod t { fn a() { let s = r#\"}}}}\"#; } }\nfn live() { z(); }\n";
        let m = lib(src);
        assert!(!m.in_test(src.find("z()").unwrap()));
    }

    #[test]
    fn line_comments_expose_contents() {
        let src = "// SAFETY: fine\nunsafe { x() }\n";
        let m = lib(src);
        let comments: Vec<(usize, &str)> = m.line_comments().collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].0, 1);
        assert!(comments[0].1.contains("SAFETY:"));
    }
}
