//! Edge fixture: every lint's trigger spelled inside string/char
//! literal forms. A text-matching scanner fires all over this file; a
//! lexer stays silent.

pub fn decoys() -> Vec<&'static str> {
    let plain = "use std::collections::HashMap; let t = Instant::now();";
    let raw = r#"thread_rng().gen(); rand::random(); x.unwrap();"#;
    let hashed = r##"a raw string with "#embedded quotes#" and { one unbalanced brace"##;
    let bytes: &[u8] = b"unsafe { *p } // no SAFETY: comment";
    let raw_bytes: &[u8] = br#"StdRng::seed_from_u64(seed) y.expect("boom")"#;
    let escaped = "quote \" then HashSet and SystemTime::now()";
    let _ = (bytes, raw_bytes);
    vec![plain, raw, hashed, escaped]
}

pub fn loop_with_decoy_calls() -> usize {
    let mut n = 0;
    for line in ["acc = acc.gf_add(a[i].gf_mul(b[i]));", "x.gf_div(y)"] {
        n += line.len();
    }
    n
}
