//! L1 fixture (bad): iteration-order-dependent container in library code.

use std::collections::HashMap;

pub fn histogram(values: &[u32]) -> HashMap<u32, usize> {
    let mut out = HashMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}
