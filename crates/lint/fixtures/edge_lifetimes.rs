//! Edge fixture: lifetimes next to char literals. A lexer that
//! mistakes `'a` for an unterminated char literal swallows the rest of
//! the file and silently stops linting it.

pub struct Holder<'a> {
    inner: &'a [u8],
}

pub fn first<'a>(h: &'a Holder<'a>) -> Option<&'a u8> {
    let quote = '"';
    let escaped = '\'';
    let brace = '{';
    let _ = (quote, escaped, brace);
    h.inner.first()
}

pub fn static_str() -> &'static str {
    "past the lifetimes, still lexing"
}
