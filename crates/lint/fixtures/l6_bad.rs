//! L6 fixture (bad): a `mix_*` helper whose constant decodes to no
//! printable ASCII tag, plus an ad-hoc domain tag XORed inline at a
//! call site instead of being hoisted into a helper.

fn mix_opaque_seed(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

pub fn ad_hoc(seed: u64) -> u64 {
    mix_opaque_seed(seed ^ 0x4C4F_5353)
}
