//! L5 fixture (bad): panicking extractors in library code.

pub fn take(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn must(r: Result<u8, u8>) -> u8 {
    r.expect("fixture invariant")
}
