//! Edge fixture: test-gated regions keep their relaxed rules even in a
//! Lib-classified file — `unwrap` and `HashMap` below are all inside
//! `#[cfg(test)]` / `#[test]` items.

pub fn lib_side(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn relaxed_rules_inside_tests() {
        let mut m = HashMap::new();
        m.insert(1u8, 2u8);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert_eq!(lib_side(None), 0);
    }
}

#[cfg(test)]
fn helper_only_for_tests(r: Result<u8, u8>) -> u8 {
    r.expect("test-only helper may panic")
}
