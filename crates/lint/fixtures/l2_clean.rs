//! L2 fixture (clean): `unsafe` documented within the safety window.

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to at least one readable byte.
    unsafe { *p }
}
