//! L2 fixture (bad): `unsafe` with no adjacent SAFETY comment.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
