//! L7 fixture (bad): scalar GF arithmetic inside a hot-crate loop —
//! per-element trait dispatch where the slice kernels should run.

use prlc_gf::GfElem;

pub fn dot_scalar<F: GfElem>(a: &[F], b: &[F]) -> F {
    let mut acc = F::zero();
    for i in 0..a.len() {
        acc = acc.gf_add(a[i].gf_mul(b[i]));
    }
    acc
}
