//! L1 fixture (clean): deterministic ordered container.

use std::collections::BTreeMap;

pub fn histogram(values: &[u32]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}
