//! L4 fixture (bad): prlc-net code seeding an RNG with no `mix_*`
//! domain-separation helper inside the seed argument.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
