//! L4 fixture (clean): the seed passes through a `mix_*` helper, and
//! the helper carries a registered, comment-quoted domain tag.

use rand::rngs::StdRng;
use rand::SeedableRng;

fn mix_draw_seed(seed: u64) -> u64 {
    seed ^ 0x4452_4157 // "DRAW"
}

pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(mix_draw_seed(seed))
}
