//! L5 fixture (clean): errors propagate instead of panicking.

pub fn take(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn must(r: Result<u8, u8>) -> Result<u8, u8> {
    let v = r?;
    Ok(v)
}
