//! L6 fixture (clean): one registered tag per helper, quoted in a
//! same-line comment, with no inline tags at call sites.

pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_fixture_seed(seed: u64) -> u64 {
    splitmix64(seed ^ 0x4649_5854) // "FIXT"
}

pub fn derive(seed: u64) -> u64 {
    mix_fixture_seed(seed)
}
