//! L7 fixture (clean): slice-level work goes through the dispatched
//! kernels; scalar calls appear only outside loops (pivot arithmetic).

use prlc_gf::GfElem;

pub fn dot_kernel<F: GfElem>(a: &[F], b: &[F]) -> F {
    F::dot(a, b)
}

pub fn normalize_row<F: GfElem>(row: &mut [F], pivot: F) {
    let inv = pivot.gf_inv();
    F::scale(row, inv);
}

pub fn single_product<F: GfElem>(a: F, b: F) -> F {
    a.gf_mul(b)
}
