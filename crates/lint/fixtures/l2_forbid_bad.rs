//! L2b fixture (bad): a crate root missing `#![forbid(unsafe_code)]`.

pub mod inner {
    pub fn id(x: u8) -> u8 {
        x
    }
}
