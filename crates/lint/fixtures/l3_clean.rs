//! L3 fixture (clean): emits exactly the registered fixture key.

pub fn record(n: u64) {
    prlc_obs::counter!("core.decode.blocks", n);
}
