//! L3 fixture (bad): emits a metric key no registry row documents.

pub fn record(n: u64) {
    prlc_obs::counter!("core.bogus.unregistered", n);
}
