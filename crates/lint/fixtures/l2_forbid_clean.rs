//! L2b fixture (clean): a crate root that forbids unsafe code.

#![forbid(unsafe_code)]

pub mod inner {
    pub fn id(x: u8) -> u8 {
        x
    }
}
