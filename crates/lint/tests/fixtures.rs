//! Fixture corpus: one minimal bad snippet per lint plus a clean twin,
//! and edge cases targeting the lexer (raw strings, byte strings,
//! lifetimes-vs-char-literals, `#[cfg(test)]` regions).
//!
//! Each bad fixture must fire *exactly* its lint; each clean twin and
//! every edge fixture must stay silent under the *whole* suite. The
//! fixture directory is excluded from the workspace scan (`fixtures`
//! is in `SKIP_DIRS`), so these snippets never reach `prlc lint`.

use std::fs;
use std::path::Path;

use prlc_lint::lints::{self, Finding, Lint};
use prlc_lint::registry::{parse_metrics_md, parse_rng_domains_md, DomainRegistry, Registry};
use prlc_lint::tree::{classify, SourceModel};

fn fixture(name: &str, rel: &str) -> SourceModel {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let text = fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    SourceModel::parse(rel, classify(rel), &text)
}

fn metrics_registry() -> Registry {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    parse_metrics_md(&fs::read_to_string(dir.join("METRICS.md")).expect("fixture METRICS.md"))
}

fn domains_registry() -> DomainRegistry {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    parse_rng_domains_md(
        &fs::read_to_string(dir.join("RNG_DOMAINS.md")).expect("fixture RNG_DOMAINS.md"),
    )
}

/// Runs every pass over `files` the way `prlc_lint::run` does, with the
/// fixture registries standing in for the docs, and `root` (if any) as
/// the lone crate root for the L2b check.
fn run_all(files: &[SourceModel], root: Option<&SourceModel>) -> Vec<Finding> {
    let mut out = Vec::new();
    lints::l1_determinism(files, &mut out);
    lints::l2_unsafe_comments(files, &mut out);
    if let Some(r) = root {
        lints::l2_forbid_unsafe(&[r], &mut out);
    }
    lints::l3_metric_registry(files, "fixtures/METRICS.md", &metrics_registry(), &mut out);
    lints::l4_rng_domain(files, &mut out);
    lints::l5_panic_hygiene(files, &mut out);
    lints::l6_rng_registry(
        files,
        "fixtures/RNG_DOMAINS.md",
        &domains_registry(),
        &mut out,
    );
    lints::l7_kernel_dispatch(files, &mut out);
    // Each call sees one or two fixtures, never the whole corpus, so
    // registry rows anchored by *other* fixtures read as dead here.
    // Dead-row detection itself is covered by the lints unit tests.
    out.retain(|f| !f.message.starts_with("dead registry"));
    out
}

/// Asserts `findings` is non-empty and every finding carries `lint`.
fn assert_fires_exactly(findings: &[Finding], lint: Lint, fixture_name: &str) {
    assert!(
        !findings.is_empty(),
        "{fixture_name}: expected {} findings, got none",
        lint.id()
    );
    for f in findings {
        assert_eq!(
            f.lint,
            lint,
            "{fixture_name}: stray {} finding: {} ({}:{})",
            f.lint.id(),
            f.message,
            f.file,
            f.line
        );
    }
}

#[test]
fn l1_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l1_bad.rs", "crates/core/src/fixture.rs");
    let mut out = Vec::new();
    lints::l1_determinism(&[bad], &mut out);
    assert_fires_exactly(&out, Lint::Determinism, "l1_bad.rs");

    let clean = fixture("l1_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(run_all(&[clean], None), vec![]);
}

#[test]
fn l2_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l2_bad.rs", "crates/gf/src/fixture.rs");
    let mut out = Vec::new();
    lints::l2_unsafe_comments(&[bad], &mut out);
    assert_fires_exactly(&out, Lint::UnsafeAudit, "l2_bad.rs");

    // The clean twin lives in prlc-gf (the one crate allowed unsafe),
    // so the full suite must accept it — L2a satisfied by the comment.
    let clean = fixture("l2_clean.rs", "crates/gf/src/fixture.rs");
    assert_eq!(run_all(&[clean], None), vec![]);
}

#[test]
fn l2_forbid_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l2_forbid_bad.rs", "crates/core/src/lib.rs");
    let mut out = Vec::new();
    lints::l2_forbid_unsafe(&[&bad], &mut out);
    assert_fires_exactly(&out, Lint::UnsafeAudit, "l2_forbid_bad.rs");

    let clean = fixture("l2_forbid_clean.rs", "crates/core/src/lib.rs");
    assert_eq!(run_all(std::slice::from_ref(&clean), Some(&clean)), vec![]);
}

#[test]
fn l3_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l3_bad.rs", "crates/core/src/fixture.rs");
    let mut out = Vec::new();
    lints::l3_metric_registry(&[bad], "fixtures/METRICS.md", &metrics_registry(), &mut out);
    assert_fires_exactly(&out, Lint::MetricRegistry, "l3_bad.rs");

    let clean = fixture("l3_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(run_all(&[clean], None), vec![]);
}

#[test]
fn l4_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l4_bad.rs", "crates/net/src/fixture.rs");
    let mut out = Vec::new();
    lints::l4_rng_domain(&[bad], &mut out);
    assert_fires_exactly(&out, Lint::RngDomain, "l4_bad.rs");

    // The clean twin's mix helper is registered in the fixture domain
    // registry, so the full suite (L6 included) accepts it; the L6
    // fixture below supplies the registry's other row.
    let clean = fixture("l4_clean.rs", "crates/net/src/fixture.rs");
    let other = fixture("l6_clean.rs", "crates/sim/src/fixture.rs");
    assert_eq!(run_all(&[clean, other], None), vec![]);
}

#[test]
fn l5_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l5_bad.rs", "crates/core/src/fixture.rs");
    let mut out = Vec::new();
    lints::l5_panic_hygiene(&[bad], &mut out);
    assert_fires_exactly(&out, Lint::PanicHygiene, "l5_bad.rs");
    assert_eq!(out.len(), 2, "one per panicking extractor: {out:?}");

    let clean = fixture("l5_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(run_all(&[clean], None), vec![]);
}

#[test]
fn l6_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l6_bad.rs", "crates/sim/src/fixture.rs");
    let mut out = Vec::new();
    // An empty registry: the findings must come from the code itself
    // (no decodable tag in the helper; inline tag at the call site).
    lints::l6_rng_registry(
        &[bad],
        "fixtures/RNG_DOMAINS.md",
        &parse_rng_domains_md(""),
        &mut out,
    );
    assert_fires_exactly(&out, Lint::RngRegistry, "l6_bad.rs");
    assert!(
        out.iter()
            .any(|f| f.message.contains("no ASCII domain tag")),
        "{out:?}"
    );
    assert!(out.iter().any(|f| f.message.contains("hoist")), "{out:?}");

    let clean = fixture("l6_clean.rs", "crates/sim/src/fixture.rs");
    let other = fixture("l4_clean.rs", "crates/net/src/fixture.rs");
    assert_eq!(run_all(&[clean, other], None), vec![]);
}

#[test]
fn l7_fixture_fires_and_clean_twin_is_silent() {
    let bad = fixture("l7_bad.rs", "crates/linalg/src/fixture.rs");
    let mut out = Vec::new();
    lints::l7_kernel_dispatch(&[bad], &mut out);
    assert_fires_exactly(&out, Lint::KernelDispatch, "l7_bad.rs");

    let clean = fixture("l7_clean.rs", "crates/linalg/src/fixture.rs");
    assert_eq!(run_all(&[clean], None), vec![]);
}

#[test]
fn raw_string_decoys_stay_silent_under_the_whole_suite() {
    // Hot-crate rel on purpose: L7's loop scan must also ignore the
    // `.gf_add(`/`.gf_mul(` spelled inside the loop's string operands.
    let f = fixture("edge_raw_strings.rs", "crates/core/src/fixture.rs");
    assert_eq!(run_all(&[f], None), vec![]);
}

#[test]
fn cfg_test_regions_stay_silent_under_the_whole_suite() {
    let f = fixture("edge_cfg_test.rs", "crates/core/src/fixture.rs");
    assert_eq!(run_all(&[f], None), vec![]);
}

#[test]
fn lifetimes_do_not_derail_the_lexer() {
    let f = fixture("edge_lifetimes.rs", "crates/core/src/fixture.rs");
    // The code after the char literals was actually lexed: its string
    // literal is present as a token, proving the lexer never stalled.
    assert!(f.text.contains("still lexing"), "fixture changed underfoot");
    let lexed_past = (0..f.sig_len()).any(|si| f.text_of(si).contains("still lexing"));
    assert!(lexed_past, "lexer swallowed the tail of the file");
    assert_eq!(run_all(&[f], None), vec![]);
}
